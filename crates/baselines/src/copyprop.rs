//! Global copy propagation.
//!
//! The paper's footnote 1 observes that interleaving code motion with
//! copy propagation (as suggested by Dhamdhere/Rosen/Zadeck) removes the
//! right-hand-side *computations* of the Figure 3 loop but leaves the
//! assignment in place — unlike pde. This baseline provides that
//! interleaving partner: a classic available-copies analysis (forward,
//! intersection) followed by use rewriting.

use std::collections::HashMap;

use pdce_dfa::{solve, AnalysisCache, BitProblem, BitVec, Direction, GenKill, Meet};
use pdce_ir::{Program, Stmt, TermData, TermId, Var};

/// A copy pattern `x := y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Copy {
    dst: Var,
    src: Var,
}

fn collect_copies(prog: &Program) -> Vec<Copy> {
    let mut copies = Vec::new();
    let mut seen = HashMap::new();
    for n in prog.node_ids() {
        for stmt in &prog.block(n).stmts {
            if let Stmt::Assign { lhs, rhs } = *stmt {
                if let TermData::Var(src) = prog.terms().data(rhs) {
                    if src != lhs && seen.insert((lhs, src), ()).is_none() {
                        copies.push(Copy { dst: lhs, src });
                    }
                }
            }
        }
    }
    copies
}

fn stmt_transfer(copies: &[Copy], prog: &Program, stmt: &Stmt) -> GenKill {
    let width = copies.len();
    let mut gen = BitVec::zeros(width);
    let mut kill = BitVec::zeros(width);
    if let Some(m) = stmt.modified() {
        for (i, c) in copies.iter().enumerate() {
            if c.dst == m || c.src == m {
                kill.set(i, true);
            }
        }
    }
    if let Stmt::Assign { lhs, rhs } = *stmt {
        if let TermData::Var(src) = prog.terms().data(rhs) {
            if src != lhs {
                if let Some(i) = copies.iter().position(|c| c.dst == lhs && c.src == src) {
                    gen.set(i, true);
                }
            }
        }
    }
    GenKill::new(gen, kill)
}

/// Rewrites every use according to the available copies; returns the
/// number of replaced variable occurrences. Run to a fixpoint externally
/// if chains of copies should collapse fully.
pub fn copy_propagate_once(prog: &mut Program) -> u64 {
    copy_propagate_once_cached(prog, &mut AnalysisCache::new())
}

/// Like [`copy_propagate_once`], but reads the CFG from `cache`'s
/// memoized [`CfgView`].
pub fn copy_propagate_once_cached(prog: &mut Program, cache: &mut AnalysisCache) -> u64 {
    let copies = collect_copies(prog);
    if copies.is_empty() {
        return 0;
    }
    let width = copies.len();
    let view = cache.cfg(prog);
    let transfer: Vec<GenKill> = prog
        .node_ids()
        .map(|n| {
            let fs: Vec<GenKill> = prog
                .block(n)
                .stmts
                .iter()
                .map(|s| stmt_transfer(&copies, prog, s))
                .collect();
            GenKill::compose_forward(width, fs.iter())
        })
        .collect();
    let problem = BitProblem {
        direction: Direction::Forward,
        meet: Meet::Intersection,
        width,
        transfer,
        boundary: BitVec::zeros(width),
    };
    let sol = solve(&view, &problem);

    let mut replaced = 0u64;
    for n in prog.node_ids().collect::<Vec<_>>() {
        let mut avail = sol.at_entry(n).clone();
        // Substitution map from the available copy set.
        let block_len = prog.block(n).stmts.len();
        for k in 0..block_len {
            let subst: HashMap<Var, Var> = avail
                .iter_ones()
                .map(|i| (copies[i].dst, copies[i].src))
                .collect();
            let stmt = prog.block(n).stmts[k];
            if let Some(t) = stmt.used_term() {
                let (t2, count) = substitute(prog, t, &subst);
                if count > 0 {
                    replaced += count;
                    let new_stmt = match stmt {
                        Stmt::Assign { lhs, .. } => Stmt::Assign { lhs, rhs: t2 },
                        Stmt::Out(_) => Stmt::Out(t2),
                        Stmt::Skip => Stmt::Skip,
                    };
                    prog.stmts_mut(n)[k] = new_stmt;
                }
            }
            let f = stmt_transfer(&copies, prog, &prog.block(n).stmts[k]);
            avail = f.apply(&avail);
        }
        // Terminator condition.
        let subst: HashMap<Var, Var> = avail
            .iter_ones()
            .map(|i| (copies[i].dst, copies[i].src))
            .collect();
        if let Some(c) = prog.block(n).term.used_term() {
            let (c2, count) = substitute(prog, c, &subst);
            if count > 0 {
                replaced += count;
                if let pdce_ir::Terminator::Cond { cond, .. } = &mut prog.block_mut(n).term {
                    *cond = c2;
                }
            }
        }
    }
    replaced
}

/// Runs copy propagation to a fixpoint (bounded by the variable count,
/// the longest possible copy chain).
pub fn copy_propagate(prog: &mut Program) -> u64 {
    copy_propagate_cached(prog, &mut AnalysisCache::new())
}

/// Like [`copy_propagate`], but shares `cache`'s [`CfgView`] across the
/// fixpoint rounds.
pub fn copy_propagate_cached(prog: &mut Program, cache: &mut AnalysisCache) -> u64 {
    let mut total = 0;
    for _ in 0..prog.num_vars().max(1) {
        let replaced = copy_propagate_once_cached(prog, cache);
        if replaced == 0 {
            break;
        }
        total += replaced;
    }
    total
}

fn substitute(prog: &mut Program, t: TermId, subst: &HashMap<Var, Var>) -> (TermId, u64) {
    match prog.terms().data(t) {
        TermData::Const(_) => (t, 0),
        TermData::Var(v) => match subst.get(&v) {
            Some(&w) => (prog.terms_mut().intern(TermData::Var(w)), 1),
            None => (t, 0),
        },
        TermData::Unary(op, a) => {
            let (a2, c) = substitute(prog, a, subst);
            if c == 0 {
                (t, 0)
            } else {
                (prog.terms_mut().intern(TermData::Unary(op, a2)), c)
            }
        }
        TermData::Binary(op, a, b) => {
            let (a2, ca) = substitute(prog, a, subst);
            let (b2, cb) = substitute(prog, b, subst);
            if ca + cb == 0 {
                (t, 0)
            } else {
                (
                    prog.terms_mut().intern(TermData::Binary(op, a2, b2)),
                    ca + cb,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::interp::{run_with, ExecLimits};
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{diff, structural_eq};

    fn check(src: &str, expected: &str) {
        let mut p = parse(src).unwrap();
        copy_propagate(&mut p);
        let want = parse(expected).unwrap();
        assert!(structural_eq(&p, &want), "{}", diff(&p, &want));
        // Copy propagation must preserve semantics.
        let orig = parse(src).unwrap();
        for a in [0i64, 5, -3] {
            let t0 = run_with(&orig, &[("a", a)], vec![0; 8], ExecLimits::default());
            let t1 = run_with(&p, &[("a", a)], vec![0; 8], ExecLimits::default());
            assert_eq!(t0.outputs, t1.outputs);
        }
    }

    #[test]
    fn straight_line_copy() {
        check(
            "prog { block s { x := a; y := x + 1; out(y); goto e } block e { halt } }",
            "prog { block s { x := a; y := a + 1; out(y); goto e } block e { halt } }",
        );
    }

    #[test]
    fn chains_collapse() {
        check(
            "prog { block s { x := a; y := x; out(y + x); goto e } block e { halt } }",
            "prog { block s { x := a; y := a; out(a + a); goto e } block e { halt } }",
        );
    }

    #[test]
    fn redefinition_kills_copy() {
        check(
            "prog { block s { x := a; a := 9; out(x); goto e } block e { halt } }",
            "prog { block s { x := a; a := 9; out(x); goto e } block e { halt } }",
        );
    }

    #[test]
    fn join_requires_copy_on_all_paths() {
        check(
            "prog {
               block s { nondet l r }
               block l { x := a; goto j }
               block r { x := 5; goto j }
               block j { out(x); goto e }
               block e { halt }
             }",
            "prog {
               block s { nondet l r }
               block l { x := a; goto j }
               block r { x := 5; goto j }
               block j { out(x); goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn copy_available_on_both_paths_propagates() {
        check(
            "prog {
               block s { nondet l r }
               block l { x := a; goto j }
               block r { x := a; goto j }
               block j { out(x); goto e }
               block e { halt }
             }",
            "prog {
               block s { nondet l r }
               block l { x := a; goto j }
               block r { x := a; goto j }
               block j { out(a); goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn branch_condition_rewritten() {
        check(
            "prog {
               block s { x := a; if x < 3 then t else e }
               block t { out(1); goto e }
               block e { halt }
             }",
            "prog {
               block s { x := a; if a < 3 then t else e }
               block t { out(1); goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn self_copy_is_ignored() {
        let mut p = parse("prog { block s { x := x; out(x); goto e } block e { halt } }").unwrap();
        assert_eq!(copy_propagate(&mut p), 0);
    }
}
