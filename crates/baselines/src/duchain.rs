//! Definition-use-chain based dead code elimination (Section 5.2's
//! "standard method").
//!
//! The paper contrasts its iterative eliminations with the usual
//! def-use-graph approach: connect every definition with its reachable
//! uses and run a *marking* algorithm from the relevant statements; with
//! optimistic assumptions every faint assignment is detected, at the cost
//! of a graph of worst-case size `O(i² · v)`. This module implements
//! that method faithfully:
//!
//! 1. reaching definitions (forward, union, bit per definition
//!    occurrence),
//! 2. the definition→use edges (du-chains),
//! 3. marking from `out`/branch-condition uses,
//! 4. removal of unmarked assignments.
//!
//! Its removal set coincides with faint code elimination, which the
//! tests (and the cross-crate property tests) verify, and its du-graph
//! size feeds the C6 complexity experiment.

use std::collections::VecDeque;

use pdce_dfa::{solve, AnalysisCache, BitProblem, BitVec, Direction, GenKill, Meet};
use pdce_ir::{CfgView, NodeId, Program, Stmt, Var};

/// A definition occurrence: statement `k` of block `n` (an assignment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Containing block.
    pub node: NodeId,
    /// Statement index within the block.
    pub stmt: usize,
    /// Defined variable.
    pub var: Var,
}

/// The definition-use graph of a program.
#[derive(Debug)]
pub struct DuGraph {
    /// All definition sites, densely indexed.
    pub defs: Vec<DefSite>,
    /// For each definition, the indices of definitions whose right-hand
    /// side (or relevant statement) it feeds — i.e. def→def "needed by"
    /// edges discovered through uses.
    pub feeds: Vec<Vec<u32>>,
    /// Definitions used by a relevant statement (out / branch condition).
    pub relevant: BitVec,
    /// Total number of definition→use edges (the graph size the paper
    /// bounds by `O(i² v)`).
    pub du_edges: u64,
}

impl DuGraph {
    /// Builds the du-graph of `prog`.
    pub fn build(prog: &Program, view: &CfgView) -> DuGraph {
        // Enumerate definitions.
        let mut defs = Vec::new();
        let mut def_at = vec![Vec::new(); prog.num_blocks()];
        for n in prog.node_ids() {
            for (k, stmt) in prog.block(n).stmts.iter().enumerate() {
                if let Stmt::Assign { lhs, .. } = *stmt {
                    def_at[n.index()].push((k, defs.len()));
                    defs.push(DefSite {
                        node: n,
                        stmt: k,
                        var: lhs,
                    });
                }
            }
        }
        let width = defs.len();

        // Reaching definitions: gen = this def, kill = other defs of the
        // same variable.
        let mut defs_of_var: Vec<BitVec> = vec![BitVec::zeros(width); prog.num_vars()];
        for (i, d) in defs.iter().enumerate() {
            defs_of_var[d.var.index()].set(i, true);
        }
        let stmt_transfer = |stmt: &Stmt, def_idx: Option<usize>| -> GenKill {
            match (stmt, def_idx) {
                (Stmt::Assign { lhs, .. }, Some(i)) => {
                    let mut gen = BitVec::zeros(width);
                    gen.set(i, true);
                    let mut kill = defs_of_var[lhs.index()].clone();
                    kill.set(i, false);
                    GenKill::new(gen, kill)
                }
                _ => GenKill::identity(width),
            }
        };
        let transfer: Vec<GenKill> = prog
            .node_ids()
            .map(|n| {
                let mut def_iter = def_at[n.index()].iter().peekable();
                let fs: Vec<GenKill> = prog
                    .block(n)
                    .stmts
                    .iter()
                    .enumerate()
                    .map(|(k, s)| {
                        let idx = match def_iter.peek() {
                            Some(&&(dk, di)) if dk == k => {
                                def_iter.next();
                                Some(di)
                            }
                            _ => None,
                        };
                        stmt_transfer(s, idx)
                    })
                    .collect();
                GenKill::compose_forward(width, fs.iter())
            })
            .collect();
        let problem = BitProblem {
            direction: Direction::Forward,
            meet: Meet::Union,
            width,
            transfer,
            boundary: BitVec::zeros(width),
        };
        let sol = solve(view, &problem);

        // Walk each block to connect uses with reaching definitions.
        let mut feeds: Vec<Vec<u32>> = vec![Vec::new(); width];
        let mut relevant = BitVec::zeros(width);
        let mut du_edges = 0u64;
        for n in prog.node_ids() {
            let mut reach = sol.at_entry(n).clone();
            let mut def_iter = def_at[n.index()].iter().peekable();
            for (k, stmt) in prog.block(n).stmts.iter().enumerate() {
                let this_def = match def_iter.peek() {
                    Some(&&(dk, di)) if dk == k => {
                        def_iter.next();
                        Some(di)
                    }
                    _ => None,
                };
                // Uses of this statement see the current reaching set.
                if let Some(t) = stmt.used_term() {
                    for &v in prog.terms().vars_of(t) {
                        for d in reaching_defs_of(&reach, &defs_of_var[v.index()]) {
                            du_edges += 1;
                            match (stmt, this_def) {
                                (Stmt::Assign { .. }, Some(user)) => {
                                    feeds[d].push(user as u32);
                                }
                                (Stmt::Out(_), _) => relevant.set(d, true),
                                _ => {}
                            }
                        }
                    }
                }
                // Then the definition takes effect.
                if let Some(di) = this_def {
                    let DefSite { var, .. } = defs[di];
                    reach.difference_with(&defs_of_var[var.index()]);
                    reach.set(di, true);
                }
            }
            // Branch conditions are relevant uses.
            if let Some(c) = prog.block(n).term.used_term() {
                for &v in prog.terms().vars_of(c) {
                    for d in reaching_defs_of(&reach, &defs_of_var[v.index()]) {
                        du_edges += 1;
                        relevant.set(d, true);
                    }
                }
            }
        }
        DuGraph {
            defs,
            feeds,
            relevant,
            du_edges,
        }
    }

    /// Runs the optimistic marking algorithm, returning the set of
    /// *needed* definitions.
    pub fn mark(&self) -> BitVec {
        let mut marked = self.relevant.clone();
        let mut queue: VecDeque<usize> = marked.iter_ones().collect();
        // `feeds[d]` lists consumers of d; we need the reverse direction:
        // from a marked consumer, mark its suppliers. Build supplier lists.
        let mut suppliers: Vec<Vec<u32>> = vec![Vec::new(); self.defs.len()];
        for (d, users) in self.feeds.iter().enumerate() {
            for &u in users {
                suppliers[u as usize].push(d as u32);
            }
        }
        while let Some(d) = queue.pop_front() {
            for &s in &suppliers[d] {
                let s = s as usize;
                if !marked.get(s) {
                    marked.set(s, true);
                    queue.push_back(s);
                }
            }
        }
        marked
    }
}

fn reaching_defs_of(reach: &BitVec, of_var: &BitVec) -> Vec<usize> {
    let mut r = reach.clone();
    r.intersect_with(of_var);
    r.iter_ones().collect()
}

/// Def-use-chain DCE: removes every unmarked assignment. Returns the
/// number of removed assignments.
pub fn duchain_dce(prog: &mut Program) -> u64 {
    duchain_dce_cached(prog, &mut AnalysisCache::new())
}

/// Like [`duchain_dce`], but reads the CFG from `cache`'s memoized
/// [`CfgView`] instead of rebuilding the adjacency per call.
pub fn duchain_dce_cached(prog: &mut Program, cache: &mut AnalysisCache) -> u64 {
    let view = cache.cfg(prog);
    let graph = DuGraph::build(prog, &view);
    let marked = graph.mark();
    let mut removed = 0u64;
    // Group doomed statement indices per block, then rebuild.
    let mut doomed: Vec<Vec<usize>> = vec![Vec::new(); prog.num_blocks()];
    for (i, d) in graph.defs.iter().enumerate() {
        if !marked.get(i) {
            doomed[d.node.index()].push(d.stmt);
        }
    }
    for n in prog.node_ids().collect::<Vec<_>>() {
        if doomed[n.index()].is_empty() {
            continue;
        }
        let dl = &doomed[n.index()];
        let keep: Vec<Stmt> = prog
            .block(n)
            .stmts
            .iter()
            .enumerate()
            .filter_map(|(k, s)| {
                if dl.contains(&k) {
                    removed += 1;
                    None
                } else {
                    Some(*s)
                }
            })
            .collect();
        *prog.stmts_mut(n) = keep;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_core::driver::{optimize, PdceConfig};
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{canonical_string, structural_eq};

    fn agree_with_fce(src: &str) {
        let mut p1 = parse(src).unwrap();
        duchain_dce(&mut p1);
        let mut p2 = parse(src).unwrap();
        optimize(&mut p2, &PdceConfig::fce_only()).unwrap();
        assert!(
            structural_eq(&p1, &p2),
            "du-chain DCE and fce disagree on:\n{src}\ngot:\n{}\nwant:\n{}",
            canonical_string(&p1),
            canonical_string(&p2)
        );
    }

    #[test]
    fn marking_detects_faint_chain() {
        // a feeds b feeds nothing relevant: both unmarked (faint).
        agree_with_fce("prog { block s { a := 1; b := a + 1; out(7); goto e } block e { halt } }");
    }

    #[test]
    fn fig9_loop_increment_is_unmarked() {
        agree_with_fce(
            "prog {
               block s { goto l }
               block l { x := x + 1; nondet l d }
               block d { goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn fig12_both_unmarked() {
        agree_with_fce(
            "prog {
               block s  { a := c + 1; nondet n3 n4 }
               block n3 { goto n5 }
               block n4 { y := a + b; goto n5 }
               block n5 { y := c + d; out(y); goto e }
               block e  { halt }
             }",
        );
    }

    #[test]
    fn branch_conditions_mark_their_definitions() {
        agree_with_fce(
            "prog {
               block s { x := a + 1; if x < 3 then t else e }
               block t { goto e }
               block e { halt }
             }",
        );
        let mut p = parse(
            "prog {
               block s { x := a + 1; if x < 3 then t else e }
               block t { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(duchain_dce(&mut p), 0);
    }

    #[test]
    fn du_edges_counted() {
        let p =
            parse("prog { block s { a := 1; b := a + a; out(b + a); goto e } block e { halt } }")
                .unwrap();
        let view = CfgView::new(&p);
        let g = DuGraph::build(&p, &view);
        // a:=1 reaches the use in b:=a+a (1 edge, a occurs once in the
        // var set) and in out(b+a) (1 edge); b:=a+a reaches out (1 edge).
        assert_eq!(g.du_edges, 3);
        assert_eq!(g.defs.len(), 2);
    }

    #[test]
    fn multiple_reaching_defs_all_marked() {
        agree_with_fce(
            "prog {
               block s  { nondet l r }
               block l  { x := 1; goto j }
               block r  { x := 2; goto j }
               block j  { out(x); goto e }
               block e  { halt }
             }",
        );
    }
}
