//! Assignment hoisting — Dhamdhere's extension of partial redundancy
//! elimination to assignment motion (\[9\] in the paper's Related Work),
//! where "assignments are hoisted rather than sunk, which does not
//! allow any elimination of partially dead code".
//!
//! This is the exact mirror of `pdce-core`'s `ask`: *hoisting
//! candidates* are up-exposed occurrences (no blocking statement before
//! them in their block), the hoistability analysis runs backward with
//! the all-paths meet, and instances are re-inserted where the upward
//! motion stops:
//!
//! ```text
//! X-HOISTABLE_n = ¬TERMBLOCKED_n ∧ ∧_{m ∈ succ(n)} N-HOISTABLE_m
//! N-HOISTABLE_n = LOCHOIST_n ∨ (X-HOISTABLE_n ∧ ¬LOCBLOCKED_n)
//!
//! X-INSERT_n = X-HOISTABLE_n ∧ LOCBLOCKED_n
//! N-INSERT_n = N-HOISTABLE_n ∧ (n = s ∨ ∃_{m ∈ pred(n)} ¬X-HOISTABLE_m)
//! ```
//!
//! The all-paths meet guarantees every inserted instance is *consumed*:
//! on every forward path an eliminated occurrence follows before any
//! use/modification interferes — so hoisting is semantics-preserving.
//! Hoisting merges partially *redundant* assignments (one instance
//! where two branches each had one), but a partially *dead* assignment
//! only becomes more universal, never removable — the claim the
//! related-work tests measure.

use pdce_core::patterns::PatternTable;
use pdce_dfa::{solve, AnalysisCache, BitProblem, BitVec, Direction, GenKill, Meet};
use pdce_ir::edgesplit::has_critical_edges;
use pdce_ir::{Program, Stmt};

pub use pdce_core::sink::CriticalEdgeError;

/// Outcome of one hoisting pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HoistOutcome {
    /// Hoisting candidates removed.
    pub removed: u64,
    /// Pattern instances inserted.
    pub inserted: u64,
    /// Whether any statement list changed structurally.
    pub changed: bool,
}

/// Runs one assignment-hoisting pass.
///
/// # Errors
///
/// Returns [`CriticalEdgeError`] if the program has critical edges
/// (hoisting needs split edges for the same reason sinking does).
///
/// # Example
///
/// ```
/// use pdce_baselines::hoist_assignments;
/// use pdce_ir::parser::parse;
///
/// // Identical assignments on both arms merge at the branch point.
/// let mut prog = parse(
///     "prog { block s { nondet l r }
///             block l { x := a + 1; out(x); goto j }
///             block r { x := a + 1; out(x + 1); goto j }
///             block j { goto e } block e { halt } }",
/// )?;
/// let outcome = hoist_assignments(&mut prog)?;
/// assert_eq!(outcome.removed, 2);
/// assert_eq!(prog.block(prog.entry()).stmts.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn hoist_assignments(prog: &mut Program) -> Result<HoistOutcome, CriticalEdgeError> {
    hoist_assignments_cached(prog, &mut AnalysisCache::new())
}

/// Like [`hoist_assignments`], but reads the CFG from `cache`'s
/// memoized [`CfgView`].
pub fn hoist_assignments_cached(
    prog: &mut Program,
    cache: &mut AnalysisCache,
) -> Result<HoistOutcome, CriticalEdgeError> {
    if has_critical_edges(prog) {
        return Err(CriticalEdgeError);
    }
    let view = cache.cfg(prog);
    let table = PatternTable::build(prog);
    if table.is_empty() {
        return Ok(HoistOutcome::default());
    }
    let width = table.len();
    let nblocks = prog.num_blocks();

    // Local predicates: up-exposed candidates, statement-level blocking,
    // terminator blocking.
    let mut lochoist = vec![BitVec::zeros(width); nblocks];
    let mut locblocked = vec![BitVec::zeros(width); nblocks];
    let mut termblocked = vec![BitVec::zeros(width); nblocks];
    let mut candidates: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nblocks];
    for n in prog.node_ids() {
        let block = prog.block(n);
        let mut blocked_so_far = BitVec::zeros(width);
        for (k, stmt) in block.stmts.iter().enumerate() {
            if let Some(p) = table.index_of_stmt(stmt) {
                if !blocked_so_far.get(p) && !lochoist[n.index()].get(p) {
                    lochoist[n.index()].set(p, true);
                    candidates[n.index()].push((k, p));
                }
            }
            for p in 0..width {
                if table.stmt_blocks(prog, p, stmt) {
                    blocked_so_far.set(p, true);
                    locblocked[n.index()].set(p, true);
                }
            }
        }
        for p in 0..width {
            if table.terminator_blocks(prog, p, &block.term) {
                termblocked[n.index()].set(p, true);
            }
        }
    }

    // Hoistability: backward, all-paths, boundary false at the exit.
    let transfer: Vec<GenKill> = (0..nblocks)
        .map(|i| {
            let mut kill = locblocked[i].clone();
            kill.union_with(&termblocked[i]);
            GenKill::new(lochoist[i].clone(), kill)
        })
        .collect();
    let sol = solve(
        &view,
        &BitProblem {
            direction: Direction::Backward,
            meet: Meet::Intersection,
            width,
            transfer,
            boundary: BitVec::zeros(width),
        },
    );
    // `sol.entry` holds N-HOISTABLE; recover X-HOISTABLE from the meet
    // with the terminator blocking applied.
    let x_hoistable = |i: usize| -> BitVec {
        let mut x = sol.exit[i].clone();
        let mut not_term = termblocked[i].clone();
        not_term.negate();
        x.intersect_with(&not_term);
        x
    };

    // Insertion points.
    let mut exit_ins = vec![BitVec::zeros(width); nblocks];
    let mut entry_ins = vec![BitVec::zeros(width); nblocks];
    for n in prog.node_ids() {
        let i = n.index();
        let mut xi = x_hoistable(i);
        xi.intersect_with(&locblocked[i]);
        exit_ins[i] = xi;

        let mut stops = BitVec::zeros(width);
        if n == prog.entry() {
            stops.fill(true); // nothing continues past the program start
        } else {
            for &m in view.preds(n) {
                let mut not_xh = x_hoistable(m.index());
                not_xh.negate();
                stops.union_with(&not_xh);
            }
        }
        let mut ni = sol.entry[i].clone();
        ni.intersect_with(&stops);
        entry_ins[i] = ni;
    }

    // Rewrite blocks: remove candidates, prepend entry inserts, append
    // exit inserts (pattern-index order for determinism).
    let mut outcome = HoistOutcome::default();
    for n in prog.node_ids().collect::<Vec<_>>() {
        let i = n.index();
        let ent: Vec<usize> = entry_ins[i].iter_ones().collect();
        let exi: Vec<usize> = exit_ins[i].iter_ones().collect();
        if ent.is_empty() && exi.is_empty() && candidates[i].is_empty() {
            continue;
        }
        let make = |p: usize| {
            let (lhs, rhs) = table.pattern(p);
            Stmt::Assign { lhs, rhs }
        };
        let old = &prog.block(n).stmts;
        let mut new_stmts = Vec::with_capacity(old.len() + ent.len() + exi.len());
        new_stmts.extend(ent.iter().map(|&p| make(p)));
        let mut doomed = candidates[i].iter().map(|&(k, _)| k).peekable();
        for (k, stmt) in old.iter().enumerate() {
            if doomed.peek() == Some(&k) {
                doomed.next();
                outcome.removed += 1;
            } else {
                new_stmts.push(*stmt);
            }
        }
        new_stmts.extend(exi.iter().map(|&p| make(p)));
        outcome.inserted += (ent.len() + exi.len()) as u64;
        // Stable blocks re-derive their own statement list; skipping the
        // write keeps the program revision (and analysis caches) intact.
        if new_stmts != *old {
            outcome.changed = true;
            *prog.stmts_mut(n) = new_stmts;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::interp::{run_with, ExecLimits};
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{canonical_string, diff, structural_eq};

    fn hoist(src: &str) -> Program {
        let mut p = parse(src).unwrap();
        hoist_assignments(&mut p).unwrap();
        p
    }

    fn expect(got: &Program, want_src: &str) {
        let want = parse(want_src).unwrap();
        assert!(
            structural_eq(got, &want),
            "mismatch after hoisting:\n{}",
            diff(got, &want)
        );
    }

    /// The PRE-of-assignments effect: identical assignments on both arms
    /// merge at the branch point.
    #[test]
    fn merges_branch_duplicates() {
        let got = hoist(
            "prog {
               block s { nondet l r }
               block l { x := a + 1; out(x); goto e2 }
               block r { x := a + 1; out(x + 1); goto e2 }
               block e2 { goto e }
               block e { halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s { x := a + 1; nondet l r }
               block l { out(x); goto e2 }
               block r { out(x + 1); goto e2 }
               block e2 { goto e }
               block e { halt }
             }",
        );
    }

    /// One-sided occurrence cannot be hoisted past the branch (it would
    /// execute on the other path, where x is later observed differently).
    #[test]
    fn one_sided_occurrence_stays_put() {
        let src = "prog {
            block s { nondet l r }
            block l { x := a + 1; out(x); goto e2 }
            block r { out(x); goto e2 }
            block e2 { goto e }
            block e { halt }
        }";
        let got = hoist(src);
        expect(&got, src);
    }

    /// Use of the left-hand side blocks the upward motion.
    #[test]
    fn blocked_by_use_above() {
        let src = "prog {
            block s { out(x); x := a + 1; out(x); goto e }
            block e { halt }
        }";
        let got = hoist(src);
        expect(&got, src);
    }

    /// The paper's claim: hoisting does not eliminate partially dead
    /// code. On Figure 1 it must leave the per-path occurrence counts of
    /// `y := a + b` untouched.
    #[test]
    fn cannot_eliminate_partial_deadness() {
        let src = "prog {
            block s  { goto n1 }
            block n1 { y := a + b; nondet n2 n3 }
            block n2 { y := 4; goto n4 }
            block n3 { out(y); goto n4 }
            block n4 { out(y); goto e }
            block e  { halt }
        }";
        let mut p = parse(src).unwrap();
        // Iterate hoisting to its fixpoint, like the pde driver would.
        for _ in 0..10 {
            let before = canonical_string(&p);
            hoist_assignments(&mut p).unwrap();
            if canonical_string(&p) == before {
                break;
            }
        }
        assert_eq!(
            p.num_assignments(),
            2,
            "hoisting must not remove any assignment:\n{}",
            canonical_string(&p)
        );
        // The dead-path count is still 1 (pde brings it to 0).
        let paths = pdce_ir::paths::enumerate_paths(&p, 100).unwrap();
        let key = pdce_ir::PatternKey::of_stmt(
            &parse(src).unwrap(),
            &parse(src)
                .unwrap()
                .block(pdce_ir::NodeId::from_index(1))
                .stmts[0],
        )
        .unwrap();
        for path in paths {
            let counts = pdce_ir::pattern::path_pattern_counts(&p, &path);
            assert_eq!(counts.get(&key).copied().unwrap_or(0), 1);
        }
    }

    #[test]
    fn semantics_preserved() {
        let src = "prog {
            block s { nondet l r }
            block l { x := a * 2; y := x + 1; out(y); goto j }
            block r { x := a * 2; out(x); goto j }
            block j { out(x + a); goto e }
            block e { halt }
        }";
        let orig = parse(src).unwrap();
        let hoisted = hoist(src);
        for a in [-3i64, 0, 9] {
            for d in [vec![0], vec![1]] {
                let t0 = run_with(&orig, &[("a", a)], d.clone(), ExecLimits::default());
                let t1 = run_with(&hoisted, &[("a", a)], d, ExecLimits::default());
                assert_eq!(t0.outputs, t1.outputs, "a={a}");
            }
        }
    }

    #[test]
    fn rejects_critical_edges() {
        let mut p = parse(
            "prog {
               block s { nondet a j }
               block a { x := 1; goto j }
               block j { out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(hoist_assignments(&mut p), Err(CriticalEdgeError));
    }

    /// Branch conditions block hoisting across them (the instance would
    /// be evaluated before the condition reads the old value).
    #[test]
    fn condition_use_blocks_edge_crossing() {
        let src = "prog {
            block s { if x < 3 then l else r }
            block l { x := 9; out(x); goto e2 }
            block r { x := 9; out(x + 1); goto e2 }
            block e2 { goto e }
            block e { halt }
        }";
        let got = hoist(src);
        expect(&got, src);
    }
}
