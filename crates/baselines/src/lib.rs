//! Baseline transformations the PLDI'94 PDCE paper positions itself
//! against, plus supporting classics:
//!
//! * [`liveness`] — live-variable analysis and iterated liveness DCE
//!   (the usual "totally dead" elimination; an independent cross-check
//!   of `pdce-core`'s dead analysis),
//! * [`duchain`] — def-use-chain marking DCE, the "standard method" of
//!   Section 5.2, whose removal set coincides with faint code
//!   elimination and whose graph size realizes the `O(i²·v)` bound,
//! * [`naive_sink`](mod@naive_sink) — a Briggs/Cooper-style loop-oblivious sinker that
//!   reproduces the Figure 6 impairment discussed in Related Work,
//! * [`copyprop`] — global copy propagation (footnote 1's interleaving
//!   partner),
//! * [`hoist`] — Dhamdhere-style assignment *hoisting* (\[9\]): the dual
//!   motion, which merges partially redundant assignments but cannot
//!   eliminate partially dead ones,
//! * [`lvn`] — local value numbering, the in-block companion that
//!   handles the redundancies block-level LCM leaves behind.

pub mod copyprop;
pub mod duchain;
pub mod hoist;
pub mod liveness;
pub mod lvn;
pub mod naive_sink;
pub mod passes;

pub use copyprop::{
    copy_propagate, copy_propagate_cached, copy_propagate_once, copy_propagate_once_cached,
};
pub use duchain::{duchain_dce, duchain_dce_cached, DuGraph};
pub use hoist::{hoist_assignments, hoist_assignments_cached, HoistOutcome};
pub use liveness::{liveness_dce, liveness_dce_cached, Liveness};
pub use lvn::{local_value_numbering, LvnStats};
pub use naive_sink::{naive_sink, naive_sink_cached, NaiveSinkOutcome};
pub use passes::{
    CopyPropPass, DuchainDcePass, HoistPass, LivenessDcePass, LvnPass, NaiveSinkPass,
};
