//! Classic liveness-based dead code elimination.
//!
//! An *independent* implementation of the paper's baseline: live-variable
//! analysis (the complement of Table 1's dead-variable analysis, as a
//! may-problem with union meet) driving iterated removal of assignments
//! whose left-hand side is not live afterwards. Kept deliberately
//! separate from `pdce-core`'s dead analysis so the two can cross-check
//! each other (`¬LIVE ≡ DEAD`).

use pdce_dfa::{solve, AnalysisCache, BitProblem, BitVec, Direction, GenKill, Meet};
use pdce_ir::{CfgView, NodeId, Program, Stmt, Terminator, Var};

/// Live-variable solution.
#[derive(Debug, Clone)]
pub struct Liveness {
    width: usize,
    solution: pdce_dfa::Solution,
}

fn stmt_transfer(prog: &Program, stmt: &Stmt, width: usize) -> GenKill {
    // live_in = USE ∪ (live_out ∖ DEF)
    let mut gen = BitVec::zeros(width);
    let mut kill = BitVec::zeros(width);
    if let Some(m) = stmt.modified() {
        kill.set(m.index(), true);
    }
    if let Some(t) = stmt.used_term() {
        for &v in prog.terms().vars_of(t) {
            gen.set(v.index(), true);
        }
    }
    GenKill::new(gen, kill)
}

fn term_transfer(prog: &Program, term: &Terminator, width: usize) -> GenKill {
    let mut gen = BitVec::zeros(width);
    if let Some(c) = term.used_term() {
        for &v in prog.terms().vars_of(c) {
            gen.set(v.index(), true);
        }
    }
    GenKill::new(gen, BitVec::zeros(width))
}

impl Liveness {
    /// Runs live-variable analysis.
    pub fn compute(prog: &Program, view: &CfgView) -> Liveness {
        let width = prog.num_vars();
        let transfer = prog
            .node_ids()
            .map(|n| {
                let block = prog.block(n);
                let stmts: Vec<GenKill> = block
                    .stmts
                    .iter()
                    .map(|s| stmt_transfer(prog, s, width))
                    .collect();
                let term = term_transfer(prog, &block.term, width);
                GenKill::compose_backward(width, stmts.iter().chain(std::iter::once(&term)))
            })
            .collect();
        let problem = BitProblem {
            direction: Direction::Backward,
            meet: Meet::Union,
            width,
            transfer,
            boundary: BitVec::zeros(width), // nothing live at program end
        };
        Liveness {
            width,
            solution: solve(view, &problem),
        }
    }

    /// Live set at block entry.
    pub fn at_entry(&self, n: NodeId) -> &BitVec {
        self.solution.at_entry(n)
    }

    /// Liveness vectors immediately after each statement of `n`.
    pub fn after_each_stmt(&self, prog: &Program, n: NodeId) -> Vec<BitVec> {
        let block = prog.block(n);
        let mut current =
            term_transfer(prog, &block.term, self.width).apply(self.solution.at_exit(n));
        let mut out = vec![BitVec::zeros(0); block.stmts.len()];
        for (k, stmt) in block.stmts.iter().enumerate().rev() {
            out[k] = current.clone();
            current = stmt_transfer(prog, stmt, self.width).apply(&current);
        }
        out
    }

    /// Whether `v` is live immediately after statement `k` of `n`.
    pub fn live_after(&self, prog: &Program, n: NodeId, k: usize, v: Var) -> bool {
        self.after_each_stmt(prog, n)[k].get(v.index())
    }
}

/// Iterated liveness-based DCE. Returns the number of assignments
/// removed.
pub fn liveness_dce(prog: &mut Program) -> u64 {
    liveness_dce_cached(prog, &mut AnalysisCache::new())
}

/// Like [`liveness_dce`], but shares `cache`'s [`CfgView`] across the
/// fixpoint rounds: the edits are statement-only, so the topology
/// survives every round and the cache merely refreshes the instruction
/// layout.
pub fn liveness_dce_cached(prog: &mut Program, cache: &mut AnalysisCache) -> u64 {
    let mut total = 0;
    loop {
        let view = cache.cfg(prog);
        let live = Liveness::compute(prog, &view);
        let mut removed = 0u64;
        for n in prog.node_ids().collect::<Vec<_>>() {
            let after = live.after_each_stmt(prog, n);
            let keep: Vec<Stmt> = prog
                .block(n)
                .stmts
                .iter()
                .enumerate()
                .filter_map(|(k, stmt)| match *stmt {
                    Stmt::Assign { lhs, .. } if !after[k].get(lhs.index()) => {
                        removed += 1;
                        None
                    }
                    s => Some(s),
                })
                .collect();
            if keep.len() != prog.block(n).stmts.len() {
                *prog.stmts_mut(n) = keep;
            }
        }
        if removed == 0 {
            return total;
        }
        total += removed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_core::dead::DeadSolution;
    use pdce_core::driver::{optimize, PdceConfig};
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{canonical_string, structural_eq};

    #[test]
    fn live_is_complement_of_dead() {
        let p = parse(
            "prog {
               block s  { x := a + b; y := x; nondet n1 n2 }
               block n1 { out(y); goto n3 }
               block n2 { y := 7; goto n3 }
               block n3 { out(y); nondet s2 e }
               block s2 { goto n3 }
               block e  { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let live = Liveness::compute(&p, &view);
        let dead = DeadSolution::compute(&p, &view);
        for n in p.node_ids() {
            let la = live.after_each_stmt(&p, n);
            let da = dead.after_each_stmt(&p, n);
            for k in 0..p.block(n).stmts.len() {
                for v in 0..p.num_vars() {
                    assert_ne!(
                        la[k].get(v),
                        da[k].get(v),
                        "live/dead must be complements at {}[{}] var {}",
                        p.block(n).name,
                        k,
                        v
                    );
                }
            }
        }
    }

    #[test]
    fn agrees_with_core_dce() {
        let src = "prog {
            block s  { a := c + 1; nondet n3 n4 }
            block n3 { goto n5 }
            block n4 { y := a + b; goto n5 }
            block n5 { y := c + d; out(y); goto e }
            block e  { halt }
        }";
        let mut p1 = parse(src).unwrap();
        liveness_dce(&mut p1);
        let mut p2 = parse(src).unwrap();
        optimize(&mut p2, &PdceConfig::dce_only()).unwrap();
        assert!(
            structural_eq(&p1, &p2),
            "liveness DCE and core dce disagree:\n{}\nvs\n{}",
            canonical_string(&p1),
            canonical_string(&p2)
        );
    }

    #[test]
    fn keeps_observable_assignments() {
        let mut p = parse("prog { block s { x := 1; out(x); goto e } block e { halt } }").unwrap();
        assert_eq!(liveness_dce(&mut p), 0);
    }

    #[test]
    fn removes_cascading_dead_code() {
        let mut p = parse(
            "prog { block s { a := 1; b := a + 1; c := b + 1; out(7); goto e } block e { halt } }",
        )
        .unwrap();
        assert_eq!(liveness_dce(&mut p), 3);
        assert_eq!(p.num_assignments(), 0);
    }
}
