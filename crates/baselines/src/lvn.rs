//! Local value numbering.
//!
//! The classical basic-block companion to lazy code motion: LCM only
//! removes *up-exposed* cross-block redundancies and leaves repeated
//! computations inside one block "for local value numbering" (see
//! `pdce-lcm`). This pass supplies that: within each block it assigns
//! value numbers to computed expressions, replaces a recomputation of an
//! available value with a reference to the variable that holds it, and
//! folds operations whose operands have constant values.
//!
//! The implementation is the standard hash-based LVN over our term IR:
//!
//! * a value number per `(op, vn(args))` tuple,
//! * per-variable current value numbers (invalidated on redefinition),
//! * a representative variable per value number (for reuse), dropped
//!   when the representative is overwritten,
//! * constant tracking per value number (for folding).

use std::collections::HashMap;

use pdce_ir::{Program, Stmt, TermData, TermId, Var};

/// Statistics of one LVN run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LvnStats {
    /// Right-hand sides replaced by a cheaper equivalent.
    pub replaced: u64,
    /// Terms folded to constants.
    pub folded: u64,
}

/// A value number.
type Vn = u32;

/// The symbolic shape of a value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ValueKey {
    Const(i64),
    /// An opaque input: the value a variable holds at block entry.
    Input(Var),
    Unary(pdce_ir::UnOp, Vn),
    Binary(pdce_ir::BinOp, Vn, Vn),
}

#[derive(Default)]
struct Numbering {
    table: HashMap<ValueKey, Vn>,
    /// Known constant per value number.
    consts: HashMap<Vn, i64>,
    /// Current value number of each variable.
    var_vn: HashMap<Var, Vn>,
    /// A variable currently holding each value number.
    holder: HashMap<Vn, Var>,
    next: Vn,
}

impl Numbering {
    fn vn_of_key(&mut self, key: ValueKey) -> Vn {
        if let Some(&vn) = self.table.get(&key) {
            return vn;
        }
        let vn = self.next;
        self.next += 1;
        if let ValueKey::Const(c) = key {
            self.consts.insert(vn, c);
        }
        self.table.insert(key, vn);
        vn
    }

    fn vn_of_var(&mut self, v: Var) -> Vn {
        if let Some(&vn) = self.var_vn.get(&v) {
            return vn;
        }
        let vn = self.vn_of_key(ValueKey::Input(v));
        self.var_vn.insert(v, vn);
        self.holder.entry(vn).or_insert(v);
        vn
    }

    /// Records that `v` now holds value number `vn`.
    fn assign(&mut self, v: Var, vn: Vn) {
        // If v was the representative of its old value, retire it.
        if let Some(&old) = self.var_vn.get(&v) {
            if self.holder.get(&old) == Some(&v) {
                self.holder.remove(&old);
            }
        }
        self.var_vn.insert(v, vn);
        self.holder.entry(vn).or_insert(v);
    }
}

/// Rebuilds a term bottom-up, folding constant subvalues. Returns the
/// rewritten term and its value number.
fn simplify(
    prog: &mut Program,
    numbering: &mut Numbering,
    t: TermId,
    stats: &mut LvnStats,
) -> (TermId, Vn) {
    match prog.terms().data(t) {
        TermData::Const(c) => (t, numbering.vn_of_key(ValueKey::Const(c))),
        TermData::Var(v) => {
            let vn = numbering.vn_of_var(v);
            // Constant-valued variable: inline the constant.
            if let Some(&c) = numbering.consts.get(&vn) {
                stats.folded += 1;
                return (prog.terms_mut().constant(c), vn);
            }
            (t, vn)
        }
        TermData::Unary(op, a) => {
            let (a2, va) = simplify(prog, numbering, a, stats);
            let vn = numbering.vn_of_key(ValueKey::Unary(op, va));
            if let Some(&c) = numbering.consts.get(&va) {
                let folded = match op {
                    pdce_ir::UnOp::Neg => c.wrapping_neg(),
                    pdce_ir::UnOp::Not => i64::from(c == 0),
                };
                numbering.consts.insert(vn, folded);
                stats.folded += 1;
                return (prog.terms_mut().constant(folded), vn);
            }
            (prog.terms_mut().unary(op, a2), vn)
        }
        TermData::Binary(op, a, b) => {
            let (a2, va) = simplify(prog, numbering, a, stats);
            let (b2, vb) = simplify(prog, numbering, b, stats);
            let vn = numbering.vn_of_key(ValueKey::Binary(op, va, vb));
            if let (Some(&ca), Some(&cb)) = (numbering.consts.get(&va), numbering.consts.get(&vb)) {
                let ta = prog.terms_mut().constant(ca);
                let tb = prog.terms_mut().constant(cb);
                let tt = prog.terms_mut().binary(op, ta, tb);
                let folded =
                    pdce_ir::interp::eval_term(prog, &pdce_ir::interp::Env::zeroed(prog), tt);
                numbering.consts.insert(vn, folded);
                stats.folded += 1;
                return (prog.terms_mut().constant(folded), vn);
            }
            (prog.terms_mut().binary(op, a2, b2), vn)
        }
    }
}

/// Runs local value numbering over every block. Returns statistics.
///
/// # Example
///
/// ```
/// use pdce_baselines::local_value_numbering;
/// use pdce_ir::parser::parse;
///
/// let mut prog = parse(
///     "prog { block s { x := a + b; y := a + b; out(x + y); goto e }
///             block e { halt } }",
/// )?;
/// let stats = local_value_numbering(&mut prog);
/// assert_eq!(stats.replaced, 1); // y := x
/// # Ok::<(), pdce_ir::ParseError>(())
/// ```
pub fn local_value_numbering(prog: &mut Program) -> LvnStats {
    let mut stats = LvnStats::default();
    for n in prog.node_ids().collect::<Vec<_>>() {
        let mut numbering = Numbering::default();
        let block_len = prog.block(n).stmts.len();
        for k in 0..block_len {
            let stmt = prog.block(n).stmts[k];
            match stmt {
                Stmt::Skip => {}
                Stmt::Out(t) => {
                    let (t2, _) = simplify(prog, &mut numbering, t, &mut stats);
                    if t2 != t {
                        prog.block_mut(n).stmts[k] = Stmt::Out(t2);
                    }
                }
                Stmt::Assign { lhs, rhs } => {
                    let (rhs2, vn) = simplify(prog, &mut numbering, rhs, &mut stats);
                    // An existing holder of the same value makes the
                    // whole computation a copy.
                    let new_rhs = match numbering.holder.get(&vn) {
                        Some(&h) if h != lhs && !is_trivial(prog, rhs2) => {
                            stats.replaced += 1;
                            prog.terms_mut().var(h)
                        }
                        _ => rhs2,
                    };
                    if new_rhs != rhs {
                        prog.block_mut(n).stmts[k] = Stmt::Assign { lhs, rhs: new_rhs };
                    }
                    numbering.assign(lhs, vn);
                }
            }
        }
        // The branch condition participates too.
        if let Some(c) = prog.block(n).term.used_term() {
            let (c2, _) = simplify(prog, &mut numbering, c, &mut stats);
            if c2 != c {
                if let pdce_ir::Terminator::Cond { cond, .. } = &mut prog.block_mut(n).term {
                    *cond = c2;
                }
            }
        }
    }
    stats
}

/// Whether replacing this term with a variable read would not help.
fn is_trivial(prog: &Program, t: TermId) -> bool {
    matches!(prog.terms().data(t), TermData::Const(_) | TermData::Var(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::interp::{run_with, ExecLimits};
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{diff, structural_eq};

    fn check(src: &str, expected: &str) {
        let mut p = parse(src).unwrap();
        local_value_numbering(&mut p);
        let want = parse(expected).unwrap();
        assert!(structural_eq(&p, &want), "{}", diff(&p, &want));
        // Semantics must hold for a few inputs.
        let orig = parse(src).unwrap();
        for a in [-7i64, 0, 13] {
            let t0 = run_with(
                &orig,
                &[("a", a), ("b", 2)],
                vec![0, 1],
                ExecLimits::default(),
            );
            let t1 = run_with(&p, &[("a", a), ("b", 2)], vec![0, 1], ExecLimits::default());
            assert_eq!(t0.outputs, t1.outputs, "a={a}");
        }
    }

    #[test]
    fn redundant_computation_becomes_copy() {
        check(
            "prog { block s { x := a + b; y := a + b; out(x + y); goto e } block e { halt } }",
            "prog { block s { x := a + b; y := x; out(x + y); goto e } block e { halt } }",
        );
    }

    #[test]
    fn redefinition_invalidates() {
        check(
            "prog { block s { x := a + b; a := 1; y := a + b; out(y); goto e } block e { halt } }",
            // a's value changed: a + b now folds differently — a is the
            // constant 1, but b is unknown, so y := 1 + b (not a copy).
            "prog { block s { x := a + b; a := 1; y := 1 + b; out(y); goto e } block e { halt } }",
        );
    }

    #[test]
    fn constants_fold_through_chains() {
        check(
            "prog { block s { x := 2 + 3; y := x * 2; out(y - 1); goto e } block e { halt } }",
            "prog { block s { x := 5; y := 10; out(9); goto e } block e { halt } }",
        );
    }

    #[test]
    fn overwritten_holder_is_not_reused() {
        check(
            "prog { block s { x := a + b; x := 7; y := a + b; out(x + y); goto e } block e { halt } }",
            // x no longer holds a+b when y is computed: recompute. The
            // constant value of x, however, propagates into the out.
            "prog { block s { x := a + b; x := 7; y := a + b; out(7 + y); goto e } block e { halt } }",
        );
    }

    #[test]
    fn numbering_is_block_local() {
        check(
            "prog {
               block s { x := a + b; nondet l r }
               block l { y := a + b; out(y); goto e2 }
               block r { out(x); goto e2 }
               block e2 { goto e }
               block e { halt }
             }",
            // The recomputation in l is in another block: untouched
            // (that is LCM's job).
            "prog {
               block s { x := a + b; nondet l r }
               block l { y := a + b; out(y); goto e2 }
               block r { out(x); goto e2 }
               block e2 { goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn conditions_are_simplified() {
        check(
            "prog {
               block s { x := 4; if x < 9 then t else f }
               block t { out(1); goto e }
               block f { out(2); goto e }
               block e { halt }
             }",
            "prog {
               block s { x := 4; if 1 then t else f }
               block t { out(1); goto e }
               block f { out(2); goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn copies_share_value_numbers() {
        check(
            "prog { block s { x := a; y := x; z := a + y; w := a + x; out(z + w); goto e } block e { halt } }",
            // y and x and a share a value number, so a+y ≡ a+x: w := z.
            "prog { block s { x := a; y := x; z := a + y; w := z; out(z + w); goto e } block e { halt } }",
        );
    }

    #[test]
    fn lcm_plus_lvn_covers_both_redundancy_kinds() {
        // In-block (second a+b) and cross-block (j's a+b) redundancy.
        let src = "prog {
            block s { x := a + b; y := a + b; out(x + y); goto j }
            block j { z := a + b; out(z); goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        local_value_numbering(&mut p);
        pdce_lcm::lazy_code_motion(&mut p).unwrap();
        let printed = pdce_ir::printer::print_program(&p);
        assert_eq!(
            printed.matches("a + b").count(),
            1,
            "exactly one computation should remain:\n{printed}"
        );
        let orig = parse(src).unwrap();
        let t0 = run_with(&orig, &[("a", 5), ("b", 6)], vec![], ExecLimits::default());
        let t1 = run_with(&p, &[("a", 5), ("b", 6)], vec![], ExecLimits::default());
        assert_eq!(t0.outputs, t1.outputs);
    }
}
