//! A naive, loop-oblivious instruction sinker in the spirit of Briggs &
//! Cooper's sinking pass (Related Work, discussion of Figure 6).
//!
//! The paper's criticism: "their strategy of instruction sinking can
//! significantly impair certain program executions, since instructions
//! can be moved into loops in a way which cannot be 'repaired' by a
//! subsequent partial redundancy elimination". This module reproduces
//! exactly that behaviour as a *semantics-preserving but potentially
//! impairing* strawman:
//!
//! * a sinking candidate moves from block `n` into its sole successor
//!   `m` whenever `n` is `m`'s only predecessor (safe, also done by
//!   `ask`), **and additionally**
//! * a candidate moves into a natural-loop header `m` even when `m` has
//!   back-edge predecessors, provided the re-execution per iteration is
//!   value-identical: the pattern's operands and left-hand side are not
//!   modified anywhere in the loop (other than by the moved assignment
//!   itself) and the candidate's source dominates... is the unique
//!   non-latch predecessor. The program then recomputes the assignment
//!   on *every* iteration — same semantics, strictly more work.
//!
//! Dead code elimination afterwards cannot remove the loop copy (its
//! value is used), and lazy code motion cannot hoist it back out for
//! safety reasons — which the `related_work` integration tests verify.

use pdce_dfa::AnalysisCache;
use pdce_ir::{CfgView, NodeId, Program, Stmt};

use pdce_core::local::LocalInfo;
use pdce_core::patterns::PatternTable;

/// Outcome of the naive sinking pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveSinkOutcome {
    /// Moves into ordinary successors.
    pub plain_moves: u64,
    /// Moves into loop headers (the impairing kind).
    pub loop_moves: u64,
}

/// Runs the naive sinker until no move applies (bounded by a pass cap).
///
/// # Example
///
/// ```
/// use pdce_baselines::naive_sink;
/// use pdce_ir::parser::parse;
///
/// // The strawman pushes the invariant assignment INTO the loop.
/// let mut prog = parse(
///     "prog { block pre { x := a + b; goto h }
///             block h { y := y + x; if i < n then h2 else post }
///             block h2 { i := i + 1; goto h }
///             block post { out(y); goto e } block e { halt } }",
/// )?;
/// let outcome = naive_sink(&mut prog);
/// assert_eq!(outcome.loop_moves, 1);
/// # Ok::<(), pdce_ir::ParseError>(())
/// ```
pub fn naive_sink(prog: &mut Program) -> NaiveSinkOutcome {
    naive_sink_cached(prog, &mut AnalysisCache::new())
}

/// Like [`naive_sink`], but shares `cache`'s [`CfgView`] across the
/// sweeps: moves only edit statement lists, so the topology survives
/// every sweep and the cache merely refreshes the instruction layout.
pub fn naive_sink_cached(prog: &mut Program, cache: &mut AnalysisCache) -> NaiveSinkOutcome {
    let mut outcome = NaiveSinkOutcome::default();
    let max_passes = prog.num_blocks() * 2 + 4;
    for _ in 0..max_passes {
        if !one_pass(prog, cache, &mut outcome) {
            break;
        }
    }
    outcome
}

/// One sweep over all blocks; returns whether anything moved.
fn one_pass(prog: &mut Program, cache: &mut AnalysisCache, outcome: &mut NaiveSinkOutcome) -> bool {
    let view = cache.cfg(prog);
    let table = PatternTable::build(prog);
    if table.is_empty() {
        return false;
    }
    let local = LocalInfo::compute(prog, &table);
    let back_edges = view.natural_back_edges();

    // Collect loop bodies per header.
    let mut loop_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); prog.num_blocks()];
    for &(tail, head) in &back_edges {
        for n in natural_loop(&view, tail, head) {
            if !loop_nodes[head.index()].contains(&n) {
                loop_nodes[head.index()].push(n);
            }
        }
    }

    for n in prog.node_ids().collect::<Vec<_>>() {
        let succs = view.succs(n).to_vec();
        if succs.len() != 1 {
            continue;
        }
        let m = succs[0];
        if m == prog.exit() || m == n {
            continue;
        }
        let Some(&(k, pat)) = local.candidates_of(n).first() else {
            continue;
        };
        let (lhs, rhs) = table.pattern(pat);
        let preds_m = view.preds(m).to_vec();
        let plain = preds_m == [n];
        let loopy = !plain
            && preds_m
                .iter()
                .all(|&p| p == n || loop_nodes[m.index()].contains(&p))
            && loop_is_transparent(prog, &loop_nodes[m.index()], pat, &table);
        if !(plain || loopy) {
            continue;
        }
        let moved = prog.stmts_mut(n).remove(k);
        debug_assert_eq!(moved, Stmt::Assign { lhs, rhs });
        prog.stmts_mut(m).insert(0, moved);
        if plain {
            outcome.plain_moves += 1;
        } else {
            outcome.loop_moves += 1;
        }
        return true; // restart with fresh analyses
    }
    false
}

/// Nodes of the natural loop of back edge `(tail, head)`.
fn natural_loop(view: &CfgView, tail: NodeId, head: NodeId) -> Vec<NodeId> {
    let mut body = vec![head];
    let mut stack = vec![tail];
    while let Some(x) = stack.pop() {
        if body.contains(&x) {
            continue;
        }
        body.push(x);
        for &p in view.preds(x) {
            stack.push(p);
        }
    }
    body
}

/// Whether re-executing `x := t` once per iteration of the loop is
/// value-identical: no loop instruction modifies `x` or an operand of
/// `t`. (Uses of `x` are fine — they read the same value.)
fn loop_is_transparent(prog: &Program, body: &[NodeId], pat: usize, table: &PatternTable) -> bool {
    let (x, t) = table.pattern(pat);
    for &n in body {
        for stmt in &prog.block(n).stmts {
            if let Some(m) = stmt.modified() {
                if m == x || prog.terms().term_uses(t, m) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::interp::{run_with, ExecLimits};
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{diff, structural_eq};

    /// The Figure 6 situation: an assignment sitting just before a loop
    /// whose body *uses* it is pushed into the loop header.
    #[test]
    fn pushes_assignment_into_loop() {
        let mut p = parse(
            "prog {
               block pre { x := a + b; goto h }
               block h { i := i + 1; y := y + x; if i < n then h2 else post }
               block h2 { goto h }
               block post { out(y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let orig = p.clone();
        let out = naive_sink(&mut p);
        assert_eq!(out.loop_moves, 1);
        let expected = parse(
            "prog {
               block pre { goto h }
               block h { x := a + b; i := i + 1; y := y + x; if i < n then h2 else post }
               block h2 { goto h }
               block post { out(y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert!(structural_eq(&p, &expected), "{}", diff(&p, &expected));

        // Semantics preserved, dynamic work increased.
        let inputs = [("a", 3), ("b", 4), ("n", 5)];
        let t0 = run_with(&orig, &inputs, vec![], ExecLimits::default());
        let t1 = run_with(&p, &inputs, vec![], ExecLimits::default());
        assert_eq!(t0.outputs, t1.outputs);
        assert!(
            t1.executed_assignments > t0.executed_assignments,
            "naive sinking must impair the execution: {} vs {}",
            t1.executed_assignments,
            t0.executed_assignments
        );
    }

    /// When the loop modifies an operand the move is rejected (it would
    /// change semantics).
    #[test]
    fn refuses_unsound_loop_move() {
        let src = "prog {
            block pre { x := a + b; goto h }
            block h { a := a + 1; y := y + x; if a < n then h2 else post }
            block h2 { goto h }
            block post { out(y); goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        let out = naive_sink(&mut p);
        assert_eq!(out.loop_moves, 0);
        assert!(structural_eq(&p, &parse(src).unwrap()));
    }

    #[test]
    fn plain_chain_moves_toward_use() {
        let mut p = parse(
            "prog {
               block a { x := 1 + c; goto b }
               block b { skip; goto c1 }
               block c1 { out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let out = naive_sink(&mut p);
        assert!(out.plain_moves >= 2);
        let c1 = p.block_by_name("c1").unwrap();
        assert_eq!(p.block(c1).stmts.len(), 2, "x := 1 + c arrives at its use");
    }

    #[test]
    fn semantics_preserved_on_random_inputs() {
        let src = "prog {
            block pre { x := a * 2; goto h }
            block h { i := i + 1; s := s + x; if i < n then h2 else post }
            block h2 { goto h }
            block post { out(s); out(i); goto e }
            block e { halt }
        }";
        let orig = parse(src).unwrap();
        let mut sunk = parse(src).unwrap();
        naive_sink(&mut sunk);
        for a in [-5i64, 0, 3, 99] {
            for n in [0i64, 1, 7] {
                let inputs = [("a", a), ("n", n)];
                let t0 = run_with(&orig, &inputs, vec![], ExecLimits::default());
                let t1 = run_with(&sunk, &inputs, vec![], ExecLimits::default());
                assert_eq!(t0.outputs, t1.outputs, "a={a} n={n}");
            }
        }
    }
}
