//! [`Pass`] adapters for the baseline transformations, so they compose
//! in the workspace-wide pass pipeline alongside `pde`/`pfe`, LCM, and
//! the SSA passes.

use pdce_dfa::{AnalysisCache, Pass, PassOutcome, Preserves};
use pdce_ir::edgesplit::{has_critical_edges, split_critical_edges};
use pdce_ir::Program;

use crate::copyprop::copy_propagate_cached;
use crate::duchain::duchain_dce_cached;
use crate::hoist::hoist_assignments_cached;
use crate::liveness::liveness_dce_cached;
use crate::lvn::local_value_numbering;
use crate::naive_sink::naive_sink_cached;

/// Finalizes the outcome of a statement-only transform: when the
/// revision moved, the CFG shape still survives, so the cache keeps its
/// CFG-shaped entries; when nothing moved, everything survives.
fn finish_stmt_only(
    prog: &Program,
    cache: &mut AnalysisCache,
    before: u64,
    mut out: PassOutcome,
) -> PassOutcome {
    if prog.revision() == before {
        PassOutcome::unchanged()
    } else {
        out.changed = true;
        out.preserves = Preserves::Cfg;
        cache.retain(prog, Preserves::Cfg);
        out
    }
}

/// Iterated live-variable DCE (totally dead assignments only).
pub struct LivenessDcePass;

impl Pass for LivenessDcePass {
    fn name(&self) -> &'static str {
        "liveness-dce"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let before = prog.revision();
        let removed = liveness_dce_cached(prog, cache);
        finish_stmt_only(
            prog,
            cache,
            before,
            PassOutcome {
                removed,
                ..PassOutcome::default()
            },
        )
    }
}

/// Def-use-chain marking DCE (the "standard method" of Section 5.2).
pub struct DuchainDcePass;

impl Pass for DuchainDcePass {
    fn name(&self) -> &'static str {
        "duchain-dce"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let before = prog.revision();
        let removed = duchain_dce_cached(prog, cache);
        finish_stmt_only(
            prog,
            cache,
            before,
            PassOutcome {
                removed,
                ..PassOutcome::default()
            },
        )
    }
}

/// Global copy propagation. Rewrites right-hand sides and branch
/// conditions in place; the CFG shape is untouched.
pub struct CopyPropPass;

impl Pass for CopyPropPass {
    fn name(&self) -> &'static str {
        "copyprop"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let before = prog.revision();
        let rewritten = copy_propagate_cached(prog, cache);
        finish_stmt_only(
            prog,
            cache,
            before,
            PassOutcome {
                rewritten,
                ..PassOutcome::default()
            },
        )
    }
}

/// Local value numbering.
pub struct LvnPass;

impl Pass for LvnPass {
    fn name(&self) -> &'static str {
        "lvn"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let before = prog.revision();
        let stats = local_value_numbering(prog);
        finish_stmt_only(
            prog,
            cache,
            before,
            PassOutcome {
                rewritten: stats.replaced + stats.folded,
                ..PassOutcome::default()
            },
        )
    }
}

/// Dhamdhere-style assignment hoisting. Splits critical edges first when
/// necessary (the only CFG-shape change).
pub struct HoistPass;

impl Pass for HoistPass {
    fn name(&self) -> &'static str {
        "hoist"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let mut out = PassOutcome::unchanged();
        if has_critical_edges(prog) {
            split_critical_edges(prog);
            out.merge(&PassOutcome {
                changed: true,
                preserves: Preserves::Nothing,
                ..PassOutcome::default()
            });
        }
        let before = prog.revision();
        let hoisted =
            hoist_assignments_cached(prog, cache).expect("critical edges were just split");
        let inner = finish_stmt_only(
            prog,
            cache,
            before,
            PassOutcome {
                removed: hoisted.removed,
                inserted: hoisted.inserted,
                ..PassOutcome::default()
            },
        );
        out.merge(&inner);
        out
    }
}

/// The loop-oblivious Briggs/Cooper-style sinker (Figure 6's
/// impairment).
pub struct NaiveSinkPass;

impl Pass for NaiveSinkPass {
    fn name(&self) -> &'static str {
        "naive-sink"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let before = prog.revision();
        let moves = naive_sink_cached(prog, cache);
        let moved = moves.plain_moves + moves.loop_moves;
        finish_stmt_only(
            prog,
            cache,
            before,
            PassOutcome {
                removed: moved,
                inserted: moved,
                ..PassOutcome::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    #[test]
    fn liveness_pass_reports_removals_and_preservation() {
        let mut p =
            parse("prog { block s { x := 1; y := 2; out(y); goto e } block e { halt } }").unwrap();
        let mut cache = AnalysisCache::new();
        cache.cfg(&p);
        let out = LivenessDcePass.run(&mut p, &mut cache);
        assert_eq!(out.removed, 1);
        assert_eq!(out.preserves, Preserves::Cfg);
        // The CFG entry survived the statement-only edit: the only cold
        // build is the warm-up above, every later read (including the
        // pass's own fixpoint rounds) hits the cache.
        cache.cfg(&p);
        assert_eq!(cache.stats().cfg_misses, 1);
        assert!(cache.stats().cfg_hits >= 1);
        let again = LivenessDcePass.run(&mut p, &mut cache);
        assert!(!again.changed);
        assert_eq!(again.preserves, Preserves::All);
    }

    #[test]
    fn hoist_pass_handles_critical_edges() {
        let mut p = parse(
            "prog {
               block s { nondet a j }
               block a { x := c + 1; goto j }
               block j { x := c + 1; out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let out = HoistPass.run(&mut p, &mut AnalysisCache::new());
        assert!(out.changed);
        assert_eq!(out.preserves, Preserves::Nothing);
    }

    #[test]
    fn copyprop_and_lvn_count_rewrites() {
        let mut p =
            parse("prog { block s { x := a; y := x + 1; out(y); goto e } block e { halt } }")
                .unwrap();
        let out = CopyPropPass.run(&mut p, &mut AnalysisCache::new());
        assert!(out.rewritten >= 1);
        let mut p =
            parse("prog { block s { x := 2 + 3; out(x); goto e } block e { halt } }").unwrap();
        let out = LvnPass.run(&mut p, &mut AnalysisCache::new());
        assert!(out.rewritten >= 1);
    }
}
