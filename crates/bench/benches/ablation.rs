//! Ablation: pre-composed block transfer summaries vs. per-instruction
//! transfer application inside the dead-variable solver (the design
//! decision called out in DESIGN.md §5).
//!
//! With summaries, one solver evaluation costs one gen/kill application;
//! without, it costs one per instruction — same fixpoint (tested in
//! `pdce-core`), different constant factors, especially on programs with
//! long blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pdce_core::DeadSolution;
use pdce_ir::CfgView;
use pdce_progen::{structured, GenConfig};

fn workload(stmts_per_block: usize) -> pdce_ir::Program {
    structured(&GenConfig {
        seed: 9,
        target_blocks: 96,
        num_vars: 10,
        stmts_per_block: (stmts_per_block, stmts_per_block),
        out_prob: 0.2,
        loop_prob: 0.35,
        max_depth: 8,
        expr_depth: 2,
        nondet: true,
    })
}

fn bench_summarized_vs_per_instruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("dead_analysis_ablation");
    for stmts in [2usize, 8, 24] {
        let prog = workload(stmts);
        let view = CfgView::new(&prog);
        group.bench_with_input(
            BenchmarkId::new("summarized", stmts),
            &(),
            |b, ()| b.iter(|| DeadSolution::compute(&prog, &view)),
        );
        group.bench_with_input(
            BenchmarkId::new("per_instruction", stmts),
            &(),
            |b, ()| b.iter(|| DeadSolution::compute_per_instruction(&prog, &view)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_summarized_vs_per_instruction);
criterion_main!(benches);
