//! Ablation: pre-composed block transfer summaries vs. per-instruction
//! transfer application inside the dead-variable solver (the design
//! decision called out in DESIGN.md §5).
//!
//! With summaries, one solver evaluation costs one gen/kill application;
//! without, it costs one per instruction — same fixpoint (tested in
//! `pdce-core`), different constant factors, especially on programs with
//! long blocks.
//!
//! Run with: `cargo bench -p pdce-bench --bench ablation`

use pdce_bench::timeit;
use pdce_core::DeadSolution;
use pdce_ir::CfgView;
use pdce_progen::{structured, GenConfig};

fn workload(stmts_per_block: usize) -> pdce_ir::Program {
    structured(&GenConfig {
        seed: 9,
        target_blocks: 96,
        num_vars: 10,
        stmts_per_block: (stmts_per_block, stmts_per_block),
        out_prob: 0.2,
        loop_prob: 0.35,
        max_depth: 8,
        expr_depth: 2,
        nondet: true,
    })
}

fn main() {
    timeit::group("dead_analysis_ablation");
    for stmts in [2usize, 8, 24] {
        let prog = workload(stmts);
        let view = CfgView::new(&prog);
        timeit::report(&format!("summarized/{stmts}"), || {
            DeadSolution::compute(&prog, &view)
        });
        timeit::report(&format!("per_instruction/{stmts}"), || {
            DeadSolution::compute_per_instruction(&prog, &view)
        });
    }
}
