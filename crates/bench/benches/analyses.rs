//! C3/C6: costs of the component analyses (Section 6.1) — the dead,
//! faint and delayability solvers, the baseline liveness analysis, and
//! the du-chain graph construction (including its quadratic worst case).
//!
//! Run with: `cargo bench -p pdce-bench --bench analyses`

use pdce_baselines::duchain::DuGraph;
use pdce_baselines::liveness::Liveness;
use pdce_bench::timeit;
use pdce_core::{DeadSolution, DelayInfo, FaintSolution, LocalInfo, PatternTable};
use pdce_ir::CfgView;
use pdce_progen::{many_defs_many_uses, structured, GenConfig};
use pdce_ssa::SsaWeb;

fn workload(n: usize) -> pdce_ir::Program {
    structured(&GenConfig {
        seed: 5,
        target_blocks: n,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.2,
        loop_prob: 0.3,
        max_depth: 12,
        expr_depth: 2,
        nondet: true,
    })
}

fn main() {
    let sizes = [64usize, 256];

    timeit::group("analysis_dead");
    for &n in &sizes {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        timeit::report(&n.to_string(), || DeadSolution::compute(&prog, &view));
    }

    timeit::group("analysis_faint");
    for &n in &sizes {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        timeit::report(&n.to_string(), || FaintSolution::compute(&prog, &view));
    }

    timeit::group("analysis_delayability");
    for &n in &sizes {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        let table = PatternTable::build(&prog);
        let local = LocalInfo::compute(&prog, &table);
        timeit::report(&n.to_string(), || {
            DelayInfo::compute(&prog, &view, &table, &local)
        });
    }

    timeit::group("analysis_liveness");
    for &n in &sizes {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        timeit::report(&n.to_string(), || Liveness::compute(&prog, &view));
    }

    timeit::group("duchain_build");
    for &n in &sizes {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        timeit::report(&format!("structured/{n}"), || DuGraph::build(&prog, &view));
    }
    // The quadratic worst case of Section 5.2.
    for k in [32usize, 128] {
        let prog = many_defs_many_uses(k);
        let view = CfgView::new(&prog);
        timeit::report(&format!("quadratic/{k}"), || DuGraph::build(&prog, &view));
    }

    timeit::group("ssa_web_build");
    for &n in &sizes {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        timeit::report(&format!("structured/{n}"), || SsaWeb::build(&prog, &view));
    }
    for k in [32usize, 128] {
        let prog = many_defs_many_uses(k);
        let view = CfgView::new(&prog);
        timeit::report(&format!("quadratic_family/{k}"), || {
            SsaWeb::build(&prog, &view)
        });
    }
}
