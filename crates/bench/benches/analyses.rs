//! C3/C6: costs of the component analyses (Section 6.1) — the dead,
//! faint and delayability solvers, the baseline liveness analysis, and
//! the du-chain graph construction (including its quadratic worst case).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pdce_baselines::duchain::DuGraph;
use pdce_baselines::liveness::Liveness;
use pdce_core::{DeadSolution, DelayInfo, FaintSolution, LocalInfo, PatternTable};
use pdce_ir::CfgView;
use pdce_progen::{many_defs_many_uses, structured, GenConfig};
use pdce_ssa::SsaWeb;

fn workload(n: usize) -> pdce_ir::Program {
    structured(&GenConfig {
        seed: 5,
        target_blocks: n,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.2,
        loop_prob: 0.3,
        max_depth: 12,
        expr_depth: 2,
        nondet: true,
    })
}

fn bench_dead(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_dead");
    for n in [64usize, 256] {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| DeadSolution::compute(&prog, &view))
        });
    }
    group.finish();
}

fn bench_faint(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_faint");
    for n in [64usize, 256] {
        let prog = workload(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| FaintSolution::compute(&prog))
        });
    }
    group.finish();
}

fn bench_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_delayability");
    for n in [64usize, 256] {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        let table = PatternTable::build(&prog);
        let local = LocalInfo::compute(&prog, &table);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| DelayInfo::compute(&prog, &view, &table, &local))
        });
    }
    group.finish();
}

fn bench_liveness(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_liveness");
    for n in [64usize, 256] {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| Liveness::compute(&prog, &view))
        });
    }
    group.finish();
}

fn bench_duchain(c: &mut Criterion) {
    let mut group = c.benchmark_group("duchain_build");
    for n in [64usize, 256] {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        group.bench_with_input(BenchmarkId::new("structured", n), &(), |b, ()| {
            b.iter(|| DuGraph::build(&prog, &view))
        });
    }
    // The quadratic worst case of Section 5.2.
    for k in [32usize, 128] {
        let prog = many_defs_many_uses(k);
        let view = CfgView::new(&prog);
        group.bench_with_input(BenchmarkId::new("quadratic", k), &(), |b, ()| {
            b.iter(|| DuGraph::build(&prog, &view))
        });
    }
    group.finish();
}

fn bench_ssa_web(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssa_web_build");
    for n in [64usize, 256] {
        let prog = workload(n);
        let view = CfgView::new(&prog);
        group.bench_with_input(BenchmarkId::new("structured", n), &(), |b, ()| {
            b.iter(|| SsaWeb::build(&prog, &view))
        });
    }
    for k in [32usize, 128] {
        let prog = many_defs_many_uses(k);
        let view = CfgView::new(&prog);
        group.bench_with_input(BenchmarkId::new("quadratic_family", k), &(), |b, ()| {
            b.iter(|| SsaWeb::build(&prog, &view))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dead,
    bench_faint,
    bench_delay,
    bench_liveness,
    bench_duchain,
    bench_ssa_web
);
criterion_main!(benches);
