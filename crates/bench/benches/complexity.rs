//! C1/C2: runtime scaling of pde and pfe (Section 6.4 of the paper).
//!
//! Criterion series over structured program sizes; the `report` binary
//! fits the growth exponents from the same workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pdce_core::driver::{optimize, PdceConfig};
use pdce_progen::{corridor, diamond_ladder, second_order_tower, structured, GenConfig};

fn structured_of_size(n: usize) -> pdce_ir::Program {
    structured(&GenConfig {
        seed: 11,
        target_blocks: n,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.2,
        loop_prob: 0.3,
        max_depth: 12,
        expr_depth: 2,
        nondet: true,
    })
}

fn bench_pde_structured(c: &mut Criterion) {
    let mut group = c.benchmark_group("pde_structured");
    group.sample_size(10);
    for n in [32usize, 128, 512] {
        let prog = structured_of_size(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &prog, |b, prog| {
            b.iter(|| {
                let mut clone = prog.clone();
                optimize(&mut clone, &PdceConfig::pde()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_pfe_structured(c: &mut Criterion) {
    let mut group = c.benchmark_group("pfe_structured");
    group.sample_size(10);
    for n in [32usize, 128, 512] {
        let prog = structured_of_size(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &prog, |b, prog| {
            b.iter(|| {
                let mut clone = prog.clone();
                optimize(&mut clone, &PdceConfig::pfe()).unwrap()
            })
        });
    }
    group.finish();
}

/// Long-distance sinking is a single delayability solve regardless of
/// corridor length (contrast with per-round approaches).
fn bench_corridor(c: &mut Criterion) {
    let mut group = c.benchmark_group("pde_corridor");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let prog = corridor(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &prog, |b, prog| {
            b.iter(|| {
                let mut clone = prog.clone();
                optimize(&mut clone, &PdceConfig::pde()).unwrap()
            })
        });
    }
    group.finish();
}

/// The round-count stress case: r grows linearly with the tower height
/// (C4), so total work is quadratic here — the paper's r·(c_dce + c_ask)
/// formula in action.
fn bench_tower(c: &mut Criterion) {
    let mut group = c.benchmark_group("pde_second_order_tower");
    group.sample_size(10);
    for k in [8usize, 32, 128] {
        let prog = second_order_tower(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &prog, |b, prog| {
            b.iter(|| {
                let mut clone = prog.clone();
                optimize(&mut clone, &PdceConfig::pde()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("pde_diamond_ladder");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        let prog = diamond_ladder(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &prog, |b, prog| {
            b.iter(|| {
                let mut clone = prog.clone();
                optimize(&mut clone, &PdceConfig::pde()).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pde_structured,
    bench_pfe_structured,
    bench_corridor,
    bench_tower,
    bench_ladder
);
criterion_main!(benches);
