//! C1/C2: runtime scaling of pde and pfe (Section 6.4 of the paper).
//!
//! Timing series over structured program sizes; the `report` binary
//! fits the growth exponents from the same workloads.
//!
//! Run with: `cargo bench -p pdce-bench --bench complexity`

use pdce_bench::timeit;
use pdce_core::driver::{optimize, PdceConfig};
use pdce_progen::{corridor, diamond_ladder, second_order_tower, structured, GenConfig};

fn structured_of_size(n: usize) -> pdce_ir::Program {
    structured(&GenConfig {
        seed: 11,
        target_blocks: n,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.2,
        loop_prob: 0.3,
        max_depth: 12,
        expr_depth: 2,
        nondet: true,
    })
}

fn time_config(group: &str, config: &PdceConfig, cases: &[(String, pdce_ir::Program)]) {
    timeit::group(group);
    for (label, prog) in cases {
        timeit::report(label, || {
            let mut clone = prog.clone();
            optimize(&mut clone, config).unwrap()
        });
    }
}

fn main() {
    let structured: Vec<_> = [32usize, 128, 512]
        .iter()
        .map(|&n| (n.to_string(), structured_of_size(n)))
        .collect();
    time_config("pde_structured", &PdceConfig::pde(), &structured);
    time_config("pfe_structured", &PdceConfig::pfe(), &structured);

    // Long-distance sinking is a single delayability solve regardless of
    // corridor length (contrast with per-round approaches).
    let corridors: Vec<_> = [64usize, 256, 1024]
        .iter()
        .map(|&n| (n.to_string(), corridor(n)))
        .collect();
    time_config("pde_corridor", &PdceConfig::pde(), &corridors);

    // The round-count stress case: r grows linearly with the tower
    // height (C4), so total work is quadratic here — the paper's
    // r·(c_dce + c_ask) formula in action.
    let towers: Vec<_> = [8usize, 32, 128]
        .iter()
        .map(|&k| (k.to_string(), second_order_tower(k)))
        .collect();
    time_config("pde_second_order_tower", &PdceConfig::pde(), &towers);

    let ladders: Vec<_> = [16usize, 64, 256]
        .iter()
        .map(|&n| (n.to_string(), diamond_ladder(n)))
        .collect();
    time_config("pde_diamond_ladder", &PdceConfig::pde(), &ladders);
}
