//! D1: dynamic cost of optimized programs — interpreter runs of the
//! original vs. dce / pde / pfe outputs (the "who wins" series), plus
//! the cost of running each optimization pipeline itself. Every level
//! is a [`Pipeline`] spec over the registered passes.
//!
//! Run with: `cargo bench -p pdce-bench --bench dynamic_counts`

use pdce_bench::timeit;
use pdce_ir::interp::{run, Env, ExecLimits, SeededOracle};
use pdce_ir::Program;
use pdce_pass::Pipeline;
use pdce_progen::{structured, GenConfig};

fn workload() -> Program {
    structured(&GenConfig {
        seed: 2024,
        target_blocks: 48,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.15,
        loop_prob: 0.4,
        max_depth: 6,
        expr_depth: 2,
        nondet: false, // conditional: deterministic, loop-bounded
    })
}

fn execute(prog: &Program) -> u64 {
    let mut env = Env::with_values(prog, &[("v0", 3), ("v1", -5)]);
    let mut oracle = SeededOracle::new(1);
    let t = run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 50_000,
        },
    );
    t.executed_assignments
}

const LEVELS: &[(&str, &str)] = &[
    ("dce", "liveness-dce"),
    ("fce_only", "fce"),
    ("pde", "pde"),
    ("pfe", "pfe"),
];

fn main() {
    let original = workload();

    timeit::group("interp_by_opt_level");
    timeit::report("original", || execute(&original));
    let mut optimized = Vec::new();
    for (name, spec) in LEVELS {
        let mut prog = original.clone();
        Pipeline::parse(spec).unwrap().run(&mut prog);
        optimized.push((*name, prog));
    }
    for (name, prog) in &optimized {
        timeit::report(name, || execute(prog));
    }

    timeit::group("optimizer_by_level");
    for (name, spec) in LEVELS {
        let pipeline = Pipeline::parse(spec).unwrap();
        timeit::report(name, || {
            let mut clone = original.clone();
            pipeline.run(&mut clone)
        });
    }
}
