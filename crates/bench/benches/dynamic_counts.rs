//! D1: dynamic cost of optimized programs — interpreter runs of the
//! original vs. dce / pde / pfe outputs (the "who wins" series), plus
//! the cost of the full driver at each optimization level.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pdce_baselines::liveness_dce;
use pdce_core::driver::{optimize, PdceConfig};
use pdce_ir::interp::{run, Env, ExecLimits, SeededOracle};
use pdce_ir::Program;
use pdce_progen::{structured, GenConfig};

fn workload() -> Program {
    structured(&GenConfig {
        seed: 2024,
        target_blocks: 48,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.15,
        loop_prob: 0.4,
        max_depth: 6,
        expr_depth: 2,
        nondet: false, // conditional: deterministic, loop-bounded
    })
}

fn execute(prog: &Program) -> u64 {
    let mut env = Env::with_values(prog, &[("v0", 3), ("v1", -5)]);
    let mut oracle = SeededOracle::new(1);
    let t = run(
        prog,
        &mut env,
        &mut oracle,
        ExecLimits {
            max_block_visits: 50_000,
        },
    );
    t.executed_assignments
}

fn bench_execution_by_level(c: &mut Criterion) {
    let original = workload();
    let mut dce = original.clone();
    liveness_dce(&mut dce);
    let mut pde_p = original.clone();
    optimize(&mut pde_p, &PdceConfig::pde()).unwrap();
    let mut pfe_p = original.clone();
    optimize(&mut pfe_p, &PdceConfig::pfe()).unwrap();

    let mut group = c.benchmark_group("interp_by_opt_level");
    for (name, prog) in [
        ("original", &original),
        ("dce", &dce),
        ("pde", &pde_p),
        ("pfe", &pfe_p),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), prog, |b, prog| {
            b.iter(|| execute(prog))
        });
    }
    group.finish();
}

fn bench_optimizer_by_level(c: &mut Criterion) {
    let original = workload();
    let mut group = c.benchmark_group("optimizer_by_level");
    group.sample_size(10);
    for (name, config) in [
        ("dce_only", PdceConfig::dce_only()),
        ("fce_only", PdceConfig::fce_only()),
        ("pde", PdceConfig::pde()),
        ("pfe", PdceConfig::pfe()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                let mut clone = original.clone();
                optimize(&mut clone, config).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_execution_by_level, bench_optimizer_by_level);
criterion_main!(benches);
