//! Micro-benchmarks: the full driver on each of the paper's worked
//! examples (Figures 1–13). Verifies reproduction on every iteration,
//! so a regression in *what* the optimizer produces fails the bench.
//!
//! Run with: `cargo bench -p pdce-bench --bench figures`

use pdce_bench::{figure_corpus, timeit, verify_figure};

fn main() {
    timeit::group("figures");
    for figure in figure_corpus() {
        timeit::report(figure.id, || {
            let (ok, _, _) = verify_figure(&figure);
            assert!(ok, "figure {} regressed", figure.id);
        });
    }
}
