//! Micro-benchmarks: the full driver on each of the paper's worked
//! examples (Figures 1–13). Verifies reproduction on every iteration,
//! so a regression in *what* the optimizer produces fails the bench.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pdce_bench::{figure_corpus, verify_figure};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    for figure in figure_corpus() {
        group.bench_with_input(
            BenchmarkId::from_parameter(figure.id),
            &figure,
            |b, figure| {
                b.iter(|| {
                    let (ok, _, _) = verify_figure(figure);
                    assert!(ok, "figure {} regressed", figure.id);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
