//! Tracing overhead: the same pde run with tracing disabled (the
//! default — every instrumentation site reduces to a thread-local flag
//! read), with a [`pdce_trace::NoopTracer`] installed (events are built
//! and dropped), and with a buffering [`pdce_trace::Collector`]. The
//! disabled series is the one the <2% acceptance bar applies to; the
//! other two price what turning tracing on costs.
//!
//! Run with: `cargo bench -p pdce-bench --bench tracing`

use std::rc::Rc;

use pdce_bench::timeit;
use pdce_core::driver::{optimize, PdceConfig};
use pdce_progen::{structured, GenConfig};

fn workload(n: usize) -> pdce_ir::Program {
    structured(&GenConfig {
        seed: 11,
        target_blocks: n,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.2,
        loop_prob: 0.3,
        max_depth: 12,
        expr_depth: 2,
        nondet: true,
    })
}

fn main() {
    for &n in &[64usize, 256] {
        let prog = workload(n);
        let pde = || {
            let mut clone = prog.clone();
            optimize(&mut clone, &PdceConfig::pde()).expect("driver terminates")
        };

        timeit::group(&format!("tracing/pde_{n}"));
        timeit::report("disabled", pde);
        {
            let _guard = pdce_trace::install(Rc::new(pdce_trace::NoopTracer));
            timeit::report("noop-tracer installed", pde);
        }
        {
            // One collector across iterations; buffers grow but stay
            // amortized-O(1) per event, which is what a real run pays.
            let collector = Rc::new(pdce_trace::Collector::new());
            let _guard = pdce_trace::install(collector.clone());
            timeit::report("collector installed", pde);
            println!(
                "{:<44} {} event(s), {} provenance record(s) buffered",
                "",
                collector.len(),
                collector.provenance().len()
            );
        }
    }
}
