//! The machine-readable benchmark summary: `BENCH_PDE.json`.
//!
//! The `report` binary renders one [`BenchSummary`] per run — per-figure
//! timings with data-flow solver counters, the structured-program
//! scaling sweep, and the tracing-overhead A/B — and [`validate`] checks
//! an emitted document against the schema (the CI smoke job runs it on
//! the artifact it uploads). Everything is built on `pdce-trace`'s
//! dependency-free JSON support, so the output format is fully
//! deterministic modulo the measured times.

use pdce_trace::json::{self, Value};
use pdce_trace::SolverStats;
use std::fmt::Write as _;

/// Schema version stamped into the document; bump on breaking changes.
/// v2: solver stats carry strategy-tagged pops (`fifo_pops` /
/// `priority_pops`), sweep rows gain the FIFO reference run
/// (`pde_solver_fifo`), and the document gains `pops_reduction_pct` —
/// the priority strategy's worklist-pop saving over FIFO on the sweep,
/// which [`validate`] requires to be ≥ 20%.
/// v3: solver stats carry the warm-start counters (`cold_solves` /
/// `warm_solves` / `seeded_pops`), sweep rows gain the
/// incremental-disabled reference run (`pde_solver_noincr`, priority
/// strategy, warm-start seeding off), and the document gains
/// `incremental_pops_reduction_pct` — the pop saving of warm-start
/// seeded re-solving over cold re-solving on the sweep, which
/// [`validate`] requires to be ≥ 40%.
/// v4: the document gains `tv` — the translation-validation overhead
/// A/B (same workload with per-round semantic validation off and on),
/// whose `tv_overhead_pct` [`validate`] requires to stay under 10% —
/// and `resilience`, the fault-tolerance counters of the run
/// (rollbacks, degradations, TV checks/rollbacks, budget exhaustions).
/// v5: the document gains `csr` — the shared-`CfgView` A/B on the
/// scaling-sweep analysis workload (every consumer rebuilding its own
/// adjacency/orders per analysis, the pre-CSR access pattern, versus
/// one revision-memoized CSR view shared through the `AnalysisCache`),
/// whose `csr_walltime_reduction_pct` [`validate`] requires to be
/// ≥ 10%.
/// v6: the document gains `metrics` — the always-on metrics plane of
/// the `pdce-metrics` registry: a recording-on vs recording-off
/// overhead A/B on the scaling-sweep workload (whose
/// `metrics_overhead_pct` [`validate`] requires to stay under 2%), a
/// `snapshot_stable` bit asserting that the deterministic exposition of
/// the registry is byte-identical between `jobs=1` and `jobs=4` runs of
/// the same corpus, and `pass_latency` — per-pass wall-time quantiles
/// (p50/p90/p99/max upper bucket edges of the log₂ histograms).
/// v7: the document gains `serve` — the `pdce serve` daemon section: a
/// cold-vs-warm-cache A/B replay of a small-program corpus through the
/// in-process serving path, sustained warm throughput
/// (`req_per_sec`, which [`validate`] requires ≥
/// [`MIN_SERVE_REQ_PER_SEC`]), p50/p99 request latency (p99 bounded by
/// the `--wall-ms` admission cap of the run), a `warm_identical` bit
/// asserting warm-cache responses were byte-identical to cold ones, and
/// `warm_speedup_pct` (≥ [`MIN_SERVE_WARM_SPEEDUP_PCT`]).
/// v8: solver stats carry the sparse-solver counters (`sparse_pops` /
/// `sparse_edge_visits`) and the document gains `sparse` — the
/// dense-vs-sparse solver A/B on the analysis workload (dead + faint +
/// delayability cold solves under the dense priority worklist versus
/// the def-use-chain sparse solver), whose
/// `sparse_pops_reduction_pct` and `sparse_walltime_reduction_pct`
/// [`validate`] requires to be ≥ 50% (the ≥2× bars) and whose
/// `bit_identical` bit asserts both strategies reached the same
/// fixpoints.
/// v9: the document gains `recovery` — the self-healing serving
/// section: a WAL-off vs WAL-on cold-replay A/B (whose
/// `wal_overhead_pct` [`validate`] requires to stay under
/// [`MAX_WAL_OVERHEAD_PCT`]), plus a simulated-crash drill: the corpus
/// is served with the write-ahead log as the *only* persistence (no
/// clean save), the server is dropped as a crash would leave it, and a
/// recovered server replays the corpus — `requests_lost` must be 0 and
/// `warm_identical_after_crash` must be `true` (recovery may cost
/// cache misses, never a changed answer). [`validate`] also now
/// reports *every* violated acceptance bar, not just the first.
pub const SCHEMA_VERSION: u64 = 9;

/// The acceptance bar on `pops_reduction_pct`.
pub const MIN_POPS_REDUCTION_PCT: f64 = 20.0;

/// The acceptance bar on `incremental_pops_reduction_pct`.
pub const MIN_INCREMENTAL_POPS_REDUCTION_PCT: f64 = 40.0;

/// The acceptance bar on `tv.tv_overhead_pct`: per-round translation
/// validation (at the benchmarked vector count) must cost less than
/// this much wall time over the unvalidated run.
pub const MAX_TV_OVERHEAD_PCT: f64 = 10.0;

/// The acceptance bar on `csr.csr_walltime_reduction_pct`: sharing one
/// revision-cached CSR `CfgView` across the analysis layers must save
/// at least this much wall time over per-consumer rebuilding.
pub const MIN_CSR_WALLTIME_REDUCTION_PCT: f64 = 10.0;

/// The acceptance bar on `metrics.metrics_overhead_pct`: the always-on
/// metrics plane (registry counters, latency histograms) must cost less
/// than this much wall time over the same workload with recording
/// suppressed.
pub const MAX_METRICS_OVERHEAD_PCT: f64 = 2.0;

/// The acceptance bar on `serve.req_per_sec`: the daemon must sustain at
/// least this many small-program requests per second on the warm
/// (cache-resident) replay.
pub const MIN_SERVE_REQ_PER_SEC: f64 = 10_000.0;

/// The acceptance bar on `serve.warm_speedup_pct`: answering the corpus
/// from the persistent result cache must save at least this much wall
/// time over computing it cold.
pub const MIN_SERVE_WARM_SPEEDUP_PCT: f64 = 30.0;

/// The acceptance bar on `sparse.sparse_pops_reduction_pct`: the sparse
/// chain solver must pop at least this much less than the dense
/// priority worklist on the analysis workload — 50% is the ≥2× claim.
pub const MIN_SPARSE_POPS_REDUCTION_PCT: f64 = 50.0;

/// The acceptance bar on `sparse.sparse_walltime_reduction_pct`: the
/// sparse chain solver must also be at least 2× faster in wall time on
/// the same workload.
pub const MIN_SPARSE_WALLTIME_REDUCTION_PCT: f64 = 50.0;

/// The acceptance bar on `recovery.wal_overhead_pct`: journaling every
/// cache insert through the checksummed write-ahead log must cost less
/// than this much wall time over the same cold replay without it.
pub const MAX_WAL_OVERHEAD_PCT: f64 = 5.0;

/// One figure reproduction with its cost.
#[derive(Debug, Clone)]
pub struct FigureRow {
    /// Paper figure id (`"F1→F2"`).
    pub id: String,
    /// Whether the optimized program matched the paper's expectation.
    pub reproduced: bool,
    /// Driver rounds to stabilization.
    pub rounds: u64,
    /// Assignments eliminated.
    pub eliminated: u64,
    /// Wall time of the driver run, nanoseconds.
    pub time_ns: u128,
    /// Data-flow solver telemetry for the run.
    pub solver: SolverStats,
}

/// One point of the structured-program scaling sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Nominal target size (blocks requested from the generator).
    pub target: usize,
    /// Actual blocks.
    pub blocks: usize,
    /// Actual statements.
    pub stmts: usize,
    /// Best-of-reps pde wall time, nanoseconds.
    pub pde_ns: u128,
    /// Best-of-reps pfe wall time, nanoseconds.
    pub pfe_ns: u128,
    /// Solver telemetry of the (best) pde run under the priority
    /// worklist strategy.
    pub pde_solver: SolverStats,
    /// Solver telemetry of the same workload under the FIFO reference
    /// strategy — the baseline of the pops-reduction claim. Warm-start
    /// seeding is disabled here too, keeping the v2 baseline pure.
    pub pde_solver_fifo: SolverStats,
    /// Solver telemetry of the same workload under the priority strategy
    /// with warm-start seeding disabled — the baseline of the
    /// incremental-pops-reduction claim (same scheduling as
    /// `pde_solver`, cold re-solves only).
    pub pde_solver_noincr: SolverStats,
}

/// The disabled-tracing overhead A/B timing.
///
/// Instrumentation cannot be compiled out at run time, so the bound is
/// established by interleaved best-of-N timings of the *same* workload:
/// `disabled_a_ns` and `disabled_b_ns` are two independent disabled-mode
/// measurements (their relative delta bounds instrumentation cost plus
/// measurement noise — the <2% acceptance bar), and `enabled_ns` is the
/// same workload with a buffering collector installed, for context.
#[derive(Debug, Clone)]
pub struct TracingAb {
    /// What was timed.
    pub workload: String,
    /// Best-of-N, tracing disabled, series A (nanoseconds).
    pub disabled_a_ns: u128,
    /// Best-of-N, tracing disabled, series B (nanoseconds).
    pub disabled_b_ns: u128,
    /// `|A - B| / min(A, B)` in percent — the disabled-mode bound.
    pub disabled_ab_delta_pct: f64,
    /// Best-of-N with a `Collector` installed (nanoseconds).
    pub enabled_ns: u128,
    /// `(enabled - disabled) / disabled` in percent.
    pub enabled_overhead_pct: f64,
}

/// The translation-validation overhead A/B timing: the same workload
/// optimized with per-round semantic validation off (`off_ns`) and on
/// (`on_ns`, at `vectors` seeded input vectors per round).
#[derive(Debug, Clone)]
pub struct TvAb {
    /// What was timed.
    pub workload: String,
    /// Seeded input vectors per round in the validated series.
    pub vectors: u32,
    /// Best-of-N, validation off (nanoseconds).
    pub off_ns: u128,
    /// Best-of-N, validation on (nanoseconds).
    pub on_ns: u128,
    /// `max(0, on - off) / off` in percent — held against
    /// [`MAX_TV_OVERHEAD_PCT`] by [`validate`].
    pub tv_overhead_pct: f64,
}

/// The shared-`CfgView` A/B timing: the same analysis workload with
/// every consumer rebuilding its own flow-graph adjacency and traversal
/// orders per analysis (`legacy_ns`, the pre-CSR access pattern) and
/// with one revision-memoized CSR view shared through the
/// `AnalysisCache` (`csr_ns`).
#[derive(Debug, Clone)]
pub struct CsrAb {
    /// What was timed.
    pub workload: String,
    /// Best-of-N, per-consumer rebuilds (nanoseconds).
    pub legacy_ns: u128,
    /// Best-of-N, one cached CSR view (nanoseconds).
    pub csr_ns: u128,
    /// `max(0, legacy - csr) / legacy` in percent — held against
    /// [`MIN_CSR_WALLTIME_REDUCTION_PCT`] by [`validate`].
    pub csr_walltime_reduction_pct: f64,
}

/// Per-pass wall-time quantiles, read from the `pdce_pass_wall_ns`
/// histogram family of the metrics registry after the benchmark
/// workload. Quantile values are the inclusive upper edge of the log₂
/// bucket holding the requested rank — a pure function of the bucket
/// counts, so the numbers are merge-order independent.
#[derive(Debug, Clone)]
pub struct PassLatencyRow {
    /// Pass name (the `pass` label of the series).
    pub pass: String,
    /// Samples observed.
    pub count: u64,
    /// p50 upper bucket edge, nanoseconds.
    pub p50_ns: u64,
    /// p90 upper bucket edge, nanoseconds.
    pub p90_ns: u64,
    /// p99 upper bucket edge, nanoseconds.
    pub p99_ns: u64,
    /// Maximum estimate (upper edge of the highest occupied bucket),
    /// nanoseconds.
    pub max_ns: u64,
}

/// The metrics-plane section: recording-overhead A/B, cross-`jobs`
/// snapshot stability, and per-pass latency quantiles.
///
/// The A/B times the *same* workload with registry recording enabled
/// (`on_ns`) and suppressed via the runtime gate (`off_ns`) — unlike
/// the tracing A/B, which can only bound disabled-mode noise, the
/// metrics gate genuinely turns the atomic updates on and off, so
/// `metrics_overhead_pct` is a direct measurement held against
/// [`MAX_METRICS_OVERHEAD_PCT`].
#[derive(Debug, Clone)]
pub struct MetricsSection {
    /// What was timed.
    pub workload: String,
    /// Best-of-N, recording suppressed (nanoseconds).
    pub off_ns: u128,
    /// Best-of-N, recording enabled (nanoseconds).
    pub on_ns: u128,
    /// `max(0, on - off) / off` in percent — held against
    /// [`MAX_METRICS_OVERHEAD_PCT`] by [`validate`].
    pub metrics_overhead_pct: f64,
    /// Whether the deterministic exposition (`prometheus_deterministic`
    /// deltas) of the corpus run was byte-identical between `jobs=1`
    /// and `jobs=4`. [`validate`] requires `true`.
    pub snapshot_stable: bool,
    /// Per-pass wall-time quantiles. [`validate`] requires at least one
    /// row.
    pub pass_latency: Vec<PassLatencyRow>,
}

/// The `pdce serve` daemon section: a cold-vs-warm-cache A/B of the
/// same request corpus replayed through the serving path.
///
/// The corpus is first served against an empty cache (`cold_ns`, every
/// request computed) and then replayed verbatim (`warm_ns`, every
/// request answered from the content-hash-keyed result cache).
/// Throughput and latency quantiles are measured on the warm replay —
/// the steady state of repeat traffic the daemon exists for — and
/// `p99_ns` is held against the `--wall-ms` admission cap the run was
/// configured with (`wall_ms_budget`, milliseconds).
#[derive(Debug, Clone)]
pub struct ServeSection {
    /// What was served.
    pub workload: String,
    /// Requests in the corpus (one replay's worth).
    pub requests: u64,
    /// Wall time of the cold (cache-empty) replay, nanoseconds.
    pub cold_ns: u128,
    /// Wall time of the warm (cache-resident) replay, nanoseconds.
    pub warm_ns: u128,
    /// Sustained warm-replay throughput — held against
    /// [`MIN_SERVE_REQ_PER_SEC`] by [`validate`].
    pub req_per_sec: f64,
    /// Median warm-replay request latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile warm-replay request latency, nanoseconds — held
    /// against `wall_ms_budget` by [`validate`].
    pub p99_ns: u64,
    /// The `--wall-ms` admission cap the run was configured with.
    pub wall_ms_budget: u64,
    /// Whether every warm response was byte-identical to its cold
    /// counterpart. [`validate`] requires `true`.
    pub warm_identical: bool,
    /// `max(0, cold - warm) / cold` in percent — held against
    /// [`MIN_SERVE_WARM_SPEEDUP_PCT`] by [`validate`].
    pub warm_speedup_pct: f64,
}

/// The dense-vs-sparse solver A/B: the analysis workload (cold dead,
/// faint, and delayability solves) under the dense priority worklist
/// (`priority_ns` / `priority_pops`) versus the def-use-chain sparse
/// solver (`sparse_ns` / `sparse_pops`).
///
/// Pops compare the strategies' scheduling units — per-node worklist
/// pops for the dense solver, per-chain propagation tasks for the
/// sparse one — and both reduction percentages are held against the
/// ≥2× acceptance bars by [`validate`]. `bit_identical` asserts the
/// two strategies reached identical fixpoints on every program of the
/// workload; a sparse solver that wins by computing something else is
/// a schema violation, not a speedup.
#[derive(Debug, Clone)]
pub struct SparseAb {
    /// What was timed.
    pub workload: String,
    /// Best-of-N, dense priority worklist (nanoseconds).
    pub priority_ns: u128,
    /// Best-of-N, sparse chain solver (nanoseconds).
    pub sparse_ns: u128,
    /// Worklist pops of one dense pass over the workload.
    pub priority_pops: u64,
    /// Chain tasks of one sparse pass over the workload.
    pub sparse_pops: u64,
    /// `max(0, priority - sparse) / priority` in percent over the pops
    /// totals — held against [`MIN_SPARSE_POPS_REDUCTION_PCT`].
    pub sparse_pops_reduction_pct: f64,
    /// `max(0, priority - sparse) / priority` in percent over the
    /// best-of-N wall times — held against
    /// [`MIN_SPARSE_WALLTIME_REDUCTION_PCT`].
    pub sparse_walltime_reduction_pct: f64,
    /// Whether every dead/faint/delay fixpoint of the workload was
    /// bit-identical between the strategies. [`validate`] requires
    /// `true`.
    pub bit_identical: bool,
}

/// The self-healing serving section: the WAL overhead A/B and the
/// simulated-crash recovery drill.
///
/// The A/B cold-replays the same corpus with the persistent cache held
/// purely in memory (`wal_off_ns`) and with every insert journaled
/// through the checksummed write-ahead log (`wal_on_ns`). The drill
/// then serves the corpus with the log as the *only* persistence, drops
/// the server without a clean save — exactly the state a `kill -9`
/// leaves on disk — and replays the corpus on a recovered server:
/// recovery may cost cache misses (recomputed answers), but never a
/// lost request or a changed byte.
#[derive(Debug, Clone)]
pub struct RecoverySection {
    /// What was served.
    pub workload: String,
    /// Requests in the corpus (one replay's worth).
    pub requests: u64,
    /// Requests whose post-recovery answer was missing or diverged from
    /// the pre-crash one. [`validate`] requires exactly 0.
    pub requests_lost: u64,
    /// Whether every post-recovery response was byte-identical to its
    /// pre-crash counterpart. [`validate`] requires `true`.
    pub warm_identical_after_crash: bool,
    /// Best-of-N cold replay, cache in memory only (nanoseconds).
    pub wal_off_ns: u128,
    /// Best-of-N cold replay, inserts journaled to the WAL
    /// (nanoseconds).
    pub wal_on_ns: u128,
    /// `max(0, on - off) / off` in percent — held against
    /// [`MAX_WAL_OVERHEAD_PCT`] by [`validate`].
    pub wal_overhead_pct: f64,
    /// Log lines appended during the pre-crash replay.
    pub wal_appends: u64,
    /// Cache entries recovered from the log by the post-crash load.
    pub wal_recovered: u64,
}

/// Fault-tolerance counters accumulated over the benchmark run
/// (the driver's `PdceStats` resilience fields, summed).
#[derive(Debug, Clone, Default)]
pub struct ResilienceTotals {
    /// Checkpoint restores (pass failures and TV rejections).
    pub rollbacks: u64,
    /// Ladder steps taken by the resilient driver.
    pub degradations: u64,
    /// Rounds checked by translation validation.
    pub tv_checks: u64,
    /// Rounds rejected and rolled back by translation validation.
    pub tv_rollbacks: u64,
    /// Runs aborted by an exhausted round/pop/wall budget.
    pub budget_exhaustions: u64,
}

/// The complete document.
#[derive(Debug, Clone)]
pub struct BenchSummary {
    /// Whether this was a `--quick` (CI smoke) run.
    pub quick: bool,
    /// Per-figure rows.
    pub figures: Vec<FigureRow>,
    /// Scaling sweep rows.
    pub sweep: Vec<SweepRow>,
    /// Worklist pops saved by the priority strategy over the FIFO
    /// reference, in percent of the FIFO total across the sweep (see
    /// [`pops_reduction_pct`]).
    pub pops_reduction_pct: f64,
    /// Worklist pops saved by warm-start seeded re-solving over cold
    /// re-solving (both priority-scheduled), in percent of the cold
    /// total across the sweep (see [`incremental_pops_reduction_pct`]).
    pub incremental_pops_reduction_pct: f64,
    /// The tracing overhead A/B.
    pub tracing: TracingAb,
    /// The translation-validation overhead A/B.
    pub tv: TvAb,
    /// The shared-`CfgView` A/B.
    pub csr: CsrAb,
    /// The metrics-plane section.
    pub metrics: MetricsSection,
    /// The serving cold-vs-warm A/B.
    pub serve: ServeSection,
    /// The dense-vs-sparse solver A/B.
    pub sparse: SparseAb,
    /// The self-healing serving section (WAL overhead + crash drill).
    pub recovery: RecoverySection,
    /// Resilience counters accumulated over the run.
    pub resilience: ResilienceTotals,
}

/// `(fifo - priority) / fifo` in percent over the sweep totals, the
/// number [`validate`] holds against [`MIN_POPS_REDUCTION_PCT`]. Zero
/// for an empty sweep.
pub fn pops_reduction_pct(sweep: &[SweepRow]) -> f64 {
    let fifo: u64 = sweep.iter().map(|r| r.pde_solver_fifo.pops()).sum();
    let priority: u64 = sweep.iter().map(|r| r.pde_solver.pops()).sum();
    if fifo == 0 {
        return 0.0;
    }
    (fifo.saturating_sub(priority)) as f64 * 100.0 / fifo as f64
}

/// `(noincr - incremental) / noincr` in percent over the sweep totals,
/// the number [`validate`] holds against
/// [`MIN_INCREMENTAL_POPS_REDUCTION_PCT`]. Zero for an empty sweep.
pub fn incremental_pops_reduction_pct(sweep: &[SweepRow]) -> f64 {
    let cold: u64 = sweep.iter().map(|r| r.pde_solver_noincr.pops()).sum();
    let warm: u64 = sweep.iter().map(|r| r.pde_solver.pops()).sum();
    if cold == 0 {
        return 0.0;
    }
    (cold.saturating_sub(warm)) as f64 * 100.0 / cold as f64
}

fn write_solver(out: &mut String, s: &SolverStats) {
    let _ = write!(
        out,
        "{{\"problems\":{},\"sweeps\":{},\"evaluations\":{},\"revisits\":{},\"word_ops\":{},\
         \"fifo_pops\":{},\"priority_pops\":{},\"sparse_pops\":{},\"sparse_edge_visits\":{},\
         \"cold_solves\":{},\"warm_solves\":{},\"seeded_pops\":{}}}",
        s.problems,
        s.sweeps,
        s.evaluations,
        s.revisits,
        s.word_ops,
        s.fifo_pops,
        s.priority_pops,
        s.sparse_pops,
        s.sparse_edge_visits,
        s.cold_solves,
        s.warm_solves,
        s.seeded_pops
    );
}

impl BenchSummary {
    /// Serializes the summary (one row per line, schema-stable).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n\"schema_version\":{SCHEMA_VERSION},\n\"quick\":{},\n\"figures\":[",
            self.quick
        );
        for (i, f) in self.figures.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"id\":{},\"reproduced\":{},\"rounds\":{},\"eliminated\":{},\"time_ns\":{},\"solver\":",
                json::escaped(&f.id),
                f.reproduced,
                f.rounds,
                f.eliminated,
                f.time_ns
            );
            write_solver(&mut out, &f.solver);
            out.push('}');
        }
        out.push_str("\n],\n\"sweep\":[");
        for (i, s) in self.sweep.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"target\":{},\"blocks\":{},\"stmts\":{},\"pde_ns\":{},\"pfe_ns\":{},\"pde_solver\":",
                s.target, s.blocks, s.stmts, s.pde_ns, s.pfe_ns
            );
            write_solver(&mut out, &s.pde_solver);
            out.push_str(",\"pde_solver_fifo\":");
            write_solver(&mut out, &s.pde_solver_fifo);
            out.push_str(",\"pde_solver_noincr\":");
            write_solver(&mut out, &s.pde_solver_noincr);
            out.push('}');
        }
        let _ = write!(
            out,
            "\n],\n\"pops_reduction_pct\":{:.3},\n\"incremental_pops_reduction_pct\":{:.3},",
            self.pops_reduction_pct, self.incremental_pops_reduction_pct
        );
        let t = &self.tracing;
        let _ = write!(
            out,
            "\n\"tracing\":{{\"workload\":{},\"disabled_a_ns\":{},\"disabled_b_ns\":{},\
             \"disabled_ab_delta_pct\":{:.3},\"enabled_ns\":{},\"enabled_overhead_pct\":{:.3}}},",
            json::escaped(&t.workload),
            t.disabled_a_ns,
            t.disabled_b_ns,
            t.disabled_ab_delta_pct,
            t.enabled_ns,
            t.enabled_overhead_pct
        );
        let v = &self.tv;
        let _ = write!(
            out,
            "\n\"tv\":{{\"workload\":{},\"vectors\":{},\"off_ns\":{},\"on_ns\":{},\
             \"tv_overhead_pct\":{:.3}}},",
            json::escaped(&v.workload),
            v.vectors,
            v.off_ns,
            v.on_ns,
            v.tv_overhead_pct
        );
        let c = &self.csr;
        let _ = write!(
            out,
            "\n\"csr\":{{\"workload\":{},\"legacy_ns\":{},\"csr_ns\":{},\
             \"csr_walltime_reduction_pct\":{:.3}}},",
            json::escaped(&c.workload),
            c.legacy_ns,
            c.csr_ns,
            c.csr_walltime_reduction_pct
        );
        let m = &self.metrics;
        let _ = write!(
            out,
            "\n\"metrics\":{{\"workload\":{},\"off_ns\":{},\"on_ns\":{},\
             \"metrics_overhead_pct\":{:.3},\"snapshot_stable\":{},\"pass_latency\":[",
            json::escaped(&m.workload),
            m.off_ns,
            m.on_ns,
            m.metrics_overhead_pct,
            m.snapshot_stable
        );
        for (i, p) in m.pass_latency.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"pass\":{},\"count\":{},\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
                json::escaped(&p.pass),
                p.count,
                p.p50_ns,
                p.p90_ns,
                p.p99_ns,
                p.max_ns
            );
        }
        out.push_str("\n]},");
        let sv = &self.serve;
        let _ = write!(
            out,
            "\n\"serve\":{{\"workload\":{},\"requests\":{},\"cold_ns\":{},\"warm_ns\":{},\
             \"req_per_sec\":{:.1},\"p50_ns\":{},\"p99_ns\":{},\"wall_ms_budget\":{},\
             \"warm_identical\":{},\"warm_speedup_pct\":{:.3}}},",
            json::escaped(&sv.workload),
            sv.requests,
            sv.cold_ns,
            sv.warm_ns,
            sv.req_per_sec,
            sv.p50_ns,
            sv.p99_ns,
            sv.wall_ms_budget,
            sv.warm_identical,
            sv.warm_speedup_pct
        );
        let sp = &self.sparse;
        let _ = write!(
            out,
            "\n\"sparse\":{{\"workload\":{},\"priority_ns\":{},\"sparse_ns\":{},\
             \"priority_pops\":{},\"sparse_pops\":{},\"sparse_pops_reduction_pct\":{:.3},\
             \"sparse_walltime_reduction_pct\":{:.3},\"bit_identical\":{}}},",
            json::escaped(&sp.workload),
            sp.priority_ns,
            sp.sparse_ns,
            sp.priority_pops,
            sp.sparse_pops,
            sp.sparse_pops_reduction_pct,
            sp.sparse_walltime_reduction_pct,
            sp.bit_identical
        );
        let rc = &self.recovery;
        let _ = write!(
            out,
            "\n\"recovery\":{{\"workload\":{},\"requests\":{},\"requests_lost\":{},\
             \"warm_identical_after_crash\":{},\"wal_off_ns\":{},\"wal_on_ns\":{},\
             \"wal_overhead_pct\":{:.3},\"wal_appends\":{},\"wal_recovered\":{}}},",
            json::escaped(&rc.workload),
            rc.requests,
            rc.requests_lost,
            rc.warm_identical_after_crash,
            rc.wal_off_ns,
            rc.wal_on_ns,
            rc.wal_overhead_pct,
            rc.wal_appends,
            rc.wal_recovered
        );
        let r = &self.resilience;
        let _ = write!(
            out,
            "\n\"resilience\":{{\"rollbacks\":{},\"degradations\":{},\"tv_checks\":{},\
             \"tv_rollbacks\":{},\"budget_exhaustions\":{}}}\n}}\n",
            r.rollbacks, r.degradations, r.tv_checks, r.tv_rollbacks, r.budget_exhaustions
        );
        out
    }
}

fn require<'a>(obj: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, String> {
    obj.get(key)
        .ok_or_else(|| format!("{ctx}: missing key `{key}`"))
}

fn require_num(obj: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    require(obj, key, ctx)?
        .as_num()
        .ok_or_else(|| format!("{ctx}: `{key}` is not a number"))
}

fn check_solver(v: &Value, ctx: &str) -> Result<(), String> {
    for key in [
        "problems",
        "sweeps",
        "evaluations",
        "revisits",
        "word_ops",
        "fifo_pops",
        "priority_pops",
        "sparse_pops",
        "sparse_edge_visits",
        "cold_solves",
        "warm_solves",
        "seeded_pops",
    ] {
        let n = require_num(v, key, ctx)?;
        if n < 0.0 {
            return Err(format!("{ctx}: `{key}` is negative"));
        }
    }
    Ok(())
}

/// Validates an emitted `BENCH_PDE.json` document against the schema:
/// well-formed JSON, the expected keys with the expected types, at least
/// one figure row, and every figure reproduced.
///
/// # Errors
///
/// Structural problems (malformed JSON, missing or mistyped keys) fail
/// fast with the first violation — nothing after them can be trusted.
/// Acceptance-*bar* violations are collected and reported together, so
/// one regressed number never masks another.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text)?;
    let version = require_num(&doc, "schema_version", "document")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!("unsupported schema_version {version}"));
    }
    require(&doc, "quick", "document")?
        .as_bool()
        .ok_or("`quick` is not a bool")?;
    let mut bars: Vec<String> = Vec::new();
    let figures = require(&doc, "figures", "document")?
        .as_arr()
        .ok_or("`figures` is not an array")?;
    if figures.is_empty() {
        return Err("`figures` is empty".into());
    }
    for (i, f) in figures.iter().enumerate() {
        let ctx = format!("figures[{i}]");
        require(f, "id", &ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: `id` is not a string"))?;
        let reproduced = require(f, "reproduced", &ctx)?
            .as_bool()
            .ok_or_else(|| format!("{ctx}: `reproduced` is not a bool"))?;
        if !reproduced {
            bars.push(format!("{ctx}: figure not reproduced"));
        }
        for key in ["rounds", "eliminated", "time_ns"] {
            require_num(f, key, &ctx)?;
        }
        check_solver(require(f, "solver", &ctx)?, &ctx)?;
    }
    let sweep = require(&doc, "sweep", "document")?
        .as_arr()
        .ok_or("`sweep` is not an array")?;
    for (i, s) in sweep.iter().enumerate() {
        let ctx = format!("sweep[{i}]");
        for key in ["target", "blocks", "stmts", "pde_ns", "pfe_ns"] {
            require_num(s, key, &ctx)?;
        }
        check_solver(require(s, "pde_solver", &ctx)?, &ctx)?;
        check_solver(require(s, "pde_solver_fifo", &ctx)?, &ctx)?;
        check_solver(require(s, "pde_solver_noincr", &ctx)?, &ctx)?;
    }
    let reduction = require_num(&doc, "pops_reduction_pct", "document")?;
    if !sweep.is_empty() && reduction < MIN_POPS_REDUCTION_PCT {
        bars.push(format!(
            "pops_reduction_pct {reduction:.3} below the {MIN_POPS_REDUCTION_PCT}% acceptance bar"
        ));
    }
    let incr = require_num(&doc, "incremental_pops_reduction_pct", "document")?;
    if !sweep.is_empty() && incr < MIN_INCREMENTAL_POPS_REDUCTION_PCT {
        bars.push(format!(
            "incremental_pops_reduction_pct {incr:.3} below the \
             {MIN_INCREMENTAL_POPS_REDUCTION_PCT}% acceptance bar"
        ));
    }
    let tracing = require(&doc, "tracing", "document")?;
    require(tracing, "workload", "tracing")?
        .as_str()
        .ok_or("`tracing.workload` is not a string")?;
    for key in [
        "disabled_a_ns",
        "disabled_b_ns",
        "disabled_ab_delta_pct",
        "enabled_ns",
        "enabled_overhead_pct",
    ] {
        require_num(tracing, key, "tracing")?;
    }
    let tv = require(&doc, "tv", "document")?;
    require(tv, "workload", "tv")?
        .as_str()
        .ok_or("`tv.workload` is not a string")?;
    for key in ["vectors", "off_ns", "on_ns"] {
        require_num(tv, key, "tv")?;
    }
    let tv_overhead = require_num(tv, "tv_overhead_pct", "tv")?;
    if tv_overhead >= MAX_TV_OVERHEAD_PCT {
        bars.push(format!(
            "tv_overhead_pct {tv_overhead:.3} breaks the <{MAX_TV_OVERHEAD_PCT}% acceptance bar"
        ));
    }
    let csr = require(&doc, "csr", "document")?;
    require(csr, "workload", "csr")?
        .as_str()
        .ok_or("`csr.workload` is not a string")?;
    for key in ["legacy_ns", "csr_ns"] {
        require_num(csr, key, "csr")?;
    }
    let csr_reduction = require_num(csr, "csr_walltime_reduction_pct", "csr")?;
    if csr_reduction < MIN_CSR_WALLTIME_REDUCTION_PCT {
        bars.push(format!(
            "csr_walltime_reduction_pct {csr_reduction:.3} below the \
             {MIN_CSR_WALLTIME_REDUCTION_PCT}% acceptance bar"
        ));
    }
    let metrics = require(&doc, "metrics", "document")?;
    require(metrics, "workload", "metrics")?
        .as_str()
        .ok_or("`metrics.workload` is not a string")?;
    for key in ["off_ns", "on_ns"] {
        require_num(metrics, key, "metrics")?;
    }
    let metrics_overhead = require_num(metrics, "metrics_overhead_pct", "metrics")?;
    if metrics_overhead >= MAX_METRICS_OVERHEAD_PCT {
        bars.push(format!(
            "metrics_overhead_pct {metrics_overhead:.3} breaks the \
             <{MAX_METRICS_OVERHEAD_PCT}% acceptance bar"
        ));
    }
    let stable = require(metrics, "snapshot_stable", "metrics")?
        .as_bool()
        .ok_or("`metrics.snapshot_stable` is not a bool")?;
    if !stable {
        bars.push(
            "metrics: deterministic snapshot differed between jobs=1 and jobs=4 \
             (`snapshot_stable` is false)"
                .into(),
        );
    }
    let pass_latency = require(metrics, "pass_latency", "metrics")?
        .as_arr()
        .ok_or("`metrics.pass_latency` is not an array")?;
    if pass_latency.is_empty() {
        return Err("`metrics.pass_latency` is empty".into());
    }
    for (i, p) in pass_latency.iter().enumerate() {
        let ctx = format!("metrics.pass_latency[{i}]");
        require(p, "pass", &ctx)?
            .as_str()
            .ok_or_else(|| format!("{ctx}: `pass` is not a string"))?;
        for key in ["count", "p50_ns", "p90_ns", "p99_ns", "max_ns"] {
            let n = require_num(p, key, &ctx)?;
            if n < 0.0 {
                return Err(format!("{ctx}: `{key}` is negative"));
            }
        }
    }
    let serve = require(&doc, "serve", "document")?;
    require(serve, "workload", "serve")?
        .as_str()
        .ok_or("`serve.workload` is not a string")?;
    for key in ["requests", "cold_ns", "warm_ns", "p50_ns"] {
        let n = require_num(serve, key, "serve")?;
        if n < 0.0 {
            return Err(format!("serve: `{key}` is negative"));
        }
    }
    let req_per_sec = require_num(serve, "req_per_sec", "serve")?;
    if req_per_sec < MIN_SERVE_REQ_PER_SEC {
        bars.push(format!(
            "serve.req_per_sec {req_per_sec:.1} below the {MIN_SERVE_REQ_PER_SEC} req/s \
             acceptance bar"
        ));
    }
    let p99 = require_num(serve, "p99_ns", "serve")?;
    let wall_budget = require_num(serve, "wall_ms_budget", "serve")?;
    if wall_budget <= 0.0 {
        return Err("serve: `wall_ms_budget` is not positive".into());
    }
    if p99 > wall_budget * 1_000_000.0 {
        bars.push(format!(
            "serve.p99_ns {p99:.0} exceeds the --wall-ms admission cap of {wall_budget:.0} ms"
        ));
    }
    let identical = require(serve, "warm_identical", "serve")?
        .as_bool()
        .ok_or("`serve.warm_identical` is not a bool")?;
    if !identical {
        bars.push(
            "serve: warm-cache responses differed from cold ones (`warm_identical` is false)"
                .into(),
        );
    }
    let speedup = require_num(serve, "warm_speedup_pct", "serve")?;
    if speedup < MIN_SERVE_WARM_SPEEDUP_PCT {
        bars.push(format!(
            "serve.warm_speedup_pct {speedup:.3} below the {MIN_SERVE_WARM_SPEEDUP_PCT}% \
             acceptance bar"
        ));
    }
    let sparse = require(&doc, "sparse", "document")?;
    require(sparse, "workload", "sparse")?
        .as_str()
        .ok_or("`sparse.workload` is not a string")?;
    for key in ["priority_ns", "sparse_ns", "priority_pops", "sparse_pops"] {
        let n = require_num(sparse, key, "sparse")?;
        if n < 0.0 {
            return Err(format!("sparse: `{key}` is negative"));
        }
    }
    let sparse_pops = require_num(sparse, "sparse_pops_reduction_pct", "sparse")?;
    if sparse_pops < MIN_SPARSE_POPS_REDUCTION_PCT {
        bars.push(format!(
            "sparse_pops_reduction_pct {sparse_pops:.3} below the \
             {MIN_SPARSE_POPS_REDUCTION_PCT}% (≥2×) acceptance bar"
        ));
    }
    let sparse_wall = require_num(sparse, "sparse_walltime_reduction_pct", "sparse")?;
    if sparse_wall < MIN_SPARSE_WALLTIME_REDUCTION_PCT {
        bars.push(format!(
            "sparse_walltime_reduction_pct {sparse_wall:.3} below the \
             {MIN_SPARSE_WALLTIME_REDUCTION_PCT}% (≥2×) acceptance bar"
        ));
    }
    let sparse_identical = require(sparse, "bit_identical", "sparse")?
        .as_bool()
        .ok_or("`sparse.bit_identical` is not a bool")?;
    if !sparse_identical {
        bars.push("sparse: dense and sparse fixpoints diverged (`bit_identical` is false)".into());
    }
    let recovery = require(&doc, "recovery", "document")?;
    require(recovery, "workload", "recovery")?
        .as_str()
        .ok_or("`recovery.workload` is not a string")?;
    for key in [
        "requests",
        "wal_off_ns",
        "wal_on_ns",
        "wal_appends",
        "wal_recovered",
    ] {
        let n = require_num(recovery, key, "recovery")?;
        if n < 0.0 {
            return Err(format!("recovery: `{key}` is negative"));
        }
    }
    let lost = require_num(recovery, "requests_lost", "recovery")?;
    if lost != 0.0 {
        bars.push(format!(
            "recovery.requests_lost is {lost:.0} (the crash drill must lose nothing)"
        ));
    }
    let crash_identical = require(recovery, "warm_identical_after_crash", "recovery")?
        .as_bool()
        .ok_or("`recovery.warm_identical_after_crash` is not a bool")?;
    if !crash_identical {
        bars.push(
            "recovery: post-crash responses differed from pre-crash ones \
             (`warm_identical_after_crash` is false)"
                .into(),
        );
    }
    let wal_overhead = require_num(recovery, "wal_overhead_pct", "recovery")?;
    if wal_overhead >= MAX_WAL_OVERHEAD_PCT {
        bars.push(format!(
            "recovery.wal_overhead_pct {wal_overhead:.3} breaks the \
             <{MAX_WAL_OVERHEAD_PCT}% acceptance bar"
        ));
    }
    let resilience = require(&doc, "resilience", "document")?;
    for key in [
        "rollbacks",
        "degradations",
        "tv_checks",
        "tv_rollbacks",
        "budget_exhaustions",
    ] {
        let n = require_num(resilience, key, "resilience")?;
        if n < 0.0 {
            return Err(format!("resilience: `{key}` is negative"));
        }
    }
    // A benchmark run that never exercised validation cannot claim a
    // TV overhead number.
    let checks = require_num(resilience, "tv_checks", "resilience")?;
    if checks == 0.0 {
        bars.push("resilience: `tv_checks` is zero but a `tv` A/B is present".into());
    }
    match bars.len() {
        0 => Ok(()),
        1 => Err(bars.remove(0)),
        n => Err(format!(
            "{n} acceptance bars failed:\n  - {}",
            bars.join("\n  - ")
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSummary {
        let sweep = vec![SweepRow {
            target: 24,
            blocks: 25,
            stmts: 70,
            pde_ns: 1_000_000,
            pfe_ns: 2_000_000,
            pde_solver: SolverStats {
                problems: 9,
                evaluations: 70,
                priority_pops: 40,
                seeded_pops: 30,
                cold_solves: 3,
                warm_solves: 6,
                ..SolverStats::ZERO
            },
            pde_solver_fifo: SolverStats {
                problems: 9,
                sweeps: 20,
                evaluations: 120,
                revisits: 40,
                word_ops: 900,
                fifo_pops: 120,
                cold_solves: 9,
                ..SolverStats::ZERO
            },
            pde_solver_noincr: SolverStats {
                problems: 9,
                evaluations: 130,
                priority_pops: 130,
                cold_solves: 9,
                ..SolverStats::ZERO
            },
        }];
        BenchSummary {
            quick: true,
            figures: vec![FigureRow {
                id: "F1→F2".into(),
                reproduced: true,
                rounds: 3,
                eliminated: 1,
                time_ns: 52_000,
                solver: SolverStats {
                    problems: 9,
                    sweeps: 20,
                    evaluations: 120,
                    revisits: 40,
                    word_ops: 900,
                    priority_pops: 120,
                    ..SolverStats::ZERO
                },
            }],
            pops_reduction_pct: pops_reduction_pct(&sweep),
            incremental_pops_reduction_pct: incremental_pops_reduction_pct(&sweep),
            sweep,
            tracing: TracingAb {
                workload: "pde over 2 structured programs".into(),
                disabled_a_ns: 1_000_000,
                disabled_b_ns: 1_004_000,
                disabled_ab_delta_pct: 0.4,
                enabled_ns: 1_400_000,
                enabled_overhead_pct: 40.0,
            },
            tv: TvAb {
                workload: "pde over 2 structured programs".into(),
                vectors: 4,
                off_ns: 1_000_000,
                on_ns: 1_050_000,
                tv_overhead_pct: 5.0,
            },
            csr: CsrAb {
                workload: "5 analyses over 2 structured programs".into(),
                legacy_ns: 1_300_000,
                csr_ns: 1_000_000,
                csr_walltime_reduction_pct: 23.077,
            },
            metrics: MetricsSection {
                workload: "pde over 2 structured programs".into(),
                off_ns: 1_000_000,
                on_ns: 1_008_000,
                metrics_overhead_pct: 0.8,
                snapshot_stable: true,
                pass_latency: vec![PassLatencyRow {
                    pass: "pde".into(),
                    count: 16,
                    p50_ns: 524_287,
                    p90_ns: 1_048_575,
                    p99_ns: 2_097_151,
                    max_ns: 2_097_151,
                }],
            },
            serve: ServeSection {
                workload: "200 structured programs, in-process replay".into(),
                requests: 200,
                cold_ns: 50_000_000,
                warm_ns: 5_000_000,
                req_per_sec: 40_000.0,
                p50_ns: 20_000,
                p99_ns: 110_000,
                wall_ms_budget: 200,
                warm_identical: true,
                warm_speedup_pct: 90.0,
            },
            sparse: SparseAb {
                workload: "dead+faint+delay cold solves over 3 structured programs".into(),
                priority_ns: 4_000_000,
                sparse_ns: 1_000_000,
                priority_pops: 5_000,
                sparse_pops: 600,
                sparse_pops_reduction_pct: 88.0,
                sparse_walltime_reduction_pct: 75.0,
                bit_identical: true,
            },
            recovery: RecoverySection {
                workload: "60 structured programs, kill -9 drill".into(),
                requests: 60,
                requests_lost: 0,
                warm_identical_after_crash: true,
                wal_off_ns: 10_000_000,
                wal_on_ns: 10_200_000,
                wal_overhead_pct: 2.0,
                wal_appends: 60,
                wal_recovered: 60,
            },
            resilience: ResilienceTotals {
                tv_checks: 6,
                ..ResilienceTotals::default()
            },
        }
    }

    #[test]
    fn emitted_document_validates() {
        let text = sample().to_json();
        validate(&text).expect("schema-valid");
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_json(), sample().to_json());
    }

    #[test]
    fn validation_rejects_violations() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        // A failed figure reproduction is a schema violation: the
        // summary must never silently publish a broken corpus.
        let mut s = sample();
        s.figures[0].reproduced = false;
        assert!(validate(&s.to_json()).unwrap_err().contains("reproduced"));
        // Tampered solver counters are caught.
        let good = sample().to_json();
        let bad = good.replace("\"word_ops\":900", "\"word_ops\":\"x\"");
        assert!(validate(&bad).is_err());
    }

    #[test]
    fn validation_enforces_pops_reduction_bar() {
        let mut s = sample();
        // A priority run that pops as much as FIFO fails the ≥20% bar.
        s.sweep[0].pde_solver.priority_pops = s.sweep[0].pde_solver_fifo.fifo_pops;
        s.pops_reduction_pct = pops_reduction_pct(&s.sweep);
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("acceptance bar"));
    }

    #[test]
    fn pops_reduction_handles_empty_and_zero() {
        assert_eq!(pops_reduction_pct(&[]), 0.0);
        let s = sample();
        let pct = pops_reduction_pct(&s.sweep);
        assert!((pct - (120.0 - 70.0) * 100.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn validation_enforces_incremental_pops_reduction_bar() {
        let mut s = sample();
        // Seeding that saves nothing over the cold reference fails the
        // ≥40% bar.
        s.sweep[0].pde_solver.seeded_pops = 90;
        s.incremental_pops_reduction_pct = incremental_pops_reduction_pct(&s.sweep);
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("incremental_pops_reduction_pct"));
    }

    #[test]
    fn validation_enforces_tv_overhead_bar() {
        let mut s = sample();
        s.tv.tv_overhead_pct = 23.5;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("tv_overhead_pct"));
        // Exactly at the bar still fails: the contract is strictly under.
        s.tv.tv_overhead_pct = MAX_TV_OVERHEAD_PCT;
        assert!(validate(&s.to_json()).is_err());
    }

    #[test]
    fn validation_enforces_csr_walltime_bar() {
        let mut s = sample();
        // A cached view that saves no wall time fails the ≥10% bar.
        s.csr.csr_walltime_reduction_pct = 4.2;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("csr_walltime_reduction_pct"));
    }

    #[test]
    fn validation_enforces_metrics_overhead_bar() {
        let mut s = sample();
        s.metrics.metrics_overhead_pct = 3.7;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("metrics_overhead_pct"));
        // Exactly at the bar still fails: the contract is strictly under.
        s.metrics.metrics_overhead_pct = MAX_METRICS_OVERHEAD_PCT;
        assert!(validate(&s.to_json()).is_err());
    }

    #[test]
    fn validation_requires_stable_snapshots_and_pass_latency() {
        let mut s = sample();
        s.metrics.snapshot_stable = false;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("snapshot_stable"));
        let mut s = sample();
        s.metrics.pass_latency.clear();
        assert!(validate(&s.to_json()).unwrap_err().contains("pass_latency"));
    }

    #[test]
    fn validation_enforces_serve_bars() {
        // Throughput below the sustained-req/s bar.
        let mut s = sample();
        s.serve.req_per_sec = 512.0;
        assert!(validate(&s.to_json()).unwrap_err().contains("req_per_sec"));
        // p99 above the --wall-ms admission cap.
        let mut s = sample();
        s.serve.p99_ns = 201_000_000;
        assert!(validate(&s.to_json()).unwrap_err().contains("p99_ns"));
        // Warm responses must be byte-identical to cold ones.
        let mut s = sample();
        s.serve.warm_identical = false;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("warm_identical"));
        // Warm-cache replay must actually be faster.
        let mut s = sample();
        s.serve.warm_speedup_pct = 3.0;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("warm_speedup_pct"));
    }

    #[test]
    fn validation_enforces_sparse_bars() {
        // A sparse solver that pops as much as the dense one fails the
        // ≥2× pops bar.
        let mut s = sample();
        s.sparse.sparse_pops_reduction_pct = 37.0;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("sparse_pops_reduction_pct"));
        // ...and one that saves pops but not wall time fails the ≥2×
        // wall-time bar.
        let mut s = sample();
        s.sparse.sparse_walltime_reduction_pct = 12.0;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("sparse_walltime_reduction_pct"));
        // A sparse fixpoint that diverges from the dense one is a
        // schema violation regardless of how fast it was.
        let mut s = sample();
        s.sparse.bit_identical = false;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("bit_identical"));
    }

    #[test]
    fn validation_requires_tv_checks_behind_the_ab() {
        let mut s = sample();
        s.resilience.tv_checks = 0;
        assert!(validate(&s.to_json()).unwrap_err().contains("tv_checks"));
    }

    #[test]
    fn validation_enforces_recovery_bars() {
        // The crash drill may recompute, but must never lose a request.
        let mut s = sample();
        s.recovery.requests_lost = 3;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("requests_lost"));
        // Post-crash answers must match pre-crash answers byte for byte.
        let mut s = sample();
        s.recovery.warm_identical_after_crash = false;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("warm_identical_after_crash"));
        // Journaling that costs real throughput fails the <5% bar;
        // exactly at the bar still fails (the contract is strictly under).
        let mut s = sample();
        s.recovery.wal_overhead_pct = MAX_WAL_OVERHEAD_PCT;
        assert!(validate(&s.to_json())
            .unwrap_err()
            .contains("wal_overhead_pct"));
    }

    #[test]
    fn validation_reports_every_violated_bar_at_once() {
        let mut s = sample();
        s.recovery.requests_lost = 1;
        s.recovery.warm_identical_after_crash = false;
        s.serve.warm_speedup_pct = 0.0;
        let err = validate(&s.to_json()).unwrap_err();
        assert!(err.contains("3 acceptance bars failed"), "{err}");
        assert!(err.contains("requests_lost"), "{err}");
        assert!(err.contains("warm_identical_after_crash"), "{err}");
        assert!(err.contains("warm_speedup_pct"), "{err}");
    }

    #[test]
    fn incremental_pops_reduction_handles_empty_and_zero() {
        assert_eq!(incremental_pops_reduction_pct(&[]), 0.0);
        let s = sample();
        let pct = incremental_pops_reduction_pct(&s.sweep);
        assert!((pct - (130.0 - 70.0) * 100.0 / 130.0).abs() < 1e-9);
    }
}
