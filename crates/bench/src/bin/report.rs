//! Regenerates every experiment tracked in `EXPERIMENTS.md`:
//! the figure corpus (the paper's worked examples) and the Section 6
//! complexity claims C1–C6 plus the dynamic-cost comparison D1 — and
//! emits the machine-readable `BENCH_PDE.json` summary (per-figure
//! timings with solver counters, the scaling sweep, and the
//! tracing-overhead A/B) so the perf trajectory has data.
//!
//! Run with: `cargo run --release -p pdce-bench --bin report`
//!
//! Flags: `--quick` runs the CI smoke slice only (figures + a small
//! sweep + the tracing A/B); `--json PATH` overrides the summary path
//! (default `BENCH_PDE.json` in the current directory); `--validate
//! PATH` only checks an existing summary against the schema and exits;
//! `--jobs N` shards the scaling sweep's per-size measurements across
//! the `pdce-par` batch pool (default 1 — wall times in the JSON are
//! only comparable across runs at the same job count).

use std::rc::Rc;
use std::time::Instant;

use pdce_baselines::duchain::DuGraph;
use pdce_baselines::Liveness;
use pdce_bench::benchjson::{
    self, BenchSummary, CsrAb, FigureRow, MetricsSection, PassLatencyRow, RecoverySection,
    ResilienceTotals, ServeSection, SparseAb, SweepRow, TracingAb, TvAb,
};
use pdce_bench::{figure_corpus, fit_loglog_slope, measure, verify_figure};
use pdce_core::driver::{optimize, PdceConfig};
use pdce_core::elim::{eliminate_fixpoint, Mode};
use pdce_core::{DeadSolution, DelayInfo, FaintSolution, LocalInfo, PatternTable};
use pdce_dfa::{with_incremental, with_strategy, AnalysisCache, SolverStrategy};
use pdce_ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce_ir::{CfgView, Program};
use pdce_pass::Pipeline;
#[allow(unused_imports)]
use pdce_progen::tangled as _tangled_reexport_check;
use pdce_progen::{
    diamond_ladder, faint_chain, many_defs_many_uses, second_order_tower, structured, GenConfig,
};
use pdce_ssa::{DomInfo, SsaWeb};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_PDE.json".to_string());
    let jobs = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--jobs needs a number"))
        .unwrap_or(1);

    if let Some(i) = args.iter().position(|a| a == "--validate") {
        let path = args.get(i + 1).expect("--validate needs a path");
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read `{path}`: {e}"));
        match benchjson::validate(&text) {
            Ok(()) => {
                println!("{path}: schema-valid (v{})", benchjson::SCHEMA_VERSION);
                return;
            }
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        }
    }

    let figures = figures_table();
    let sweep = c1_c2_scaling(quick, jobs);
    if !quick {
        c1b_irreducible_scaling();
        c3_analysis_costs();
        c4_round_counts();
        c5_code_growth();
        c6_duchain_size();
        c7_cache_effectiveness();
        d1_dynamic_costs();
    }
    let tracing = t1_tracing_overhead(quick);
    let (tv, resilience) = t2_tv_overhead(quick);
    let csr = t3_csr_sharing(quick);
    let metrics = t4_metrics_plane(quick);
    let serve = t5_serving(quick);
    let sparse = t6_sparse_chains(quick);
    let recovery = t7_recovery(quick);

    let summary = BenchSummary {
        quick,
        figures,
        pops_reduction_pct: benchjson::pops_reduction_pct(&sweep),
        incremental_pops_reduction_pct: benchjson::incremental_pops_reduction_pct(&sweep),
        sweep,
        tracing,
        tv,
        csr,
        metrics,
        serve,
        sparse,
        recovery,
        resilience,
    };
    let text = summary.to_json();
    benchjson::validate(&text).expect("emitted BENCH_PDE.json is schema-valid");
    std::fs::write(&json_path, &text).unwrap_or_else(|e| panic!("cannot write `{json_path}`: {e}"));
    println!(
        "\nwrote machine-readable summary to {json_path} (schema v{})",
        benchjson::SCHEMA_VERSION
    );
}

fn hr(title: &str) {
    println!("\n==========================================================");
    println!("{title}");
    println!("==========================================================");
}

fn figures_table() -> Vec<FigureRow> {
    hr("Figures 1-13: worked-example reproduction (paper vs measured)");
    println!(
        "{:<8} {:<58} {:>10} {:>7} {:>6} {:>8} {:>9}",
        "figure", "claim", "reproduced", "rounds", "elim", "solves", "word-ops"
    );
    let mut rows = Vec::new();
    for figure in figure_corpus() {
        let solver_before = pdce_trace::solver_totals();
        let started = Instant::now();
        let (ok, rounds, eliminated) = verify_figure(&figure);
        let time_ns = started.elapsed().as_nanos();
        let solver = pdce_trace::solver_totals().since(&solver_before);
        println!(
            "{:<8} {:<58} {:>10} {:>7} {:>6} {:>8} {:>9}",
            figure.id, figure.claim, ok, rounds, eliminated, solver.problems, solver.word_ops
        );
        rows.push(FigureRow {
            id: figure.id.to_string(),
            reproduced: ok,
            rounds,
            eliminated,
            time_ns,
            solver,
        });
    }
    rows
}

fn structured_of_size(n: usize, seed: u64) -> Program {
    structured(&GenConfig {
        seed,
        target_blocks: n,
        num_vars: 8,
        stmts_per_block: (1, 4),
        out_prob: 0.2,
        loop_prob: 0.3,
        max_depth: 12,
        expr_depth: 2,
        nondet: true,
    })
}

fn c1_c2_scaling(quick: bool, jobs: usize) -> Vec<SweepRow> {
    hr("C1/C2: pde & pfe runtime scaling on structured programs");
    println!("paper: worst case O(n^4)/O(n^5); expected O(n^2)/O(n^3) on");
    println!("realistic structured programs (Section 6.4).\n");
    println!(
        "{:>7} {:>7} {:>7} {:>12} {:>12} {:>11} {:>10} {:>10} {:>10}",
        "target",
        "blocks",
        "stmts",
        "pde (µs)",
        "pfe (µs)",
        "word-ops",
        "fifo-pops",
        "cold-pops",
        "warm-pops"
    );
    let sizes: &[usize] = if quick {
        &[24, 48, 96]
    } else {
        &[24, 48, 96, 192, 384, 768]
    };
    // Shard per-size measurements across the batch pool; each worker
    // measures both strategies on its own thread (strategy selection
    // and solver counters are thread-local, so shards don't interfere).
    let measured = pdce_par::map_indexed(jobs, sizes, |_, &n| {
        let prog = structured_of_size(n, 11);
        // Headline run: priority scheduling with warm-start seeding on.
        let mp = with_strategy(SolverStrategy::Priority, || {
            with_incremental(true, || measure(n, &prog, &PdceConfig::pde(), 3))
        });
        // Both reference runs disable seeding so each baseline isolates
        // exactly one lever (scheduling vs warm-starting).
        let mp_fifo = with_strategy(SolverStrategy::Fifo, || {
            with_incremental(false, || measure(n, &prog, &PdceConfig::pde(), 3))
        });
        let mp_noincr = with_strategy(SolverStrategy::Priority, || {
            with_incremental(false, || measure(n, &prog, &PdceConfig::pde(), 3))
        });
        let mf = measure(n, &prog, &PdceConfig::pfe(), 3);
        (mp, mp_fifo, mp_noincr, mf)
    });
    let mut rows = Vec::new();
    let mut pde_points = Vec::new();
    let mut pfe_points = Vec::new();
    for ((mp, mp_fifo, mp_noincr, mf), &n) in measured.into_iter().zip(sizes) {
        println!(
            "{:>7} {:>7} {:>7} {:>12.1} {:>12.1} {:>11} {:>10} {:>10} {:>10}",
            n,
            mp.blocks,
            mp.stmts,
            mp.time_ns as f64 / 1e3,
            mf.time_ns as f64 / 1e3,
            mp.stats.solver.word_ops,
            mp_fifo.stats.solver.pops(),
            mp_noincr.stats.solver.pops(),
            mp.stats.solver.pops()
        );
        pde_points.push((mp.stmts as f64, mp.time_ns as f64));
        pfe_points.push((mf.stmts as f64, mf.time_ns as f64));
        rows.push(SweepRow {
            target: n,
            blocks: mp.blocks,
            stmts: mp.stmts,
            pde_ns: mp.time_ns,
            pfe_ns: mf.time_ns,
            pde_solver: mp.stats.solver,
            pde_solver_fifo: mp_fifo.stats.solver,
            pde_solver_noincr: mp_noincr.stats.solver,
        });
    }
    println!(
        "\nfitted growth exponents (time vs statements): pde ≈ n^{:.2}, pfe ≈ n^{:.2}",
        fit_loglog_slope(&pde_points),
        fit_loglog_slope(&pfe_points)
    );
    println!("paper expectation: pde ≲ 2, pfe ≲ 3 on structured inputs.");
    println!(
        "priority worklist pops {:.1}% fewer than the FIFO reference (bar ≥{}%).",
        benchjson::pops_reduction_pct(&rows),
        benchjson::MIN_POPS_REDUCTION_PCT
    );
    println!(
        "warm-start seeding pops {:.1}% fewer than cold re-solving (bar ≥{}%).",
        benchjson::incremental_pops_reduction_pct(&rows),
        benchjson::MIN_INCREMENTAL_POPS_REDUCTION_PCT
    );
    rows
}

fn c1b_irreducible_scaling() {
    hr(
        "C1b: arbitrary (irreducible) control flow — same algorithm, no
special casing (the Figure 5/6 claim, at scale)",
    );
    println!(
        "{:>7} {:>7} {:>7} {:>12} {:>12}",
        "target", "blocks", "stmts", "pde (µs)", "irreducible"
    );
    let mut points = Vec::new();
    for n in [24usize, 48, 96, 192, 384] {
        let prog = pdce_progen::tangled(
            &GenConfig {
                seed: 23,
                target_blocks: n,
                num_vars: 8,
                stmts_per_block: (1, 4),
                out_prob: 0.2,
                loop_prob: 0.3,
                max_depth: 12,
                expr_depth: 2,
                nondet: true,
            },
            n / 4,
        );
        let irreducible = !CfgView::new(&prog).is_reducible();
        let m = measure(n, &prog, &PdceConfig::pde(), 3);
        println!(
            "{:>7} {:>7} {:>7} {:>12.1} {:>12}",
            n,
            m.blocks,
            m.stmts,
            m.time_ns as f64 / 1e3,
            irreducible
        );
        points.push((m.stmts as f64, m.time_ns as f64));
    }
    println!(
        "
fitted exponent on tangled graphs: pde ≈ n^{:.2}",
        fit_loglog_slope(&points)
    );
}

fn c3_analysis_costs() {
    hr("C3: component analysis costs at fixed program size");
    let prog = structured_of_size(384, 5);
    let view = CfgView::new(&prog);
    println!(
        "program: {} blocks, {} statements, {} variables\n",
        prog.num_blocks(),
        prog.num_stmts(),
        prog.num_vars()
    );

    let t = Instant::now();
    let dead = DeadSolution::compute(&prog, &view);
    let dead_t = t.elapsed();
    let t = Instant::now();
    let faint = FaintSolution::compute(&prog, &view);
    let faint_t = t.elapsed();
    let table = PatternTable::build(&prog);
    let local = LocalInfo::compute(&prog, &table);
    let t = Instant::now();
    let delay = DelayInfo::compute(&prog, &view, &table, &local);
    let delay_t = t.elapsed();
    let t = Instant::now();
    let du = DuGraph::build(&prog, &view);
    let du_t = t.elapsed();

    println!(
        "{:<28} {:>12} {:>14}",
        "analysis", "time (µs)", "evaluations"
    );
    println!(
        "{:<28} {:>12.1} {:>14}",
        "dead variables (bit-vector)",
        dead_t.as_nanos() as f64 / 1e3,
        dead.evaluations()
    );
    println!(
        "{:<28} {:>12.1} {:>14}",
        "faint variables (slotwise)",
        faint_t.as_nanos() as f64 / 1e3,
        faint.evaluations()
    );
    println!(
        "{:<28} {:>12.1} {:>14}",
        "delayability (bit-vector)",
        delay_t.as_nanos() as f64 / 1e3,
        delay.evaluations
    );
    println!(
        "{:<28} {:>12.1} {:>14}",
        "du-chain graph build",
        du_t.as_nanos() as f64 / 1e3,
        du.du_edges
    );
    println!("\npaper: dead/delay are bit-vector problems; faint needs the");
    println!("slotwise O(i·v) algorithm (Section 6.1).");
}

fn c4_round_counts() {
    hr("C4: global round count r (paper conjecture: linear in i)");
    println!("workload: second-order tower (each round unblocks one link)\n");
    println!("{:>6} {:>7} {:>7}", "k", "stmts", "rounds");
    let mut points = Vec::new();
    for k in [4usize, 8, 16, 32, 64] {
        let prog = second_order_tower(k);
        let m = measure(k, &prog, &PdceConfig::pde(), 1);
        println!("{:>6} {:>7} {:>7}", k, m.stmts, m.stats.rounds);
        points.push((k as f64, m.stats.rounds as f64));
    }
    println!(
        "\nfitted exponent: r ≈ k^{:.2} (paper bound r ≤ i·b, conjecture linear)",
        fit_loglog_slope(&points)
    );

    println!("\nelimination passes on the faint chain (dce linear, fce one):");
    println!("{:>6} {:>11} {:>11}", "k", "dce passes", "fce passes");
    for k in [4usize, 8, 16, 32] {
        let mut p = faint_chain(k);
        let (_, dce_passes) = eliminate_fixpoint(&mut p, Mode::Dead);
        let mut p = faint_chain(k);
        let (_, fce_passes) = eliminate_fixpoint(&mut p, Mode::Faint);
        println!("{:>6} {:>11} {:>11}", k, dce_passes, fce_passes);
    }
}

fn c5_code_growth() {
    hr("C5: code growth ω (paper: O(b) worst case, O(1) in practice)");
    println!(
        "{:>10} {:>7} {:>9} {:>9} {:>7}",
        "workload", "n", "initial", "peak", "ω"
    );
    for n in [8usize, 32, 128] {
        let prog = diamond_ladder(n);
        let m = measure(n, &prog, &PdceConfig::pde(), 1);
        println!(
            "{:>10} {:>7} {:>9} {:>9} {:>7.2}",
            "ladder",
            n,
            m.stats.initial_stmts,
            m.stats.max_stmts,
            m.stats.growth_factor()
        );
    }
    let mut worst: f64 = 1.0;
    for seed in 0..30u64 {
        let prog = structured_of_size(48, seed);
        let m = measure(48, &prog, &PdceConfig::pde(), 1);
        worst = worst.max(m.stats.growth_factor());
    }
    println!(
        "{:>10} {:>7} {:>9} {:>9} {:>7.2}",
        "random×30", 48, "-", "-", worst
    );
    println!("\nω stays bounded by a small constant — the practical O(1) regime.");
}

fn c6_duchain_size() {
    hr("C6: du-graph size (paper: O(i²·v) worst case)");
    println!("worst-case family (k defs × k uses of one variable):\n");
    println!("{:>6} {:>7} {:>10}", "k", "stmts", "du edges");
    let mut worst_points = Vec::new();
    for k in [8usize, 16, 32, 64, 128] {
        let prog = many_defs_many_uses(k);
        let view = CfgView::new(&prog);
        let du = DuGraph::build(&prog, &view);
        println!("{:>6} {:>7} {:>10}", k, prog.num_stmts(), du.du_edges);
        worst_points.push((k as f64, du.du_edges as f64));
    }
    println!(
        "\nfitted exponent: edges ≈ k^{:.2} (quadratic, as the paper warns)",
        fit_loglog_slope(&worst_points)
    );
    let mut random_points = Vec::new();
    for n in [48usize, 96, 192, 384] {
        let prog = structured_of_size(n, 17);
        let view = CfgView::new(&prog);
        let du = DuGraph::build(&prog, &view);
        random_points.push((prog.num_stmts() as f64, du.du_edges as f64));
    }
    println!(
        "on random structured programs: edges ≈ i^{:.2} (still superlinear —\n\
         the paper's point that du-graphs are 'usually quite large')",
        fit_loglog_slope(&random_points)
    );

    println!("\nsparse SSA web (Cytron et al., the paper's O(i·v) comparison");
    println!("point) on the same worst-case family:\n");
    println!(
        "{:>6} {:>7} {:>12} {:>12}",
        "k", "stmts", "dense edges", "ssa edges"
    );
    let mut sparse_points = Vec::new();
    for k in [8usize, 16, 32, 64, 128] {
        let prog = many_defs_many_uses(k);
        let view = CfgView::new(&prog);
        let du = DuGraph::build(&prog, &view);
        let web = SsaWeb::build(&prog, &view);
        println!(
            "{:>6} {:>7} {:>12} {:>12}",
            k,
            prog.num_stmts(),
            du.du_edges,
            web.edges
        );
        sparse_points.push((k as f64, web.edges as f64));
    }
    println!(
        "\nfitted exponents: dense ≈ k^2.00, sparse ≈ k^{:.2} — the φ-merge\n\
         turns the quadratic web linear, matching the §5.2 comparison.",
        fit_loglog_slope(&sparse_points)
    );
}

/// The pass manager's analysis cache: CFG-view rebuilds avoided inside
/// the iterated pde/pfe drivers (elimination and sinking share one view
/// per round; the stable final round reuses the previous round's
/// data-flow solutions outright).
fn c7_cache_effectiveness() {
    hr("C7: analysis cache effectiveness inside the pde/pfe drivers");
    println!(
        "{:>7} {:>7} {:>7} {:>10} {:>10} {:>10}",
        "target", "mode", "rounds", "cfg-hits", "cfg-miss", "dfa-hits"
    );
    for n in [24usize, 96, 384] {
        for (mode, config) in [("pde", PdceConfig::pde()), ("pfe", PdceConfig::pfe())] {
            let mut prog = structured_of_size(n, 11);
            let stats = optimize(&mut prog, &config).unwrap();
            println!(
                "{:>7} {:>7} {:>7} {:>10} {:>10} {:>10}",
                n,
                mode,
                stats.rounds,
                stats.cache.cfg_hits,
                stats.cache.cfg_misses,
                stats.cache.analysis_hits
            );
            assert!(
                stats.cache.cfg_hits >= stats.rounds as u64,
                "each round must reuse the shared CFG view at least once"
            );
        }
    }
    println!("\nwithout the cache every round paid ≥2 CFG-view builds (one in");
    println!("the eliminator, one in the sinker); with it, one per CFG change.");
}

fn d1_dynamic_costs() {
    hr("D1: dynamic executed assignments (who wins, per Def. 3.6)");
    println!("average over 20 random programs × 3 runs each; lower is better\n");
    let mut totals = [0u64; 5];
    let names = ["original", "dce", "pde", "pfe", "naive-sink"];
    // Every optimization level is a pipeline spec over registered passes.
    let specs = ["liveness-dce", "pde", "pfe", "split-edges,naive-sink"];
    let mut impairments = 0u32;
    for seed in 0..20u64 {
        let original = structured_of_size(40, seed.wrapping_mul(101));
        let [dce, pde_p, pfe_p, naive] = specs.map(|spec| {
            let mut prog = original.clone();
            Pipeline::parse(spec).unwrap().run(&mut prog);
            prog
        });

        for run_seed in [3u64, 17, 99] {
            let inputs: [(&str, i64); 2] = [("v0", 4), ("v1", -7)];
            let mut env = Env::with_values(&original, &inputs);
            let mut oracle = SeededOracle::new(run_seed);
            let limits = ExecLimits {
                max_block_visits: 4_000,
            };
            let t0 = run(&original, &mut env, &mut oracle, limits);
            let variants = [&original, &dce, &pde_p, &pfe_p, &naive];
            for (i, v) in variants.iter().enumerate() {
                let mut env = Env::with_values(v, &inputs);
                let mut oracle = ReplayOracle::new(t0.decisions.clone());
                let t = run(v, &mut env, &mut oracle, limits);
                assert_eq!(t.outputs, t0.outputs, "{} broke semantics", names[i]);
                totals[i] += t.executed_assignments;
                if i == 4 && t.executed_assignments > t0.executed_assignments {
                    impairments += 1;
                }
            }
        }
    }
    println!("{:<12} {:>14} {:>10}", "level", "total assigns", "vs orig");
    for (i, name) in names.iter().enumerate() {
        println!(
            "{:<12} {:>14} {:>9.1}%",
            name,
            totals[i],
            100.0 * totals[i] as f64 / totals[0] as f64
        );
    }
    println!("\nexpected shape: pfe ≤ pde ≤ dce ≤ original on every path");
    println!("(Theorem 5.2); the naive sinker impaired {impairments} run(s) here");
    println!("(random programs rarely bait it — see the irreducible_loops");
    println!("example and tests/related_work.rs for the Figure 6 impairment).");
    assert!(totals[3] <= totals[2]);
    assert!(totals[2] <= totals[1]);
    assert!(totals[1] <= totals[0]);
}

/// The disabled-tracing overhead A/B. Instrumentation cannot be
/// compiled out at run time, so the bound is two interleaved best-of-N
/// disabled-mode timings of the same pde sweep: their relative delta is
/// an upper bound on (instrumentation cost + timer noise), which the
/// acceptance bar requires to stay under 2%. A third series with a
/// buffering `Collector` installed shows what enabling costs.
fn t1_tracing_overhead(quick: bool) -> TracingAb {
    hr("T1: tracing overhead A/B (disabled must stay within noise)");
    let sizes: &[usize] = if quick { &[24, 48] } else { &[24, 48, 96, 192] };
    let progs: Vec<Program> = sizes.iter().map(|&n| structured_of_size(n, 11)).collect();
    let workload = || {
        for p in &progs {
            let mut clone = p.clone();
            optimize(&mut clone, &PdceConfig::pde()).expect("driver terminates");
        }
    };
    let time_once = || {
        let t = Instant::now();
        workload();
        t.elapsed().as_nanos()
    };
    let reps = if quick { 7 } else { 11 };
    // Warmup, then interleave the two disabled series so drift (thermal,
    // scheduler) hits both equally; keep the minimum of each.
    workload();
    let (mut a, mut b) = (u128::MAX, u128::MAX);
    for _ in 0..reps {
        a = a.min(time_once());
        b = b.min(time_once());
    }
    let mut enabled = u128::MAX;
    for _ in 0..reps {
        let collector = Rc::new(pdce_trace::Collector::new());
        let _guard = pdce_trace::install(collector);
        enabled = enabled.min(time_once());
    }
    let disabled = a.min(b);
    let delta_pct = (a.abs_diff(b)) as f64 * 100.0 / disabled as f64;
    let overhead_pct = enabled.saturating_sub(disabled) as f64 * 100.0 / disabled as f64;
    println!(
        "workload: pde over {} structured programs, best of {reps}\n",
        progs.len()
    );
    println!("{:<26} {:>12}", "series", "best (µs)");
    println!("{:<26} {:>12.1}", "disabled A", a as f64 / 1e3);
    println!("{:<26} {:>12.1}", "disabled B", b as f64 / 1e3);
    println!(
        "{:<26} {:>12.1}",
        "collector installed",
        enabled as f64 / 1e3
    );
    println!(
        "\ndisabled A/B delta: {delta_pct:.2}% (acceptance bar <2%); enabled\n\
         collection costs {overhead_pct:.1}% on this span/provenance-heavy sweep."
    );
    TracingAb {
        workload: format!(
            "pde over {} structured programs (targets {:?}), best of {reps}",
            progs.len(),
            sizes
        ),
        disabled_a_ns: a,
        disabled_b_ns: b,
        disabled_ab_delta_pct: delta_pct,
        enabled_ns: enabled,
        enabled_overhead_pct: overhead_pct,
    }
}

/// The translation-validation overhead A/B: the same pde workload with
/// per-round semantic validation off and on (K seeded vectors through
/// the interpreter per round), interleaved best-of-N, plus the
/// accumulated resilience counters of the validated series. The
/// acceptance bar requires the validated run to cost <10% extra.
fn t2_tv_overhead(quick: bool) -> (TvAb, ResilienceTotals) {
    hr("T2: translation-validation overhead A/B (bar <10%)");
    // Solver work grows faster than interpreter work with program
    // size, so the per-round validation tax is measured where the
    // optimizer actually spends time: mid-size programs. Tiny inputs
    // would overstate the relative cost of the K executions per round.
    let vectors = 2u32;
    let sizes: &[usize] = if quick { &[48, 96] } else { &[48, 96, 192] };
    let progs: Vec<Program> = sizes.iter().map(|&n| structured_of_size(n, 17)).collect();
    let base = PdceConfig::pde();
    let validated = PdceConfig::pde().with_validation(vectors);
    let time_once = |config: &PdceConfig| {
        let t = Instant::now();
        for p in &progs {
            let mut clone = p.clone();
            optimize(&mut clone, config).expect("driver terminates");
        }
        t.elapsed().as_nanos()
    };
    let reps = if quick { 7 } else { 11 };
    // Warmup both paths, then interleave so drift hits them equally.
    time_once(&base);
    time_once(&validated);
    let (mut off, mut on) = (u128::MAX, u128::MAX);
    for _ in 0..reps {
        off = off.min(time_once(&base));
        on = on.min(time_once(&validated));
    }
    let overhead_pct = on.saturating_sub(off) as f64 * 100.0 / off as f64;
    let mut totals = ResilienceTotals::default();
    for p in &progs {
        let mut clone = p.clone();
        let stats = optimize(&mut clone, &validated).expect("driver terminates");
        totals.rollbacks += stats.rollbacks;
        totals.degradations += stats.degradations;
        totals.tv_checks += stats.tv_checks;
        totals.tv_rollbacks += stats.tv_rollbacks;
        totals.budget_exhaustions += stats.budget_exhaustions;
    }
    println!(
        "workload: pde over {} structured programs, {vectors} vectors/round, best of {reps}\n",
        progs.len()
    );
    println!("{:<26} {:>12}", "series", "best (µs)");
    println!("{:<26} {:>12.1}", "validation off", off as f64 / 1e3);
    println!("{:<26} {:>12.1}", "validation on", on as f64 / 1e3);
    println!(
        "\ntv overhead: {overhead_pct:.2}% (acceptance bar <{}%); the validated\n\
         series ran {} round check(s) and rolled back {} (expected 0 on a\n\
         correct optimizer).",
        benchjson::MAX_TV_OVERHEAD_PCT,
        totals.tv_checks,
        totals.tv_rollbacks
    );
    assert_eq!(
        totals.tv_rollbacks, 0,
        "the uninjected optimizer miscompiled"
    );
    (
        TvAb {
            workload: format!(
                "pde over {} structured programs (targets {:?}), {vectors} vectors/round, \
                 best of {reps}",
                progs.len(),
                sizes
            ),
            vectors,
            off_ns: off,
            on_ns: on,
            tv_overhead_pct: overhead_pct,
        },
        totals,
    )
}

/// The shared-`CfgView` A/B (the CSR refactor's headline number): the
/// scaling sweep's analysis workload timed with every consumer building
/// its own flow-graph view per analysis — the pre-CSR access pattern,
/// where each layer recomputed predecessors and traversal orders
/// privately — versus one revision-memoized CSR view shared through
/// the [`AnalysisCache`]. Interleaved best-of-N; the acceptance bar
/// requires the shared view to save ≥10% wall time.
fn t3_csr_sharing(quick: bool) -> CsrAb {
    hr("T3: shared CSR CfgView vs per-consumer rebuilds (bar ≥10%)");
    let sizes: &[usize] = if quick {
        &[24, 48, 96]
    } else {
        &[24, 48, 96, 192, 384]
    };
    let progs: Vec<Program> = sizes.iter().map(|&n| structured_of_size(n, 11)).collect();
    // The adjacency/order-bound consumers the refactor unified — one
    // representative gen/kill solve (liveness, pdce-baselines), plus
    // dominators (pdce-ssa), reachability (pdce-ir validation), the
    // critical-edge table (edge splitting), natural back edges and
    // reducibility (the naive sinker / generators). Heavier solver
    // payloads (dead, faint, delayability) are excluded: their
    // fixpoint cost is independent of how the adjacency is obtained
    // and would only dilute the number this A/B isolates.
    fn run_consumers(prog: &Program, view: &CfgView) {
        std::hint::black_box(Liveness::compute(prog, view));
        std::hint::black_box(DomInfo::compute(view));
        std::hint::black_box(pdce_ir::validate::reaches(view, view.exit()));
        std::hint::black_box(view.critical_edges().len());
        std::hint::black_box(view.natural_back_edges());
        std::hint::black_box(view.is_reducible());
    }
    let consumers = 6usize;
    let legacy_once = || {
        let t = Instant::now();
        for p in &progs {
            // Each consumer rebuilds adjacency + orders, as each layer
            // did before the CfgView refactor.
            std::hint::black_box(Liveness::compute(p, &CfgView::new(p)));
            std::hint::black_box(DomInfo::compute(&CfgView::new(p)));
            let v = CfgView::new(p);
            std::hint::black_box(pdce_ir::validate::reaches(&v, v.exit()));
            std::hint::black_box(CfgView::new(p).critical_edges().len());
            std::hint::black_box(CfgView::new(p).natural_back_edges());
            std::hint::black_box(CfgView::new(p).is_reducible());
        }
        t.elapsed().as_nanos()
    };
    let csr_once = || {
        let t = Instant::now();
        for p in &progs {
            let mut cache = AnalysisCache::new();
            let view = cache.cfg(p);
            run_consumers(p, &view);
        }
        t.elapsed().as_nanos()
    };
    let reps = if quick { 9 } else { 15 };
    legacy_once();
    csr_once();
    let (mut legacy, mut csr) = (u128::MAX, u128::MAX);
    for _ in 0..reps {
        legacy = legacy.min(legacy_once());
        csr = csr.min(csr_once());
    }
    let reduction_pct = legacy.saturating_sub(csr) as f64 * 100.0 / legacy as f64;
    println!(
        "workload: {consumers} analyses over {} structured programs, best of {reps}\n",
        progs.len()
    );
    println!("{:<30} {:>12}", "series", "best (µs)");
    println!(
        "{:<30} {:>12.1}",
        "per-consumer view rebuilds",
        legacy as f64 / 1e3
    );
    println!("{:<30} {:>12.1}", "one cached CSR view", csr as f64 / 1e3);
    println!(
        "\ncsr wall-time reduction: {reduction_pct:.2}% (acceptance bar ≥{}%).",
        benchjson::MIN_CSR_WALLTIME_REDUCTION_PCT
    );
    CsrAb {
        workload: format!(
            "{consumers} analyses (liveness, dominators, reachability, critical edges, \
             back edges, reducibility) over \
             {} structured programs (targets {:?}), best of {reps}",
            progs.len(),
            sizes
        ),
        legacy_ns: legacy,
        csr_ns: csr,
        csr_walltime_reduction_pct: reduction_pct,
    }
}

/// The metrics-plane section (this PR's headline numbers). Three parts:
///
/// 1. **Overhead A/B** — the same pde workload with registry recording
///    enabled and suppressed via the runtime gate, interleaved
///    best-of-N. Unlike the tracing A/B (which can only bound
///    disabled-mode noise), `pdce_metrics::suppressed` genuinely turns
///    the atomic updates off, so this is a direct on-vs-off measurement
///    held against the <2% bar.
/// 2. **Snapshot stability** — the structured corpus optimized through
///    the `pdce-par` pool at `jobs=1` and `jobs=4`; the
///    run-scoped `prometheus_deterministic()` exposition must be
///    byte-identical (deterministic families count logical work, not
///    wall time, and sum commutatively across threads).
/// 3. **Per-pass latency quantiles** — `pdce_pass_wall_ns` read back
///    from the registry after a pipeline run over the corpus.
fn t4_metrics_plane(quick: bool) -> MetricsSection {
    hr("T4: always-on metrics plane (overhead bar <2%, stable snapshots)");
    let sizes: &[usize] = if quick { &[24, 48] } else { &[24, 48, 96, 192] };
    let progs: Vec<Program> = sizes.iter().map(|&n| structured_of_size(n, 11)).collect();
    let time_once = || {
        let t = Instant::now();
        for p in &progs {
            let mut clone = p.clone();
            optimize(&mut clone, &PdceConfig::pde()).expect("driver terminates");
        }
        t.elapsed().as_nanos()
    };
    let reps = if quick { 7 } else { 11 };
    // Warmup both gates, then interleave so drift hits them equally.
    time_once();
    pdce_metrics::suppressed(time_once);
    let (mut on, mut off) = (u128::MAX, u128::MAX);
    for _ in 0..reps {
        on = on.min(time_once());
        off = off.min(pdce_metrics::suppressed(time_once));
    }
    let overhead_pct = on.saturating_sub(off) as f64 * 100.0 / off as f64;

    // Snapshot stability on the CFG corpus: same programs, different
    // worker counts, byte-compared deterministic exposition deltas.
    let corpus_n: u64 = if quick { 40 } else { 200 };
    let corpus: Vec<Program> = (0..corpus_n)
        .map(|i| structured_of_size(24 + (i as usize % 5) * 12, 1_000 + i))
        .collect();
    let deterministic_delta = |jobs: usize| {
        let base = pdce_metrics::global().snapshot();
        pdce_par::map_indexed(jobs, &corpus, |_, p| {
            let mut clone = p.clone();
            optimize(&mut clone, &PdceConfig::pde()).expect("driver terminates");
        });
        pdce_metrics::global()
            .snapshot()
            .since(&base)
            .prometheus_deterministic()
    };
    let snap_seq = deterministic_delta(1);
    let snap_par = deterministic_delta(4);
    let snapshot_stable = snap_seq == snap_par;

    // Per-pass latency: the registered pass pipeline is what feeds the
    // `pdce_pass_wall_ns` family, so run it over a slice of the corpus
    // and read the quantiles back from the run-scoped delta.
    let base = pdce_metrics::global().snapshot();
    let pipeline = Pipeline::parse("pde,pfe").expect("registered passes");
    for p in corpus.iter().take(if quick { 10 } else { 30 }) {
        let mut clone = p.clone();
        pipeline.run(&mut clone);
    }
    let delta = pdce_metrics::global().snapshot().since(&base);
    let mut pass_latency = Vec::new();
    for s in &delta.series {
        if s.name != "pdce_pass_wall_ns" {
            continue;
        }
        if let pdce_metrics::Value::Histogram(h) = &s.value {
            if h.count == 0 {
                continue;
            }
            let pass = s
                .labels
                .iter()
                .find(|(k, _)| *k == "pass")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            pass_latency.push(PassLatencyRow {
                pass,
                count: h.count,
                p50_ns: h.quantile(0.5),
                p90_ns: h.quantile(0.9),
                p99_ns: h.quantile(0.99),
                max_ns: h.max_estimate(),
            });
        }
    }

    println!(
        "workload: pde over {} structured programs, best of {reps}\n",
        progs.len()
    );
    println!("{:<26} {:>12}", "series", "best (µs)");
    println!("{:<26} {:>12.1}", "recording suppressed", off as f64 / 1e3);
    println!("{:<26} {:>12.1}", "recording enabled", on as f64 / 1e3);
    println!(
        "\nmetrics overhead: {overhead_pct:.2}% (acceptance bar <{}%).",
        benchjson::MAX_METRICS_OVERHEAD_PCT
    );
    println!(
        "deterministic snapshot over the {corpus_n}-CFG corpus: jobs=1 vs jobs=4 {}",
        if snapshot_stable {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    println!(
        "\n{:<10} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "pass", "count", "p50 (ns)", "p90 (ns)", "p99 (ns)", "max (ns)"
    );
    for p in &pass_latency {
        println!(
            "{:<10} {:>7} {:>12} {:>12} {:>12} {:>12}",
            p.pass, p.count, p.p50_ns, p.p90_ns, p.p99_ns, p.max_ns
        );
    }
    println!("(quantiles are inclusive upper log₂-bucket edges)");
    MetricsSection {
        workload: format!(
            "pde over {} structured programs (targets {:?}), best of {reps}; \
             stability over a {corpus_n}-CFG corpus at jobs 1 vs 4",
            progs.len(),
            sizes
        ),
        off_ns: off,
        on_ns: on,
        metrics_overhead_pct: overhead_pct,
        snapshot_stable,
        pass_latency,
    }
}

fn t5_serving(quick: bool) -> ServeSection {
    hr("T5: pdce serve throughput/latency (cold vs warm cache)");
    // A corpus of small programs, each request encoded once so the cold
    // and warm replays send byte-identical lines.
    let corpus_n: u64 = if quick { 60 } else { 200 };
    let wall_ms_budget: u64 = 200;
    let requests: Vec<String> = (0..corpus_n)
        .map(|i| {
            let prog = structured_of_size(10 + (i as usize % 5) * 4, 7_000 + i);
            pdce_serve::protocol::encode_request(
                None,
                &pdce_ir::printer::print_program(&prog),
                pdce_serve::Mode::Pde,
            )
        })
        .collect();
    let server = pdce_serve::Server::new(pdce_serve::ServeOptions {
        wall_ms: Some(wall_ms_budget),
        ..pdce_serve::ServeOptions::default()
    });
    // Replay the corpus through the per-request serving path, recording
    // each request's latency (the quantile source) and the replay wall
    // time (the throughput source).
    let replay = || -> (u128, Vec<u64>, Vec<String>) {
        let mut lat = Vec::with_capacity(requests.len());
        let mut responses = Vec::with_capacity(requests.len());
        let total = Instant::now();
        for line in &requests {
            let t = Instant::now();
            let response = server.respond_line(line).expect("one response per request");
            lat.push(t.elapsed().as_nanos() as u64);
            responses.push(response);
        }
        (total.elapsed().as_nanos(), lat, responses)
    };
    let (cold_ns, _, cold_responses) = replay();
    let (warm_ns, mut warm_lat, warm_responses) = replay();
    let warm_identical = cold_responses == warm_responses;
    let req_per_sec = corpus_n as f64 * 1e9 / warm_ns as f64;
    warm_lat.sort_unstable();
    let quantile = |q: f64| {
        let rank = ((warm_lat.len() as f64 * q).ceil() as usize).clamp(1, warm_lat.len());
        warm_lat[rank - 1]
    };
    let (p50_ns, p99_ns) = (quantile(0.5), quantile(0.99));
    let warm_speedup_pct = cold_ns.saturating_sub(warm_ns) as f64 * 100.0 / cold_ns as f64;

    println!("workload: {corpus_n} small structured programs, --wall-ms {wall_ms_budget}\n");
    println!("{:<22} {:>12} {:>14}", "replay", "wall (ms)", "req/s");
    for (name, ns) in [("cold (computed)", cold_ns), ("warm (cache hits)", warm_ns)] {
        println!(
            "{:<22} {:>12.2} {:>14.0}",
            name,
            ns as f64 / 1e6,
            corpus_n as f64 * 1e9 / ns as f64
        );
    }
    println!(
        "\nwarm latency: p50 {:.1} µs, p99 {:.1} µs (admission cap {wall_ms_budget} ms)",
        p50_ns as f64 / 1e3,
        p99_ns as f64 / 1e3
    );
    println!(
        "warm responses byte-identical to cold: {warm_identical}; \
         warm speedup {warm_speedup_pct:.1}% (bars: ≥{} req/s, ≥{}% speedup)",
        benchjson::MIN_SERVE_REQ_PER_SEC,
        benchjson::MIN_SERVE_WARM_SPEEDUP_PCT
    );
    ServeSection {
        workload: format!(
            "{corpus_n} small structured programs replayed through the serve path, \
             cold cache then warm"
        ),
        requests: corpus_n,
        cold_ns,
        warm_ns,
        req_per_sec,
        p50_ns,
        p99_ns,
        wall_ms_budget,
        warm_identical,
        warm_speedup_pct,
    }
}

/// The WAL + crash-recovery drill behind the self-healing serving
/// plane: first an A/B that prices the journal (cold replays through
/// an in-memory cache vs a journaled on-disk one, interleaved
/// best-of-N, bar <5% overhead), then a kill -9 rehearsal — replay the
/// corpus through a journaled server, read its `wal_appends` off the
/// `{"op":"health"}` introspection line, and *drop the server without
/// any clean save* so the append-only log is the only survivor. A
/// second server recovers from that log and replays the same corpus;
/// every request must come back (`requests_lost == 0`) and every
/// answer must match its pre-crash bytes.
fn t7_recovery(quick: bool) -> RecoverySection {
    hr("T7: WAL overhead + crash-recovery drill (bars: <5%, lose nothing)");
    // Mid-sized programs: the WAL-overhead claim is per *served
    // request*, so each request must carry a realistic optimize cost —
    // against trivial programs the fixed journal append would dominate
    // and the A/B would price the fsync cadence, not the serving plane.
    let corpus_n: u64 = if quick { 40 } else { 120 };
    let requests: Vec<String> = (0..corpus_n)
        .map(|i| {
            let prog = structured_of_size(24 + (i as usize % 5) * 8, 9_000 + i);
            pdce_serve::protocol::encode_request(
                None,
                &pdce_ir::printer::print_program(&prog),
                pdce_serve::Mode::Pde,
            )
        })
        .collect();
    let replay = |server: &pdce_serve::Server| -> (u128, Vec<String>) {
        let mut responses = Vec::with_capacity(requests.len());
        let total = Instant::now();
        for line in &requests {
            responses.push(server.respond_line(line).expect("one response per request"));
        }
        (total.elapsed().as_nanos(), responses)
    };
    let scratch = std::env::temp_dir().join(format!("pdce-bench-wal-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create WAL scratch dir");

    // A/B: journaling cost on the cold path (the only path that
    // appends). Fresh caches each rep so both sides stay cold;
    // interleaved best-of-N absorbs scheduler noise.
    let reps = 5;
    let (mut wal_off_ns, mut wal_on_ns) = (u128::MAX, u128::MAX);
    for rep in 0..reps {
        let off_server = pdce_serve::Server::new(pdce_serve::ServeOptions::default());
        wal_off_ns = wal_off_ns.min(replay(&off_server).0);
        let on_server = pdce_serve::Server::new(pdce_serve::ServeOptions {
            cache_path: Some(scratch.join(format!("ab-{rep}.cache"))),
            ..pdce_serve::ServeOptions::default()
        });
        wal_on_ns = wal_on_ns.min(replay(&on_server).0);
    }
    let wal_overhead_pct = (wal_on_ns as f64 - wal_off_ns as f64) * 100.0 / wal_off_ns as f64;

    // Crash drill. `drop` without `save_cache` leaves exactly what a
    // kill -9 leaves: the append-only log.
    let drill_path = scratch.join("drill.cache");
    let drill_opts = || pdce_serve::ServeOptions {
        cache_path: Some(drill_path.clone()),
        ..pdce_serve::ServeOptions::default()
    };
    let pre_server = pdce_serve::Server::new(drill_opts());
    let (_, pre) = replay(&pre_server);
    let health = pre_server
        .respond_line("{\"op\":\"health\"}")
        .expect("health answers");
    let wal_appends = health_counter(&health, "wal_appends");
    drop(pre_server);

    let post_server = pdce_serve::Server::new(drill_opts());
    let wal_recovered = post_server.cache_load_report().loaded as u64;
    let mut requests_lost: u64 = 0;
    let mut post = Vec::with_capacity(requests.len());
    for line in &requests {
        match post_server.respond_line(line) {
            Some(response) => post.push(response),
            None => requests_lost += 1,
        }
    }
    let warm_identical_after_crash = requests_lost == 0 && pre == post;
    let _ = std::fs::remove_dir_all(&scratch);

    println!("workload: {corpus_n} small structured programs, cold replays\n");
    println!(
        "WAL off {:.2} ms, on {:.2} ms → overhead {wal_overhead_pct:.2}% (bar <{}%)",
        wal_off_ns as f64 / 1e6,
        wal_on_ns as f64 / 1e6,
        benchjson::MAX_WAL_OVERHEAD_PCT
    );
    println!(
        "crash drill: {wal_appends} appends journaled, {wal_recovered} entries recovered, \
         {requests_lost} requests lost, post-crash bytes identical: {warm_identical_after_crash}"
    );
    RecoverySection {
        workload: format!(
            "{corpus_n} small structured programs; journaled replay, drop without save, \
             recover and replay"
        ),
        requests: corpus_n,
        requests_lost,
        warm_identical_after_crash,
        wal_off_ns,
        wal_on_ns,
        wal_overhead_pct,
        wal_appends,
        wal_recovered,
    }
}

/// Pulls one non-negative counter out of a flat `{"op":"health"}`
/// response line.
fn health_counter(health: &str, field: &str) -> u64 {
    let needle = format!("\"{field}\":");
    let at = health.find(&needle).map(|i| i + needle.len());
    let digits: String = at
        .map(|i| {
            health[i..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect()
        })
        .unwrap_or_default();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("health line lacks `{field}`: {health}"))
}

/// The dense-vs-sparse solver A/B (this PR's headline numbers): the
/// analysis workload — cold dead, faint, and delayability solves over
/// the scaling-sweep programs — under the dense priority worklist
/// versus the def-use-chain sparse solver, interleaved best-of-N.
///
/// Pops compare the strategies' scheduling units (per-node worklist
/// pops vs per-chain propagation tasks), counted over one untimed pass
/// per strategy; the acceptance bars require the sparse solver to pop
/// ≥2× less *and* finish ≥2× faster. A final pass cross-checks every
/// fixpoint bit between the strategies — a sparse win that changes any
/// answer would invalidate the whole section.
fn t6_sparse_chains(quick: bool) -> SparseAb {
    hr("T6: sparse du-chain solver vs dense priority worklist (bars ≥50%)");
    let sizes: &[usize] = if quick {
        &[24, 48, 96]
    } else {
        &[24, 48, 96, 192, 384]
    };
    // Variable counts scale with program size here (one per block, the
    // realistic shape — bigger functions name more locals), so the bit
    // rows widen as the programs grow. This is the regime the sparse
    // formulation targets: the dense solver pays for every
    // (node, variable) pair per sweep no matter how few bits move,
    // while the chain solver only walks the occurrences each variable
    // actually has.
    let progs: Vec<Program> = sizes
        .iter()
        .map(|&n| {
            structured(&GenConfig {
                seed: 29,
                target_blocks: n,
                num_vars: n,
                stmts_per_block: (1, 4),
                out_prob: 0.2,
                loop_prob: 0.3,
                max_depth: 12,
                expr_depth: 2,
                nondet: true,
            })
        })
        .collect();
    let views: Vec<CfgView> = progs.iter().map(CfgView::new).collect();
    // Pattern tables and local predicates feed delayability identically
    // under both strategies; build them once outside the timed region.
    let locals: Vec<(PatternTable, LocalInfo)> = progs
        .iter()
        .map(|p| {
            let table = PatternTable::build(p);
            let local = LocalInfo::compute(p, &table);
            (table, local)
        })
        .collect();
    let run_all = |strategy: SolverStrategy| {
        with_strategy(strategy, || {
            for (i, p) in progs.iter().enumerate() {
                let view = &views[i];
                let (table, local) = &locals[i];
                std::hint::black_box(DeadSolution::compute(p, view));
                std::hint::black_box(FaintSolution::compute(p, view));
                std::hint::black_box(DelayInfo::compute(p, view, table, local));
            }
        })
    };
    // One untimed pass per strategy for the pop counters.
    let pops_of = |strategy: SolverStrategy| {
        let before = pdce_trace::solver_totals();
        run_all(strategy);
        pdce_trace::solver_totals().since(&before)
    };
    let dense_stats = pops_of(SolverStrategy::Priority);
    let sparse_stats = pops_of(SolverStrategy::Sparse);
    let (priority_pops, sparse_pops) = (dense_stats.pops(), sparse_stats.pops());
    let pops_reduction_pct = if priority_pops == 0 {
        0.0
    } else {
        priority_pops.saturating_sub(sparse_pops) as f64 * 100.0 / priority_pops as f64
    };
    // Interleaved best-of-N wall times.
    let time_once = |strategy: SolverStrategy| {
        let t = Instant::now();
        run_all(strategy);
        t.elapsed().as_nanos()
    };
    let reps = if quick { 9 } else { 15 };
    let (mut dense_ns, mut sparse_ns) = (u128::MAX, u128::MAX);
    for _ in 0..reps {
        dense_ns = dense_ns.min(time_once(SolverStrategy::Priority));
        sparse_ns = sparse_ns.min(time_once(SolverStrategy::Sparse));
    }
    let wall_reduction_pct = dense_ns.saturating_sub(sparse_ns) as f64 * 100.0 / dense_ns as f64;
    // Fixpoint cross-check: every bit of every analysis must agree.
    let mut bit_identical = true;
    for (i, p) in progs.iter().enumerate() {
        let view = &views[i];
        let (table, local) = &locals[i];
        let solve = |strategy: SolverStrategy| {
            with_strategy(strategy, || {
                (
                    DeadSolution::compute(p, view),
                    FaintSolution::compute(p, view),
                    DelayInfo::compute(p, view, table, local),
                )
            })
        };
        let (dead_d, faint_d, delay_d) = solve(SolverStrategy::Priority);
        let (dead_s, faint_s, delay_s) = solve(SolverStrategy::Sparse);
        for n in p.node_ids() {
            bit_identical &=
                dead_d.at_entry(n) == dead_s.at_entry(n) && dead_d.at_exit(n) == dead_s.at_exit(n);
            for v in (0..p.num_vars()).map(pdce_ir::Var::from_index) {
                bit_identical &= faint_d.faint_at_entry(n, v) == faint_s.faint_at_entry(n, v);
            }
        }
        bit_identical &= delay_d.n_delayed == delay_s.n_delayed
            && delay_d.x_delayed == delay_s.x_delayed
            && delay_d.n_insert == delay_s.n_insert
            && delay_d.x_insert == delay_s.x_insert;
    }

    println!(
        "workload: dead+faint+delay cold solves over {} structured programs \
         (vars scale with blocks), best of {reps}\n",
        progs.len()
    );
    println!(
        "{:<26} {:>12} {:>12} {:>14}",
        "series", "best (µs)", "pops", "edge visits"
    );
    println!(
        "{:<26} {:>12.1} {:>12} {:>14}",
        "dense priority worklist",
        dense_ns as f64 / 1e3,
        priority_pops,
        "-"
    );
    println!(
        "{:<26} {:>12.1} {:>12} {:>14}",
        "sparse du-chain solver",
        sparse_ns as f64 / 1e3,
        sparse_pops,
        sparse_stats.sparse_edge_visits
    );
    println!(
        "\nsparse pops reduction: {pops_reduction_pct:.1}% (bar ≥{}%); wall-time \
         reduction: {wall_reduction_pct:.1}% (bar ≥{}%)",
        benchjson::MIN_SPARSE_POPS_REDUCTION_PCT,
        benchjson::MIN_SPARSE_WALLTIME_REDUCTION_PCT
    );
    println!("fixpoints bit-identical across strategies: {bit_identical}");
    SparseAb {
        workload: format!(
            "dead+faint+delay cold solves over {} structured programs (targets {:?}, \
             one variable per block), best of {reps}",
            progs.len(),
            sizes
        ),
        priority_ns: dense_ns,
        sparse_ns,
        priority_pops,
        sparse_pops,
        sparse_pops_reduction_pct: pops_reduction_pct,
        sparse_walltime_reduction_pct: wall_reduction_pct,
        bit_identical,
    }
}
