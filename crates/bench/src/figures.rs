//! The figure corpus: every worked example of the paper, with the
//! expected optimized program, shared between the `figures` bench and
//! the `report` binary (the integration tests in `tests/figures.rs`
//! carry the same programs with finer-grained assertions).

use pdce_core::driver::{optimize, PdceConfig};
use pdce_core::elim::Mode;
use pdce_ir::parser::parse;
use pdce_ir::printer::structural_eq;

/// One figure reproduction: source, expected pde/pfe result, mode.
#[derive(Debug, Clone, Copy)]
pub struct Figure {
    /// Paper figure id, e.g. `"F1→F2"`.
    pub id: &'static str,
    /// What the figure demonstrates.
    pub claim: &'static str,
    /// Input program.
    pub source: &'static str,
    /// Expected program after the driver runs.
    pub expected: &'static str,
    /// Which driver the figure exercises.
    pub mode: Mode,
}

/// Returns the full corpus.
pub fn figure_corpus() -> Vec<Figure> {
    vec![
        Figure {
            id: "F1→F2",
            claim: "partially dead assignment sunk and eliminated on one arm",
            source: "prog {
                block s  { goto n1 }
                block n1 { y := a + b; nondet n2 n3 }
                block n2 { y := 4; goto n4 }
                block n3 { out(y); goto n4 }
                block n4 { out(y); goto e }
                block e  { halt }
            }",
            expected: "prog {
                block s  { goto n1 }
                block n1 { nondet n2 n3 }
                block n2 { y := 4; goto n4 }
                block n3 { y := a + b; out(y); goto n4 }
                block n4 { out(y); goto e }
                block e  { halt }
            }",
            mode: Mode::Dead,
        },
        Figure {
            id: "F3→F4",
            claim: "second-order: loop-invariant fragment leaves the loop",
            source: "prog {
                block s { goto h }
                block h { y := a + b; c := y - d; nondet hb after }
                block hb { x := x + 1; goto h }
                block after { nondet n7 n8 }
                block n7 { out(c); goto e }
                block n8 { out(x); goto e }
                block e { halt }
            }",
            expected: "prog {
                block s { goto h }
                block h { nondet hb after }
                block hb { x := x + 1; goto h }
                block after { nondet n7 n8 }
                block n7 { y := a + b; c := y - d; out(c); goto e }
                block n8 { out(x); goto e }
                block e { halt }
            }",
            mode: Mode::Dead,
        },
        Figure {
            id: "F5→F6",
            claim: "sinking across an irreducible region, never into the loop",
            source: "prog {
                block n1 { x := a + b; nondet n2 n3 }
                block n2 { nondet n3 n4 }
                block n3 { nondet n2 n4 }
                block n4 { nondet n5 n6 }
                block n5 { nondet n7 n8 }
                block n6 { x := c + 1; out(x); goto n10 }
                block n7 { y := y + x; goto n9 }
                block n8 { goto n9 }
                block n9 { nondet n5 n10 }
                block n10 { out(y); goto e }
                block e { halt }
            }",
            expected: "prog {
                block n1 { nondet S_n1_n2 S_n1_n3 }
                block S_n1_n2 { goto n2 }
                block S_n1_n3 { goto n3 }
                block n2 { nondet S_n2_n3 S_n2_n4 }
                block n3 { nondet S_n3_n2 S_n3_n4 }
                block S_n2_n3 { goto n3 }
                block S_n3_n2 { goto n2 }
                block S_n2_n4 { goto n4 }
                block S_n3_n4 { goto n4 }
                block n4 { nondet S_n4_n5 n6 }
                block S_n4_n5 { x := a + b; goto n5 }
                block n5 { nondet n7 n8 }
                block n6 { x := c + 1; out(x); goto n10 }
                block n7 { y := y + x; goto n9 }
                block n8 { goto n9 }
                block n9 { nondet S_n9_n5 S_n9_n10 }
                block S_n9_n5 { goto n5 }
                block S_n9_n10 { goto n10 }
                block n10 { out(y); goto e }
                block e { halt }
            }",
            mode: Mode::Dead,
        },
        Figure {
            id: "F7",
            claim: "m-to-n sinking: simultaneous treatment of both occurrences",
            source: "prog {
                block s  { nondet n1 n2 }
                block n1 { a := a + 1; goto n3 }
                block n2 { y := c + d; a := a + 1; goto n3 }
                block n3 { nondet n4 n5 }
                block n4 { out(a); goto e }
                block n5 { out(b); goto e }
                block e  { halt }
            }",
            expected: "prog {
                block s  { nondet n1 n2 }
                block n1 { goto n3 }
                block n2 { goto n3 }
                block n3 { nondet n4 n5 }
                block n4 { a := a + 1; out(a); goto e }
                block n5 { out(b); goto e }
                block e  { halt }
            }",
            mode: Mode::Dead,
        },
        Figure {
            id: "F8",
            claim: "critical edge split enables the elimination",
            source: "prog {
                block s  { goto n1 }
                block n1 { x := a + b; nondet n2 n3 }
                block n3 { x := 5; goto n2 }
                block n2 { out(x); goto e }
                block e  { halt }
            }",
            expected: "prog {
                block s  { goto n1 }
                block n1 { nondet S_n1_n2 n3 }
                block S_n1_n2 { x := a + b; goto n2 }
                block n3 { x := 5; goto n2 }
                block n2 { out(x); goto e }
                block e  { halt }
            }",
            mode: Mode::Dead,
        },
        Figure {
            id: "F9",
            claim: "faint but not dead: removed by pfe only",
            source: "prog {
                block s { goto l }
                block l { x := x + 1; nondet l d }
                block d { goto e }
                block e { halt }
            }",
            expected: "prog {
                block s { goto l }
                block l { nondet S_l_l d }
                block S_l_l { goto l }
                block d { goto e }
                block e { halt }
            }",
            mode: Mode::Faint,
        },
        Figure {
            id: "F10",
            claim: "sinking–sinking: a := c must move before y := a + b can",
            source: "prog {
                block s  { goto n1 }
                block n1 { y := a + b; goto n2 }
                block n2 { a := c; nondet n3 n4 }
                block n3 { y := d; goto n5 }
                block n4 { goto n5 }
                block n5 { x := a + c; goto n6 }
                block n6 { out(x + y); goto e }
                block e  { halt }
            }",
            expected: "prog {
                block s  { goto n1 }
                block n1 { goto n2 }
                block n2 { nondet n3 n4 }
                block n3 { y := d; goto n5 }
                block n4 { y := a + b; goto n5 }
                block n5 { goto n6 }
                block n6 { a := c; x := a + c; out(x + y); goto e }
                block e  { halt }
            }",
            mode: Mode::Dead,
        },
        Figure {
            id: "F11",
            claim: "elimination–sinking: a dead assignment blocks the sink",
            source: "prog {
                block s  { goto n1 }
                block n1 { y := a + b; z := y + 1; z := 2; nondet n4 n5 }
                block n4 { y := 0; out(z); goto e }
                block n5 { out(y); goto e }
                block e  { halt }
            }",
            expected: "prog {
                block s  { goto n1 }
                block n1 { nondet n4 n5 }
                block n4 { z := 2; out(z); goto e }
                block n5 { y := a + b; out(y); goto e }
                block e  { halt }
            }",
            mode: Mode::Dead,
        },
        Figure {
            id: "F12",
            claim: "elimination–elimination: first-order under faintness",
            source: "prog {
                block s  { a := c + 1; nondet n3 n4 }
                block n3 { goto n5 }
                block n4 { y := a + b; goto n5 }
                block n5 { y := c + d; out(y); goto e }
                block e  { halt }
            }",
            expected: "prog {
                block s  { nondet n3 n4 }
                block n3 { goto n5 }
                block n4 { goto n5 }
                block n5 { y := c + d; out(y); goto e }
                block e  { halt }
            }",
            mode: Mode::Faint,
        },
        Figure {
            id: "F13",
            claim: "sinking candidates: only unblocked trailing occurrences move",
            source: "prog {
                block s { y := a + b; a := c; x := 3 * y; nondet n1 n2 }
                block n1 { out(x); goto e }
                block n2 { out(a); goto e }
                block e { halt }
            }",
            expected: "prog {
                block s { nondet n1 n2 }
                block n1 { y := a + b; x := 3 * y; out(x); goto e }
                block n2 { a := c; out(a); goto e }
                block e { halt }
            }",
            mode: Mode::Dead,
        },
    ]
}

/// Runs the driver on the figure's source and checks the expected
/// program. Returns `(reproduced, rounds, eliminated)`.
pub fn verify_figure(figure: &Figure) -> (bool, u64, u64) {
    let mut prog = parse(figure.source).expect("figure source parses");
    let config = match figure.mode {
        Mode::Dead => PdceConfig::pde(),
        Mode::Faint => PdceConfig::pfe(),
    };
    let stats = optimize(&mut prog, &config).expect("driver terminates");
    let expected = parse(figure.expected).expect("figure expectation parses");
    (
        structural_eq(&prog, &expected),
        stats.rounds,
        stats.eliminated_assignments,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_corpus_reproduces() {
        for figure in figure_corpus() {
            let (ok, _, _) = verify_figure(&figure);
            assert!(ok, "figure {} failed to reproduce", figure.id);
        }
    }
}
