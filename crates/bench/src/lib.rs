//! Shared harness for the benchmark suite and the `report` binary.
//!
//! The paper has no measured tables — its "evaluation" is the worked
//! figures plus the Section 6 complexity analysis. This crate regenerates
//! both: [`figures`] holds the figure corpus with expected outputs (used
//! by the `figures` bench and the report), and [`sweep`] provides the
//! scaling experiments with log–log slope fitting for the C1–C6 claims
//! tracked in `EXPERIMENTS.md`.

pub mod benchjson;
pub mod figures;
pub mod sweep;
pub mod timeit;

pub use benchjson::{BenchSummary, FigureRow, SweepRow, TracingAb};
pub use figures::{figure_corpus, verify_figure, Figure};
pub use sweep::{fit_loglog_slope, measure, Measurement};
