//! Scaling sweeps and slope fitting for the Section 6 complexity
//! experiments.

use std::time::Instant;

use pdce_core::driver::{optimize, PdceConfig, PdceStats};
use pdce_ir::Program;

/// One measured point of a sweep.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Nominal problem size (whatever the sweep scales).
    pub n: usize,
    /// Blocks of the input program.
    pub blocks: usize,
    /// Statements of the input program.
    pub stmts: usize,
    /// Wall time of the optimization, in nanoseconds (best of `reps`).
    pub time_ns: u128,
    /// Driver statistics.
    pub stats: PdceStats,
}

/// Optimizes (a clone of) `prog` `reps` times, keeping the best time.
pub fn measure(n: usize, prog: &Program, config: &PdceConfig, reps: usize) -> Measurement {
    let blocks = prog.num_blocks();
    let stmts = prog.num_stmts();
    let mut best: Option<(u128, PdceStats)> = None;
    for _ in 0..reps.max(1) {
        let mut clone = prog.clone();
        let start = Instant::now();
        let stats = optimize(&mut clone, config).expect("driver terminates");
        let elapsed = start.elapsed().as_nanos();
        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
            best = Some((elapsed, stats));
        }
    }
    let (time_ns, stats) = best.expect("reps >= 1");
    Measurement {
        n,
        blocks,
        stmts,
        time_ns,
        stats,
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the growth exponent
/// of a power law. Requires at least two distinct positive points.
pub fn fit_loglog_slope(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = logs.len() as f64;
    assert!(n >= 2.0, "need at least two positive points");
    let sx: f64 = logs.iter().map(|(x, _)| x).sum();
    let sy: f64 = logs.iter().map(|(_, y)| y).sum();
    let sxx: f64 = logs.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = logs.iter().map(|(x, y)| x * y).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > f64::EPSILON, "x values must differ");
    (n * sxy - sx * sy) / denom
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_progen::{structured, GenConfig};

    #[test]
    fn slope_of_exact_power_laws() {
        let quad: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((fit_loglog_slope(&quad) - 2.0).abs() < 1e-9);
        let lin: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((fit_loglog_slope(&lin) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn slope_needs_points() {
        fit_loglog_slope(&[(1.0, 1.0)]);
    }

    #[test]
    fn measure_reports_consistent_sizes() {
        let p = structured(&GenConfig {
            seed: 1,
            nondet: true,
            ..GenConfig::default()
        });
        let m = measure(7, &p, &PdceConfig::pde(), 2);
        assert_eq!(m.n, 7);
        assert_eq!(m.blocks, p.num_blocks());
        assert_eq!(m.stmts, p.num_stmts());
        assert!(m.time_ns > 0);
    }
}
