//! Minimal self-contained timing harness for the `benches/` targets.
//!
//! The workspace builds fully offline, so the benches cannot use an
//! external framework; this module provides the small slice actually
//! needed — warmup, adaptive iteration counts, and a median/min/max
//! report — behind a one-call API:
//!
//! ```no_run
//! # fn expensive() {}
//! pdce_bench::timeit::report("group/case", || expensive());
//! ```

use std::time::{Duration, Instant};

/// One benchmark's measurements, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Timing {
    /// `group/case` label.
    pub label: String,
    /// Measured iterations (after warmup).
    pub iters: usize,
    /// Median time per iteration.
    pub median_ns: u128,
    /// Fastest iteration.
    pub min_ns: u128,
    /// Slowest iteration.
    pub max_ns: u128,
}

/// Runs `f` repeatedly and measures it: 2 warmup iterations, then
/// samples until ~200 ms have elapsed (at least 5, at most 101
/// iterations). Deterministic in iteration structure, adaptive in count.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> Timing {
    for _ in 0..2 {
        std::hint::black_box(f());
    }
    let mut samples = Vec::new();
    let started = Instant::now();
    while samples.len() < 5
        || (samples.len() < 101 && started.elapsed() < Duration::from_millis(200))
    {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed().as_nanos());
    }
    samples.sort_unstable();
    Timing {
        label: label.to_string(),
        iters: samples.len(),
        median_ns: samples[samples.len() / 2],
        min_ns: samples[0],
        max_ns: samples[samples.len() - 1],
    }
}

fn human(ns: u128) -> String {
    format!("{:.2?}", Duration::from_nanos(ns as u64))
}

/// [`bench`] plus an aligned one-line summary on stdout.
pub fn report<R>(label: &str, f: impl FnMut() -> R) -> Timing {
    let t = bench(label, f);
    println!(
        "{:<44} {:>10}/iter  (min {:>9}, max {:>9}, {:>3} iters)",
        t.label,
        human(t.median_ns),
        human(t.min_ns),
        human(t.max_ns),
        t.iters
    );
    t
}

/// Prints a section header for a group of related benchmarks.
pub fn group(title: &str) {
    println!("\n--- {title} ---");
}
