//! The `better` relation of Definition 3.6.
//!
//! `G' ⊑ G''` ("G' is better than G''") iff for every path `p ∈ P[s, e]`
//! and every assignment pattern `α`, the number of occurrences of `α` on
//! `p` in `G'` is at most that in `G''`. Both programs must share the
//! branching structure (optimization preserves it), so paths are compared
//! as node sequences translated by block name.
//!
//! For acyclic graphs the check is exact (every path is enumerated); for
//! cyclic graphs it samples seeded random walks. Theorem 5.2 asserts
//! `pde(G) ⊑ G''` for every `G''` in the PDE universe — in particular
//! `pde(G) ⊑ G` itself, which is the "never impairs an execution"
//! guarantee the tests verify.

use pdce_ir::edgesplit::split_critical_edges;
use pdce_ir::paths::{enumerate_bounded_paths, enumerate_paths, sample_paths, translate_path};
use pdce_ir::pattern::{counts_dominated, path_pattern_counts};
use pdce_ir::{PatternKey, Program};

/// Options for dominance checking.
#[derive(Debug, Clone)]
pub struct BetterOptions {
    /// Maximum number of enumerated paths before falling back to
    /// sampling.
    pub max_paths: usize,
    /// Number of sampled walks for cyclic graphs.
    pub samples: usize,
    /// Seed for sampling.
    pub seed: u64,
    /// Walk length cut-off for sampling.
    pub max_len: usize,
    /// For cyclic graphs, first try exact enumeration of all paths with
    /// at most this many visits per node (covering every execution with
    /// `visit_cap - 1` loop re-entries) before falling back to sampling.
    /// `0` disables the bounded pass.
    pub visit_cap: usize,
}

impl Default for BetterOptions {
    fn default() -> BetterOptions {
        BetterOptions {
            max_paths: 4096,
            samples: 256,
            seed: 0x5eed,
            max_len: 256,
            visit_cap: 3,
        }
    }
}

/// One path on which dominance failed.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The path, as block names of the reference program.
    pub path: Vec<String>,
    /// Pattern counts of the candidate on this path.
    pub candidate_counts: Vec<(PatternKey, u64)>,
    /// Pattern counts of the reference on this path.
    pub reference_counts: Vec<(PatternKey, u64)>,
}

/// Outcome of a dominance check.
#[derive(Debug, Clone)]
pub struct DominanceReport {
    /// Number of paths compared.
    pub paths_checked: usize,
    /// Whether the check covered *all* paths (acyclic enumeration).
    pub exact: bool,
    /// Paths on which the candidate was worse, empty when dominated.
    pub violations: Vec<Violation>,
}

impl DominanceReport {
    /// Whether the candidate dominated the reference on every checked
    /// path.
    pub fn holds(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks `candidate ⊑ reference` on paths of `reference`.
///
/// Both programs must contain the same blocks (by name) connected by the
/// same edges; paths are generated on `reference` and translated by name.
///
/// # Panics
///
/// Panics if a reference path has no counterpart in the candidate, which
/// means the branching structures differ.
pub fn is_better(
    candidate: &Program,
    reference: &Program,
    opts: &BetterOptions,
) -> DominanceReport {
    let (paths, exact) = match enumerate_paths(reference, opts.max_paths) {
        Some(paths) => (paths, true),
        None => {
            // Cyclic: try exact-up-to-bound enumeration first.
            let bounded = if opts.visit_cap > 0 {
                enumerate_bounded_paths(reference, opts.visit_cap, opts.max_paths)
            } else {
                None
            };
            match bounded {
                Some(paths) if !paths.is_empty() => (paths, false),
                _ => (
                    sample_paths(reference, opts.seed, opts.samples, opts.max_len),
                    false,
                ),
            }
        }
    };
    let mut violations = Vec::new();
    for path in &paths {
        let translated = translate_path(reference, candidate, path)
            .expect("candidate and reference must share the branching structure");
        let cand = path_pattern_counts(candidate, &translated);
        let refc = path_pattern_counts(reference, path);
        if !counts_dominated(&cand, &refc) {
            violations.push(Violation {
                path: path
                    .iter()
                    .map(|&n| reference.block(n).name.clone())
                    .collect(),
                candidate_counts: sorted(cand),
                reference_counts: sorted(refc),
            });
        }
    }
    DominanceReport {
        paths_checked: paths.len(),
        exact,
        violations,
    }
}

fn sorted(m: std::collections::HashMap<PatternKey, u64>) -> Vec<(PatternKey, u64)> {
    let mut v: Vec<(PatternKey, u64)> = m.into_iter().collect();
    v.sort();
    v
}

/// Checks that `optimized` (the output of the driver on `original`) is
/// better than `original` in the sense of Definition 3.6.
///
/// Drivers with sinking enabled split critical edges, so the reference
/// is split the same way before comparing (synthetic blocks are empty
/// and do not affect counts); elimination-only drivers leave the graph
/// untouched, in which case the unsplit original is the right reference.
/// The choice is made by inspecting the candidate's block set.
pub fn check_improvement(
    original: &Program,
    optimized: &Program,
    opts: &BetterOptions,
) -> DominanceReport {
    let mut split = original.clone();
    split_critical_edges(&mut split);
    let candidate_has_all_synthetic = split
        .node_ids()
        .all(|n| optimized.block_by_name(&split.block(n).name).is_some());
    if candidate_has_all_synthetic {
        is_better(optimized, &split, opts)
    } else {
        is_better(optimized, original, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{optimize, PdceConfig};
    use pdce_ir::parser::parse;

    const FIG1: &str = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { out(y); goto n4 }
        block n3 { y := 4; goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";

    #[test]
    fn pde_output_dominates_input_exactly() {
        let original = parse(FIG1).unwrap();
        let mut optimized = original.clone();
        optimize(&mut optimized, &PdceConfig::pde()).unwrap();
        let report = check_improvement(&original, &optimized, &BetterOptions::default());
        assert!(report.exact);
        assert_eq!(report.paths_checked, 2);
        assert!(report.holds(), "violations: {:#?}", report.violations);
    }

    #[test]
    fn reflexivity() {
        let p = parse(FIG1).unwrap();
        let report = is_better(&p, &p, &BetterOptions::default());
        assert!(report.holds());
    }

    #[test]
    fn detects_regression() {
        let better_prog = parse("prog { block s { out(y); goto e } block e { halt } }").unwrap();
        let worse_prog =
            parse("prog { block s { y := a + b; out(y); goto e } block e { halt } }").unwrap();
        // worse ⊑ better fails…
        let report = is_better(&worse_prog, &better_prog, &BetterOptions::default());
        assert!(!report.holds());
        assert_eq!(report.violations.len(), 1);
        // …while better ⊑ worse holds.
        assert!(is_better(&better_prog, &worse_prog, &BetterOptions::default()).holds());
    }

    #[test]
    fn cyclic_graphs_fall_back_to_sampling() {
        let original = parse(
            "prog {
               block s { goto h }
               block h { x := a + b; nondet h after }
               block after { out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let mut optimized = original.clone();
        optimize(&mut optimized, &PdceConfig::pde()).unwrap();
        let report = check_improvement(&original, &optimized, &BetterOptions::default());
        assert!(!report.exact);
        assert!(report.paths_checked > 0);
        assert!(report.holds(), "violations: {:#?}", report.violations);
    }

    #[test]
    fn incomparable_programs_fail_both_ways() {
        let p1 = parse("prog { block s { x := 1; goto e } block e { halt } }").unwrap();
        let p2 = parse("prog { block s { y := 2; goto e } block e { halt } }").unwrap();
        assert!(!is_better(&p1, &p2, &BetterOptions::default()).holds());
        assert!(!is_better(&p2, &p1, &BetterOptions::default()).holds());
    }
}
