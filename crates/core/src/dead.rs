//! Dead-variable analysis (Table 1 of the paper).
//!
//! A variable `x` is *dead* at a program point if on every path from
//! there to the end node every right-hand-side occurrence of `x` is
//! preceded by a modification of `x`. The paper's equations, per
//! instruction `ι`:
//!
//! ```text
//! N-DEAD_ι = ¬USED_ι ∧ (X-DEAD_ι ∨ MOD_ι)
//! X-DEAD_ι = ∧_{ι' ∈ succ(ι)} N-DEAD_ι'
//! ```
//!
//! This is a backward all-paths bit-vector problem (greatest fixpoint,
//! everything dead at the end node). Each instruction's transfer is a
//! gen/kill pair (`gen = MOD ∖ USED`, `kill = USED`), so the solver can
//! run block-at-a-time on composed transfers; per-instruction values are
//! recovered by a linear backward walk inside a block.

use pdce_dfa::{solve, solve_seeded, BitProblem, BitVec, Direction, GenKill, Meet, Solution};
use pdce_ir::{CfgView, NodeId, Program, Stmt, Terminator, Var};

/// Result of the dead-variable analysis.
#[derive(Debug, Clone)]
pub struct DeadSolution {
    width: usize,
    solution: Solution,
    /// The gen/kill system the fixpoint solves, kept so a later
    /// [`DeadSolution::compute_seeded`] can diff it against the new one
    /// (`None` for the per-instruction ablation, which then seeds cold).
    problem: Option<BitProblem>,
}

/// The dead-variable equations as a backward all-paths [`BitProblem`]
/// with per-block composed transfers.
fn dead_problem(prog: &Program, width: usize) -> BitProblem {
    let transfer: Vec<GenKill> = prog
        .node_ids()
        .map(|n| {
            let block = prog.block(n);
            let stmts: Vec<GenKill> = block
                .stmts
                .iter()
                .map(|s| stmt_transfer(prog, s, width))
                .collect();
            let term = term_transfer(prog, &block.term, width);
            GenKill::compose_backward(width, stmts.iter().chain(std::iter::once(&term)))
        })
        .collect();
    BitProblem {
        direction: Direction::Backward,
        meet: Meet::Intersection,
        width,
        transfer,
        // Everything is dead at the end of the program.
        boundary: BitVec::ones(width),
    }
}

/// Transfer of a single statement for deadness.
pub(crate) fn stmt_transfer(prog: &Program, stmt: &Stmt, width: usize) -> GenKill {
    let mut gen = BitVec::zeros(width);
    let mut kill = BitVec::zeros(width);
    if let Some(t) = stmt.used_term() {
        for &v in prog.terms().vars_of(t) {
            kill.set(v.index(), true);
        }
    }
    if let Some(m) = stmt.modified() {
        // gen = MOD ∖ USED: `x := x + 1` keeps x live.
        if !stmt.uses(prog.terms(), m) {
            gen.set(m.index(), true);
        }
    }
    GenKill::new(gen, kill)
}

/// Transfer of a terminator: a conditional branch is a relevant use of
/// its condition variables (paper footnote 2).
pub(crate) fn term_transfer(prog: &Program, term: &Terminator, width: usize) -> GenKill {
    let mut kill = BitVec::zeros(width);
    if let Some(c) = term.used_term() {
        for &v in prog.terms().vars_of(c) {
            kill.set(v.index(), true);
        }
    }
    GenKill::new(BitVec::zeros(width), kill)
}

/// Applies a statement's deadness transfer to `v` in place, touching
/// only the bits of the variables the statement mentions — no gen/kill
/// vectors are materialized. Gen (`MOD ∖ USED`) and kill (`USED`) are
/// disjoint by construction, so the write order is irrelevant.
pub(crate) fn apply_stmt_backward(prog: &Program, stmt: &Stmt, v: &mut BitVec) {
    if let Some(t) = stmt.used_term() {
        for &u in prog.terms().vars_of(t) {
            v.set(u.index(), false);
        }
    }
    if let Some(m) = stmt.modified() {
        if !stmt.uses(prog.terms(), m) {
            v.set(m.index(), true);
        }
    }
}

/// In-place counterpart of [`term_transfer`] (kill-only).
pub(crate) fn apply_term_backward(prog: &Program, term: &Terminator, v: &mut BitVec) {
    if let Some(c) = term.used_term() {
        for &u in prog.terms().vars_of(c) {
            v.set(u.index(), false);
        }
    }
}

impl DeadSolution {
    /// Runs the analysis over `prog`.
    pub fn compute(prog: &Program, view: &CfgView) -> DeadSolution {
        let width = prog.num_vars();
        let problem = dead_problem(prog, width);
        let solution = solve(view, &problem);
        DeadSolution {
            width,
            solution,
            problem: Some(problem),
        }
    }

    /// Warm-start re-analysis seeded from a previous solution.
    ///
    /// `prev` must come from [`DeadSolution::compute`] (or a previous
    /// seeded run) over the same CFG, and `dirty` must cover every block
    /// whose statement list changed since. Falls back to a cold solve
    /// internally when the shapes do not line up (the variable universe
    /// or the node count moved) or when `prev` carries no gen/kill
    /// system to diff against (the per-instruction ablation).
    /// Bit-identical to a cold solve — the differential oracle checks
    /// this on generated CFGs.
    pub fn compute_seeded(
        prog: &Program,
        view: &CfgView,
        prev: &DeadSolution,
        dirty: &[NodeId],
    ) -> DeadSolution {
        let width = prog.num_vars();
        let seedable = width == prev.width && prev.solution.entry.len() == view.num_nodes();
        let Some(prev_problem) = prev.problem.as_ref().filter(|_| seedable) else {
            return DeadSolution::compute(prog, view);
        };
        let problem = dead_problem(prog, width);
        let solution = solve_seeded(view, &problem, prev_problem, &prev.solution, dirty);
        DeadSolution {
            width,
            solution,
            problem: Some(problem),
        }
    }

    /// Runs the analysis *without* pre-composing block transfers: every
    /// solver evaluation applies the instruction transfers one by one.
    ///
    /// Semantically identical to [`DeadSolution::compute`] (tested), but
    /// each evaluation costs `O(block length)` bit-vector operations
    /// instead of one — the ablation for the "block summaries" design
    /// decision of DESIGN.md, benchmarked in `pdce-bench`. The walk
    /// applies the sparse in-place transfers on one rolling buffer
    /// instead of materializing a gen/kill pair per statement.
    pub fn compute_per_instruction(prog: &Program, view: &CfgView) -> DeadSolution {
        let width = prog.num_vars();
        let solution = pdce_dfa::solve_fn(
            view,
            Direction::Backward,
            Meet::Intersection,
            width,
            &BitVec::ones(width),
            |node, exit_val, out| {
                let block = prog.block(node);
                out.copy_from(exit_val);
                apply_term_backward(prog, &block.term, out);
                for stmt in block.stmts.iter().rev() {
                    apply_stmt_backward(prog, stmt, out);
                }
            },
        );
        DeadSolution {
            width,
            solution,
            problem: None,
        }
    }

    /// Deadness vector at the entry of block `n`.
    pub fn at_entry(&self, n: NodeId) -> &BitVec {
        self.solution.at_entry(n)
    }

    /// Deadness vector after the terminator of block `n` (the meet over
    /// successor entries).
    pub fn at_exit(&self, n: NodeId) -> &BitVec {
        self.solution.at_exit(n)
    }

    /// Visits the deadness vector *immediately after* each statement of
    /// block `n` (`X-DEAD` of every statement instruction), calling
    /// `f(k, after_k)` in **reverse** statement order (`k` descending).
    ///
    /// One rolling buffer is reused across the walk and the sparse
    /// in-place transfers touch only the bits each statement mentions,
    /// so the whole visit costs a single vector clone — unlike
    /// [`DeadSolution::after_each_stmt`], which must materialize every
    /// intermediate vector. The borrowed vector is overwritten after
    /// `f` returns; clone it to keep it.
    pub fn for_each_stmt_after(
        &self,
        prog: &Program,
        n: NodeId,
        mut f: impl FnMut(usize, &BitVec),
    ) {
        let block = prog.block(n);
        let mut current = self.at_exit(n).clone();
        apply_term_backward(prog, &block.term, &mut current);
        for (k, stmt) in block.stmts.iter().enumerate().rev() {
            f(k, &current);
            apply_stmt_backward(prog, stmt, &mut current);
        }
        debug_assert_eq!(&current, self.at_entry(n));
        // One clone plus one sparse in-place transfer per instruction.
        pdce_trace::record_solver(pdce_trace::SolverStats {
            word_ops: self.width.div_ceil(64) as u64 + block.stmts.len() as u64 + 1,
            ..pdce_trace::SolverStats::ZERO
        });
    }

    /// Deadness vectors *immediately after* each statement of block `n`
    /// (`X-DEAD` of every statement instruction, index-aligned with
    /// `block.stmts`). Materializes one vector per statement; prefer
    /// [`DeadSolution::for_each_stmt_after`] in hot paths.
    pub fn after_each_stmt(&self, prog: &Program, n: NodeId) -> Vec<BitVec> {
        let block = prog.block(n);
        let mut out = vec![BitVec::zeros(0); block.stmts.len()];
        self.for_each_stmt_after(prog, n, |k, after| out[k] = after.clone());
        // The materializing clones, on top of the rolling walk.
        pdce_trace::record_solver(pdce_trace::SolverStats {
            word_ops: self.width.div_ceil(64) as u64 * block.stmts.len() as u64,
            ..pdce_trace::SolverStats::ZERO
        });
        out
    }

    /// Whether `v` is dead immediately after statement `k` of block `n`.
    pub fn dead_after(&self, prog: &Program, n: NodeId, k: usize, v: Var) -> bool {
        let mut dead = false;
        self.for_each_stmt_after(prog, n, |j, after| {
            if j == k {
                dead = after.get(v.index());
            }
        });
        dead
    }

    /// Number of node evaluations the solver performed.
    pub fn evaluations(&self) -> u64 {
        self.solution.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn solve_src(src: &str) -> (pdce_ir::Program, DeadSolution) {
        let p = parse(src).unwrap();
        let view = CfgView::new(&p);
        let d = DeadSolution::compute(&p, &view);
        (p, d)
    }

    fn var(p: &pdce_ir::Program, name: &str) -> Var {
        p.vars().lookup(name).unwrap()
    }

    #[test]
    fn unused_assignment_is_dead() {
        let (p, d) =
            solve_src("prog { block s { x := 1; y := 2; out(y); goto e } block e { halt } }");
        let s = p.entry();
        let after = d.after_each_stmt(&p, s);
        assert!(after[0].get(var(&p, "x").index()), "x dead after x := 1");
        assert!(!after[1].get(var(&p, "y").index()), "y live before out(y)");
        assert!(after[2].get(var(&p, "y").index()), "y dead after out(y)");
    }

    #[test]
    fn redefinition_makes_earlier_value_dead() {
        let (p, d) =
            solve_src("prog { block s { y := 1; y := 2; out(y); goto e } block e { halt } }");
        let after = d.after_each_stmt(&p, p.entry());
        assert!(after[0].get(var(&p, "y").index()), "first y := 1 is dead");
        assert!(!after[1].get(var(&p, "y").index()));
    }

    #[test]
    fn partially_dead_is_not_dead() {
        // Figure 1: y := a+b is live on the right branch (out(y) before
        // redefinition) and dead on the left: hence NOT dead overall.
        let (p, d) = solve_src(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { y := 4; goto n4 }
               block n3 { out(y); goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        let n1 = p.block_by_name("n1").unwrap();
        assert!(!d.dead_after(&p, n1, 0, var(&p, "y")));
    }

    #[test]
    fn self_increment_in_loop_is_not_dead_but_unused_after() {
        // Figure 9: x := x + 1 in a loop, never observed. x is used by
        // its own right-hand side on the loop path, so it is NOT dead
        // (it is faint — see faint.rs).
        let (p, d) = solve_src(
            "prog {
               block s { goto l }
               block l { x := x + 1; nondet l x2 }
               block x2 { goto e }
               block e { halt }
             }",
        );
        let l = p.block_by_name("l").unwrap();
        assert!(!d.dead_after(&p, l, 0, var(&p, "x")));
    }

    #[test]
    fn branch_condition_keeps_variable_live() {
        let (p, d) = solve_src(
            "prog {
               block s { x := a; if x < 3 then t else e }
               block t { goto e }
               block e { halt }
             }",
        );
        assert!(!d.dead_after(&p, p.entry(), 0, var(&p, "x")));
    }

    #[test]
    fn everything_dead_at_program_end() {
        let (p, d) = solve_src("prog { block s { x := 1; goto e } block e { halt } }");
        assert_eq!(d.at_exit(p.exit()).count_ones(), p.num_vars());
        assert!(d.dead_after(&p, p.entry(), 0, var(&p, "x")));
    }

    #[test]
    fn loop_carried_use_keeps_live() {
        // y is used by out(y) after the loop on every exit path, so the
        // assignment inside the loop is live.
        let (p, d) = solve_src(
            "prog {
               block s { goto h }
               block h { y := y + 1; nondet h x2 }
               block x2 { out(y); goto e }
               block e { halt }
             }",
        );
        let h = p.block_by_name("h").unwrap();
        assert!(!d.dead_after(&p, h, 0, var(&p, "y")));
    }

    #[test]
    fn per_instruction_variant_agrees_with_summarized() {
        let p = parse(
            "prog {
               block s  { x := a + b; y := x; nondet n1 n2 }
               block n1 { out(y); goto n3 }
               block n2 { y := 7; x := y; goto n3 }
               block n3 { out(y); nondet s2 e }
               block s2 { goto n3 }
               block e  { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let a = DeadSolution::compute(&p, &view);
        let b = DeadSolution::compute_per_instruction(&p, &view);
        for n in p.node_ids() {
            assert_eq!(a.at_entry(n), b.at_entry(n), "{}", p.block(n).name);
            assert_eq!(a.at_exit(n), b.at_exit(n), "{}", p.block(n).name);
        }
    }

    #[test]
    fn seeded_recompute_matches_cold_after_stmt_edit() {
        let mut p = parse(
            "prog {
               block s  { x := a + b; y := x; nondet n1 n2 }
               block n1 { out(y); goto n3 }
               block n2 { y := 7; x := y; goto n3 }
               block n3 { out(y); nondet s2 e }
               block s2 { goto n3 }
               block e  { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let prev = DeadSolution::compute(&p, &view);
        // Drop `y := 7; x := y` from n2: y's loop-carried liveness
        // changes upstream of the edit.
        let n2 = p.block_by_name("n2").unwrap();
        p.stmts_mut(n2).clear();
        let cold = DeadSolution::compute(&p, &view);
        let warm = DeadSolution::compute_seeded(&p, &view, &prev, &[n2]);
        for n in p.node_ids() {
            assert_eq!(cold.at_entry(n), warm.at_entry(n), "{}", p.block(n).name);
            assert_eq!(cold.at_exit(n), warm.at_exit(n), "{}", p.block(n).name);
        }
    }

    #[test]
    fn rolling_visitor_matches_materialized_and_costs_fewer_word_ops() {
        // A block long enough that the per-statement clones dominate.
        let body: String = (0..32).map(|i| format!("x{i} := a + b; ")).collect();
        let (p, d) = solve_src(&format!(
            "prog {{ block s {{ {body}out(a); goto e }} block e {{ halt }} }}"
        ));
        let s = p.entry();
        let before = pdce_trace::solver_totals();
        let materialized = d.after_each_stmt(&p, s);
        let cost_materialized = pdce_trace::solver_totals().since(&before).word_ops;
        let before = pdce_trace::solver_totals();
        let mut visited = 0usize;
        d.for_each_stmt_after(&p, s, |k, after| {
            assert_eq!(after, &materialized[k]);
            visited += 1;
        });
        let cost_rolling = pdce_trace::solver_totals().since(&before).word_ops;
        assert_eq!(visited, materialized.len());
        assert!(
            cost_rolling < cost_materialized,
            "rolling walk ({cost_rolling} word ops) must beat \
             materializing ({cost_materialized} word ops)"
        );
    }

    #[test]
    fn table1_gen_kill_shapes() {
        let p = parse("prog { block s { x := x + y; goto e } block e { halt } }").unwrap();
        let t = stmt_transfer(&p, &p.block(p.entry()).stmts[0], p.num_vars());
        // x := x + y: USED = {x, y} (kill), MOD ∖ USED = ∅ (gen).
        assert!(t.gen.none());
        assert_eq!(t.kill.count_ones(), 2);
    }
}
