//! Dead-variable analysis (Table 1 of the paper).
//!
//! A variable `x` is *dead* at a program point if on every path from
//! there to the end node every right-hand-side occurrence of `x` is
//! preceded by a modification of `x`. The paper's equations, per
//! instruction `ι`:
//!
//! ```text
//! N-DEAD_ι = ¬USED_ι ∧ (X-DEAD_ι ∨ MOD_ι)
//! X-DEAD_ι = ∧_{ι' ∈ succ(ι)} N-DEAD_ι'
//! ```
//!
//! This is a backward all-paths bit-vector problem (greatest fixpoint,
//! everything dead at the end node). Each instruction's transfer is a
//! gen/kill pair (`gen = MOD ∖ USED`, `kill = USED`), so the solver can
//! run block-at-a-time on composed transfers; per-instruction values are
//! recovered by a linear backward walk inside a block.

use pdce_dfa::{solve, BitProblem, BitVec, Direction, GenKill, Meet, Solution};
use pdce_ir::{CfgView, NodeId, Program, Stmt, Terminator, Var};

/// Result of the dead-variable analysis.
#[derive(Debug, Clone)]
pub struct DeadSolution {
    width: usize,
    solution: Solution,
}

/// Transfer of a single statement for deadness.
pub(crate) fn stmt_transfer(prog: &Program, stmt: &Stmt, width: usize) -> GenKill {
    let mut gen = BitVec::zeros(width);
    let mut kill = BitVec::zeros(width);
    if let Some(t) = stmt.used_term() {
        for &v in prog.terms().vars_of(t) {
            kill.set(v.index(), true);
        }
    }
    if let Some(m) = stmt.modified() {
        // gen = MOD ∖ USED: `x := x + 1` keeps x live.
        if !stmt.uses(prog.terms(), m) {
            gen.set(m.index(), true);
        }
    }
    GenKill::new(gen, kill)
}

/// Transfer of a terminator: a conditional branch is a relevant use of
/// its condition variables (paper footnote 2).
pub(crate) fn term_transfer(prog: &Program, term: &Terminator, width: usize) -> GenKill {
    let mut kill = BitVec::zeros(width);
    if let Some(c) = term.used_term() {
        for &v in prog.terms().vars_of(c) {
            kill.set(v.index(), true);
        }
    }
    GenKill::new(BitVec::zeros(width), kill)
}

impl DeadSolution {
    /// Runs the analysis over `prog`.
    pub fn compute(prog: &Program, view: &CfgView) -> DeadSolution {
        let width = prog.num_vars();
        let transfer: Vec<GenKill> = prog
            .node_ids()
            .map(|n| {
                let block = prog.block(n);
                let stmts: Vec<GenKill> = block
                    .stmts
                    .iter()
                    .map(|s| stmt_transfer(prog, s, width))
                    .collect();
                let term = term_transfer(prog, &block.term, width);
                GenKill::compose_backward(width, stmts.iter().chain(std::iter::once(&term)))
            })
            .collect();
        let problem = BitProblem {
            direction: Direction::Backward,
            meet: Meet::Intersection,
            width,
            transfer,
            // Everything is dead at the end of the program.
            boundary: BitVec::ones(width),
        };
        let solution = solve(view, &problem);
        DeadSolution { width, solution }
    }

    /// Runs the analysis *without* pre-composing block transfers: every
    /// solver evaluation applies the instruction transfers one by one.
    ///
    /// Semantically identical to [`DeadSolution::compute`] (tested), but
    /// each evaluation costs `O(block length)` bit-vector operations
    /// instead of one — the ablation for the "block summaries" design
    /// decision of DESIGN.md, benchmarked in `pdce-bench`.
    pub fn compute_per_instruction(prog: &Program, view: &CfgView) -> DeadSolution {
        let width = prog.num_vars();
        let solution = pdce_dfa::solve_fn(
            view,
            Direction::Backward,
            Meet::Intersection,
            width,
            &BitVec::ones(width),
            |node, exit_val| {
                let block = prog.block(node);
                let mut current = term_transfer(prog, &block.term, width).apply(exit_val);
                for stmt in block.stmts.iter().rev() {
                    current = stmt_transfer(prog, stmt, width).apply(&current);
                }
                current
            },
        );
        DeadSolution { width, solution }
    }

    /// Deadness vector at the entry of block `n`.
    pub fn at_entry(&self, n: NodeId) -> &BitVec {
        self.solution.at_entry(n)
    }

    /// Deadness vector after the terminator of block `n` (the meet over
    /// successor entries).
    pub fn at_exit(&self, n: NodeId) -> &BitVec {
        self.solution.at_exit(n)
    }

    /// Deadness vectors *immediately after* each statement of block `n`
    /// (`X-DEAD` of every statement instruction, index-aligned with
    /// `block.stmts`).
    pub fn after_each_stmt(&self, prog: &Program, n: NodeId) -> Vec<BitVec> {
        let block = prog.block(n);
        let mut current = term_transfer(prog, &block.term, self.width).apply(self.at_exit(n));
        let mut out = vec![BitVec::zeros(0); block.stmts.len()];
        for (k, stmt) in block.stmts.iter().enumerate().rev() {
            out[k] = current.clone();
            current = stmt_transfer(prog, stmt, self.width).apply(&current);
        }
        debug_assert_eq!(&current, self.at_entry(n));
        out
    }

    /// Whether `v` is dead immediately after statement `k` of block `n`.
    pub fn dead_after(&self, prog: &Program, n: NodeId, k: usize, v: Var) -> bool {
        self.after_each_stmt(prog, n)[k].get(v.index())
    }

    /// Number of node evaluations the solver performed.
    pub fn evaluations(&self) -> u64 {
        self.solution.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn solve_src(src: &str) -> (pdce_ir::Program, DeadSolution) {
        let p = parse(src).unwrap();
        let view = CfgView::new(&p);
        let d = DeadSolution::compute(&p, &view);
        (p, d)
    }

    fn var(p: &pdce_ir::Program, name: &str) -> Var {
        p.vars().lookup(name).unwrap()
    }

    #[test]
    fn unused_assignment_is_dead() {
        let (p, d) =
            solve_src("prog { block s { x := 1; y := 2; out(y); goto e } block e { halt } }");
        let s = p.entry();
        let after = d.after_each_stmt(&p, s);
        assert!(after[0].get(var(&p, "x").index()), "x dead after x := 1");
        assert!(!after[1].get(var(&p, "y").index()), "y live before out(y)");
        assert!(after[2].get(var(&p, "y").index()), "y dead after out(y)");
    }

    #[test]
    fn redefinition_makes_earlier_value_dead() {
        let (p, d) =
            solve_src("prog { block s { y := 1; y := 2; out(y); goto e } block e { halt } }");
        let after = d.after_each_stmt(&p, p.entry());
        assert!(after[0].get(var(&p, "y").index()), "first y := 1 is dead");
        assert!(!after[1].get(var(&p, "y").index()));
    }

    #[test]
    fn partially_dead_is_not_dead() {
        // Figure 1: y := a+b is live on the right branch (out(y) before
        // redefinition) and dead on the left: hence NOT dead overall.
        let (p, d) = solve_src(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { y := 4; goto n4 }
               block n3 { out(y); goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        let n1 = p.block_by_name("n1").unwrap();
        assert!(!d.dead_after(&p, n1, 0, var(&p, "y")));
    }

    #[test]
    fn self_increment_in_loop_is_not_dead_but_unused_after() {
        // Figure 9: x := x + 1 in a loop, never observed. x is used by
        // its own right-hand side on the loop path, so it is NOT dead
        // (it is faint — see faint.rs).
        let (p, d) = solve_src(
            "prog {
               block s { goto l }
               block l { x := x + 1; nondet l x2 }
               block x2 { goto e }
               block e { halt }
             }",
        );
        let l = p.block_by_name("l").unwrap();
        assert!(!d.dead_after(&p, l, 0, var(&p, "x")));
    }

    #[test]
    fn branch_condition_keeps_variable_live() {
        let (p, d) = solve_src(
            "prog {
               block s { x := a; if x < 3 then t else e }
               block t { goto e }
               block e { halt }
             }",
        );
        assert!(!d.dead_after(&p, p.entry(), 0, var(&p, "x")));
    }

    #[test]
    fn everything_dead_at_program_end() {
        let (p, d) = solve_src("prog { block s { x := 1; goto e } block e { halt } }");
        assert_eq!(d.at_exit(p.exit()).count_ones(), p.num_vars());
        assert!(d.dead_after(&p, p.entry(), 0, var(&p, "x")));
    }

    #[test]
    fn loop_carried_use_keeps_live() {
        // y is used by out(y) after the loop on every exit path, so the
        // assignment inside the loop is live.
        let (p, d) = solve_src(
            "prog {
               block s { goto h }
               block h { y := y + 1; nondet h x2 }
               block x2 { out(y); goto e }
               block e { halt }
             }",
        );
        let h = p.block_by_name("h").unwrap();
        assert!(!d.dead_after(&p, h, 0, var(&p, "y")));
    }

    #[test]
    fn per_instruction_variant_agrees_with_summarized() {
        let p = parse(
            "prog {
               block s  { x := a + b; y := x; nondet n1 n2 }
               block n1 { out(y); goto n3 }
               block n2 { y := 7; x := y; goto n3 }
               block n3 { out(y); nondet s2 e }
               block s2 { goto n3 }
               block e  { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let a = DeadSolution::compute(&p, &view);
        let b = DeadSolution::compute_per_instruction(&p, &view);
        for n in p.node_ids() {
            assert_eq!(a.at_entry(n), b.at_entry(n), "{}", p.block(n).name);
            assert_eq!(a.at_exit(n), b.at_exit(n), "{}", p.block(n).name);
        }
    }

    #[test]
    fn table1_gen_kill_shapes() {
        let p = parse("prog { block s { x := x + y; goto e } block e { halt } }").unwrap();
        let t = stmt_transfer(&p, &p.block(p.entry()).stmts[0], p.num_vars());
        // x := x + y: USED = {x, y} (kill), MOD ∖ USED = ∅ (gen).
        assert!(t.gen.none());
        assert_eq!(t.kill.count_ones(), 2);
    }
}
