//! Delayability analysis and insertion points (Table 2 of the paper).
//!
//! Delayability determines how far the sinking candidates of each
//! assignment pattern can be pushed in the direction of control flow:
//!
//! ```text
//! N-DELAYED_n = false                          if n = s
//!             = ∧_{m ∈ pred(n)} X-DELAYED_m    otherwise
//! X-DELAYED_n = LOCDELAYED_n ∨ (N-DELAYED_n ∧ ¬LOCBLOCKED_n)
//!
//! N-INSERT_n  = N-DELAYED_n ∧ LOCBLOCKED_n
//! X-INSERT_n  = X-DELAYED_n ∧ ∃_{m ∈ succ(n)} ¬N-DELAYED_m
//! ```
//!
//! A forward all-paths bit-vector problem over assignment patterns
//! (greatest fixpoint). Thanks to edge splitting there are never
//! insertions at the exit of branching nodes (footnote 6).

use pdce_dfa::{solve, solve_seeded, BitProblem, BitVec, Direction, GenKill, Meet, Solution};
use pdce_ir::{CfgView, NodeId, Program};

use crate::local::LocalInfo;
use crate::patterns::PatternTable;

/// Solution of the delayability analysis plus derived insertion points.
#[derive(Debug, Clone)]
pub struct DelayInfo {
    /// `N-DELAYED_n` per block.
    pub n_delayed: Vec<BitVec>,
    /// `X-DELAYED_n` per block.
    pub x_delayed: Vec<BitVec>,
    /// `N-INSERT_n` per block.
    pub n_insert: Vec<BitVec>,
    /// `X-INSERT_n` per block.
    pub x_insert: Vec<BitVec>,
    /// Solver node evaluations (complexity experiments).
    pub evaluations: u64,
    /// The gen/kill system the fixpoint solves, kept so a later
    /// [`DelayInfo::compute_seeded`] can diff it against the new one.
    problem: BitProblem,
}

/// The delayability equations as a forward all-paths [`BitProblem`].
fn delay_problem(prog: &Program, table: &PatternTable, local: &LocalInfo) -> BitProblem {
    let width = table.len();
    let transfer: Vec<GenKill> = prog
        .node_ids()
        .map(|n| {
            GenKill::new(
                local.locdelayed[n.index()].clone(),
                local.locblocked[n.index()].clone(),
            )
        })
        .collect();
    BitProblem {
        direction: Direction::Forward,
        meet: Meet::Intersection,
        width,
        transfer,
        boundary: BitVec::zeros(width), // N-DELAYED_s = false
    }
}

impl DelayInfo {
    /// Runs the analysis.
    pub fn compute(
        prog: &Program,
        view: &CfgView,
        table: &PatternTable,
        local: &LocalInfo,
    ) -> DelayInfo {
        let problem = delay_problem(prog, table, local);
        let sol = solve(view, &problem);
        DelayInfo::from_solution(prog, view, table, local, sol, problem)
    }

    /// Warm-start recompute seeded from a previous [`DelayInfo`].
    ///
    /// `dirty` are the blocks whose statements changed since `prev` was
    /// computed (the CFG shape must be unchanged). Falls back to a cold
    /// [`DelayInfo::compute`] when the previous solution does not match
    /// the current program shape. The insertion points are cheap pure
    /// functions of the fixpoint and are always re-derived in full.
    pub fn compute_seeded(
        prog: &Program,
        view: &CfgView,
        table: &PatternTable,
        local: &LocalInfo,
        prev: &DelayInfo,
        dirty: &[NodeId],
    ) -> DelayInfo {
        let width = table.len();
        let nblocks = view.num_nodes();
        if prev.n_delayed.len() != nblocks
            || prev.x_delayed.len() != nblocks
            || prev.n_delayed.iter().any(|v| v.len() != width)
        {
            return DelayInfo::compute(prog, view, table, local);
        }
        let problem = delay_problem(prog, table, local);
        let prev_sol = Solution {
            entry: prev.n_delayed.clone(),
            exit: prev.x_delayed.clone(),
            evaluations: 0,
            sweeps: 0,
            word_ops: 0,
        };
        let sol = solve_seeded(view, &problem, &prev.problem, &prev_sol, dirty);
        DelayInfo::from_solution(prog, view, table, local, sol, problem)
    }

    /// Derives the insertion points (`N-INSERT`/`X-INSERT`) from a
    /// delayability fixpoint. Scratch vectors are reused across nodes:
    /// `∃_m ¬N-DELAYED_m` is computed as `¬∧_m N-DELAYED_m`, so the
    /// inner loop is a sparse intersection instead of a clone + negate
    /// + union per successor.
    fn from_solution(
        prog: &Program,
        view: &CfgView,
        table: &PatternTable,
        local: &LocalInfo,
        sol: Solution,
        problem: BitProblem,
    ) -> DelayInfo {
        let width = table.len();
        let nblocks = prog.num_blocks();
        let mut n_insert = vec![BitVec::zeros(width); nblocks];
        let mut x_insert = vec![BitVec::zeros(width); nblocks];
        let mut all_delayed = BitVec::zeros(width);
        for n in prog.node_ids() {
            let i = n.index();
            // N-INSERT = N-DELAYED ∧ LOCBLOCKED
            let mut ni = sol.entry[i].clone();
            ni.intersect_with(&local.locblocked[i]);
            n_insert[i] = ni;
            // X-INSERT = X-DELAYED ∧ ∃ succ ¬N-DELAYED
            let succs = view.succs(n);
            if !succs.is_empty() {
                all_delayed.fill(true);
                for &m in succs {
                    all_delayed.intersect_with_skip(&sol.entry[m.index()]);
                }
                all_delayed.negate(); // = ∃ succ ¬N-DELAYED
                let mut xi = sol.exit[i].clone();
                xi.intersect_with(&all_delayed);
                x_insert[i] = xi;
            }
        }
        DelayInfo {
            n_delayed: sol.entry,
            x_delayed: sol.exit,
            n_insert,
            x_insert,
            evaluations: sol.evaluations,
            problem,
        }
    }

    /// Patterns to insert at the entry of `n`, in pattern-index order.
    pub fn entry_insertions(&self, n: NodeId) -> Vec<usize> {
        self.n_insert[n.index()].iter_ones().collect()
    }

    /// Patterns to insert at the exit of `n`, in pattern-index order.
    pub fn exit_insertions(&self, n: NodeId) -> Vec<usize> {
        self.x_insert[n.index()].iter_ones().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn analyse(src: &str) -> (pdce_ir::Program, PatternTable, DelayInfo) {
        let p = parse(src).unwrap();
        let view = CfgView::new(&p);
        let table = PatternTable::build(&p);
        let local = LocalInfo::compute(&p, &table);
        let d = DelayInfo::compute(&p, &view, &table, &local);
        (p, table, d)
    }

    fn idx(p: &pdce_ir::Program, d: &DelayInfo, name: &str) -> usize {
        let _ = d;
        p.block_by_name(name).unwrap().index()
    }

    /// Figure 1: `y := a+b` in n1 is delayable through n2 (transparent)
    /// up to n3 (redefinition of y blocks → insert at entry of n3) and up
    /// to n4 via n2... n2 contains out(y): blocked at n2 entry as well.
    #[test]
    fn fig1_delay_and_insert() {
        let (p, t, d) = analyse(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        assert_eq!(t.len(), 2); // y := a+b and y := 4
        let y_ab = (0..t.len())
            .find(|&k| t.key(k).as_str() == "y := a + b")
            .unwrap();
        let n2 = idx(&p, &d, "n2");
        let n3 = idx(&p, &d, "n3");
        let n1 = idx(&p, &d, "n1");
        // Delayable out of n1 into both successors.
        assert!(d.x_delayed[n1].get(y_ab));
        assert!(d.n_delayed[n2].get(y_ab));
        assert!(d.n_delayed[n3].get(y_ab));
        // Blocked at entry of both: insert there.
        assert!(d.n_insert[n2].get(y_ab));
        assert!(d.n_insert[n3].get(y_ab));
        // Not delayable beyond.
        assert!(!d.x_delayed[n2].get(y_ab));
        assert!(!d.x_delayed[n3].get(y_ab));
    }

    /// The join must be all-paths: if only one predecessor delays the
    /// pattern, it is not delayed at the join.
    #[test]
    fn join_requires_all_predecessors() {
        let (p, t, d) = analyse(
            "prog {
               block s  { nondet l r }
               block l  { x := a + 1; goto j }
               block r  { goto j }
               block j  { out(x); goto e }
               block e  { halt }
             }",
        );
        assert_eq!(t.len(), 1);
        let j = idx(&p, &d, "j");
        let l = idx(&p, &d, "l");
        assert!(d.x_delayed[l].get(0));
        assert!(!d.n_delayed[j].get(0), "r does not delay x := a+1");
        // Hence insertion at the exit of l.
        assert!(d.x_insert[l].get(0));
        assert!(!d.n_insert[j].get(0));
    }

    /// Sinking towards loop exits: the candidate in the loop header is
    /// delayed to the loop-exit block and to the synthetic repeat block
    /// of the split back edge (the delayed instance is not justified to
    /// re-enter the header, whose entry also meets the non-delayed path
    /// from `s`).
    #[test]
    fn loop_invariant_assignment_delays_out_of_loop() {
        let mut p = parse(
            "prog {
               block s { goto h }
               block h { x := a + b; nondet h after }
               block after { out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        pdce_ir::edgesplit::split_critical_edges(&mut p);
        let view = CfgView::new(&p);
        let table = PatternTable::build(&p);
        let local = LocalInfo::compute(&p, &table);
        let d = DelayInfo::compute(&p, &view, &table, &local);
        assert_eq!(table.len(), 1);
        let h = idx(&p, &d, "h");
        let after = idx(&p, &d, "after");
        let s_hh = idx(&p, &d, "S_h_h");
        // Delayable out of h into both the repeat block and the exit.
        assert!(d.x_delayed[h].get(0));
        assert!(d.n_delayed[s_hh].get(0));
        assert!(d.n_delayed[after].get(0));
        // The meet at h's entry fails (path from s carries no instance).
        assert!(!d.n_delayed[h].get(0));
        // Insertions: at the exit of the repeat block, and at the entry
        // of the loop exit (blocked there by out(x)).
        assert!(d.x_insert[s_hh].get(0));
        assert!(d.n_insert[after].get(0));
        assert!(!d.x_insert[h].get(0));
    }

    /// Entry boundary: nothing is delayed into the start node.
    #[test]
    fn entry_is_never_delayed_into() {
        let (p, _t, d) = analyse("prog { block s { x := 1; goto e } block e { halt } }");
        assert!(d.n_delayed[p.entry().index()].none());
        // But the candidate makes the exit delayed.
        assert!(d.x_delayed[p.entry().index()].get(0));
        // Exit node has no successors: no X-INSERT.
        assert!(d.x_insert[p.exit().index()].none());
    }

    /// A pattern delayable to the end node is never inserted anywhere:
    /// it is dropped (it would be dead at e anyway).
    #[test]
    fn delayed_to_exit_has_no_insertion() {
        let (p, _t, d) =
            analyse("prog { block s { x := 1; goto m } block m { goto e } block e { halt } }");
        for n in p.node_ids() {
            assert!(d.n_insert[n.index()].none(), "{}", p.block(n).name);
            assert!(d.x_insert[n.index()].none(), "{}", p.block(n).name);
        }
    }

    /// Seeded recompute after a statement-only edit must reproduce the
    /// cold fixpoint and insertion points bit for bit.
    #[test]
    fn seeded_recompute_matches_cold_after_stmt_edit() {
        let mut p = parse(
            "prog {
               block s  { goto h }
               block h  { y := a + b; nondet b1 b2 }
               block b1 { out(y); goto j }
               block b2 { y := 4; goto j }
               block j  { out(y); nondet h e }
               block e  { halt }
             }",
        )
        .unwrap();
        pdce_ir::edgesplit::split_critical_edges(&mut p);
        let view = CfgView::new(&p);
        let table = PatternTable::build(&p);
        let local = LocalInfo::compute(&p, &table);
        let prev = DelayInfo::compute(&p, &view, &table, &local);

        // Remove the use in b1: the pattern table is unchanged (only
        // assignment patterns are tabled) but LOCBLOCKED shifts.
        let b1 = p.block_by_name("b1").unwrap();
        p.stmts_mut(b1).remove(0);
        let view = CfgView::new(&p);
        let table2 = PatternTable::build(&p);
        assert_eq!(table2.len(), table.len());
        let local2 = LocalInfo::compute(&p, &table2);
        let cold = DelayInfo::compute(&p, &view, &table2, &local2);
        let warm = DelayInfo::compute_seeded(&p, &view, &table2, &local2, &prev, &[b1]);
        for n in p.node_ids() {
            let i = n.index();
            assert_eq!(warm.n_delayed[i], cold.n_delayed[i], "{}", p.block(n).name);
            assert_eq!(warm.x_delayed[i], cold.x_delayed[i], "{}", p.block(n).name);
            assert_eq!(warm.n_insert[i], cold.n_insert[i], "{}", p.block(n).name);
            assert_eq!(warm.x_insert[i], cold.x_insert[i], "{}", p.block(n).name);
        }
    }

    /// A previous solution of the wrong shape must fall back to a cold
    /// solve rather than seeding garbage.
    #[test]
    fn seeded_recompute_with_wrong_shape_solves_cold() {
        let (p, t, d) = analyse(
            "prog {
               block s { x := 1; goto m }
               block m { out(x); goto e }
               block e { halt }
             }",
        );
        let view = CfgView::new(&p);
        let local = LocalInfo::compute(&p, &t);
        let bogus = DelayInfo {
            n_delayed: vec![BitVec::zeros(t.len()); 1], // wrong node count
            x_delayed: vec![BitVec::zeros(t.len()); 1],
            n_insert: Vec::new(),
            x_insert: Vec::new(),
            evaluations: 0,
            problem: delay_problem(&p, &t, &local),
        };
        let warm = DelayInfo::compute_seeded(&p, &view, &t, &local, &bogus, &[]);
        for n in p.node_ids() {
            let i = n.index();
            assert_eq!(warm.n_delayed[i], d.n_delayed[i]);
            assert_eq!(warm.x_insert[i], d.x_insert[i]);
        }
    }
}
