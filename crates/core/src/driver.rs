//! The global algorithm (Section 5.1): repeat dead/faint code
//! elimination and assignment sinking until the program stabilizes.
//!
//! * `pde` = `{dce, ask}` exhaustively (Theorem 5.2.1: optimal in
//!   `G_PDE`),
//! * `pfe` = `{fce, ask}` exhaustively (Theorem 5.2.2: optimal in
//!   `G_PFE`).
//!
//! Critical edges are split up front (Section 2.1). Each global round
//! first drives the elimination step to its own fixpoint (capturing the
//! elimination–elimination effects of Figure 12) and then applies one
//! sinking pass; the loop ends when a full round leaves the program
//! structurally unchanged. Termination is guaranteed by the paper's
//! fixpoint argument (Theorem 3.7); a defensive round cap derived from
//! the Section 6.3 bound (`r ≤ i·b`) turns any implementation bug into an
//! error instead of an endless loop.

use std::error::Error;
use std::fmt;

use pdce_dfa::{AnalysisCache, CacheStats};
use pdce_ir::edgesplit::split_critical_edges;
use pdce_ir::Program;
use pdce_trace::SolverStats;

use crate::elim::{eliminate_fixpoint_cached, Mode};
use crate::sink::{sink_assignments_cached, CriticalEdgeError};

/// What to do when the global round cap is reached (the paper's
/// Section 7 suggests "simply cutting the global iteration process
/// after ... a fixed number of iterations" as a practical heuristic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitBehavior {
    /// Treat hitting the cap as a bug (the default: Theorem 3.7 proves
    /// termination, so a correct implementation never needs the cap).
    Error,
    /// Stop gracefully and return the partial result, which is still
    /// semantics-preserving and better than the input (every
    /// intermediate program of the iteration is).
    Truncate,
}

/// Configuration of the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdceConfig {
    /// Elimination mode: dead (`pde`) or faint (`pfe`).
    pub mode: Mode,
    /// Whether assignment sinking runs at all. With sinking disabled the
    /// driver degenerates to classic (iterated) dead/faint code
    /// elimination — the paper's baseline.
    pub sinking: bool,
    /// Override for the global round cap; `None` uses `4 + i·b` from the
    /// paper's Section 6.3 estimate.
    pub max_rounds: Option<usize>,
    /// Behaviour at the round cap.
    pub on_limit: LimitBehavior,
    /// Section 7's "hot areas" heuristic: restrict candidate collection
    /// and elimination to the named blocks (by block name, so a config
    /// is program-independent). Insertions may land at region-boundary
    /// entries; blocks outside the region are otherwise untouched.
    pub region: Option<std::collections::BTreeSet<String>>,
}

impl PdceConfig {
    /// Restricts optimization effort to the named blocks.
    pub fn with_region<I, S>(mut self, blocks: I) -> PdceConfig
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.region = Some(blocks.into_iter().map(Into::into).collect());
        self
    }

    /// Caps the global iteration at `rounds`, truncating gracefully.
    pub fn truncating_after(mut self, rounds: usize) -> PdceConfig {
        self.max_rounds = Some(rounds);
        self.on_limit = LimitBehavior::Truncate;
        self
    }

    /// The default global round cap for `prog` when [`max_rounds`] is
    /// unset: `4 + i·b` from the paper's Section 6.3 estimate (`r ≤ i·b`,
    /// plus slack for the certifying no-change rounds), with both factors
    /// clamped to at least 1 so even an empty program gets a few rounds.
    ///
    /// [`max_rounds`]: PdceConfig::max_rounds
    pub fn default_round_cap(prog: &Program) -> usize {
        4 + prog.num_stmts().max(1) * prog.num_blocks().max(1)
    }
}

impl PdceConfig {
    /// Partial dead code elimination (the paper's `pde`).
    pub fn pde() -> PdceConfig {
        PdceConfig {
            mode: Mode::Dead,
            sinking: true,
            max_rounds: None,
            on_limit: LimitBehavior::Error,
            region: None,
        }
    }

    /// Partial faint code elimination (the paper's `pfe`).
    pub fn pfe() -> PdceConfig {
        PdceConfig {
            mode: Mode::Faint,
            sinking: true,
            max_rounds: None,
            on_limit: LimitBehavior::Error,
            region: None,
        }
    }

    /// Plain iterated dead code elimination (no sinking).
    pub fn dce_only() -> PdceConfig {
        PdceConfig {
            mode: Mode::Dead,
            sinking: false,
            max_rounds: None,
            on_limit: LimitBehavior::Error,
            region: None,
        }
    }

    /// Plain iterated faint code elimination (no sinking).
    pub fn fce_only() -> PdceConfig {
        PdceConfig {
            mode: Mode::Faint,
            sinking: false,
            max_rounds: None,
            on_limit: LimitBehavior::Error,
            region: None,
        }
    }
}

/// Statistics of one optimizer run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PdceStats {
    /// Global rounds executed (the paper's `r`), including the final
    /// no-change round that certifies stability.
    pub rounds: u64,
    /// Elimination passes that removed at least one assignment.
    pub elimination_passes: u64,
    /// Assignments removed by dead/faint code elimination.
    pub eliminated_assignments: u64,
    /// Sinking candidates removed by `ask`.
    pub sunk_assignments: u64,
    /// Pattern instances inserted by `ask`.
    pub inserted_assignments: u64,
    /// Synthetic blocks added by critical-edge splitting.
    pub synthetic_blocks: u64,
    /// Statement count before optimization (after edge splitting).
    pub initial_stmts: u64,
    /// Statement count after optimization.
    pub final_stmts: u64,
    /// Peak statement count during optimization (the paper's code-growth
    /// factor `ω` is `max_stmts / initial_stmts`).
    pub max_stmts: u64,
    /// Whether the run stopped at the round cap (only with
    /// [`LimitBehavior::Truncate`]).
    pub truncated: bool,
    /// Analysis-cache hit/miss counters for this run. Each global round
    /// needs the `CfgView` many times (every elimination pass, the
    /// sinking pass); with the cache it is built at most once per round
    /// — `cache.cfg_hits` counts the avoided rebuilds.
    pub cache: CacheStats,
    /// Data-flow solver telemetry for this run: problems solved,
    /// worklist pops/evaluations, revisits, sweeps to fixpoint, and
    /// bit-vector word operations (deterministic for a fixed input).
    pub solver: SolverStats,
}

impl PdceStats {
    /// The code growth factor `ω` (Section 6.2): peak size over initial
    /// size. `1.0` for empty programs.
    pub fn growth_factor(&self) -> f64 {
        if self.initial_stmts == 0 {
            1.0
        } else {
            self.max_stmts as f64 / self.initial_stmts as f64
        }
    }
}

/// Optimization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdceError {
    /// The global loop exceeded its round cap — would indicate an
    /// implementation bug, since the paper proves termination.
    RoundLimitExceeded {
        /// Rounds executed before giving up.
        rounds: u64,
    },
}

impl fmt::Display for PdceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdceError::RoundLimitExceeded { rounds } => {
                write!(f, "optimizer did not stabilize within {rounds} rounds")
            }
        }
    }
}

impl Error for PdceError {}

impl From<CriticalEdgeError> for PdceError {
    fn from(_: CriticalEdgeError) -> PdceError {
        // Unreachable: the driver splits critical edges before sinking.
        PdceError::RoundLimitExceeded { rounds: 0 }
    }
}

/// Runs the configured optimizer on `prog` in place.
///
/// Critical edges are split first (when sinking is enabled), so the
/// block set of the result is the block set of the *split* program.
///
/// # Errors
///
/// [`PdceError::RoundLimitExceeded`] if the program fails to stabilize
/// within the round cap (which the paper's Theorem 3.7 rules out for a
/// correct implementation).
pub fn optimize(prog: &mut Program, config: &PdceConfig) -> Result<PdceStats, PdceError> {
    optimize_with_cache(prog, config, &mut AnalysisCache::new())
}

/// [`optimize`] sharing analyses through a caller-provided
/// [`AnalysisCache`], the driver's integration point with the pass
/// manager: one `CfgView` (and one dead/faint solution, where the
/// program allows it) is shared across all elimination passes and the
/// sinking pass of a round instead of being rebuilt per transform.
/// Stability is detected through [`Program::revision`] — a round that
/// performs no mutation ends the loop — which both transforms guarantee
/// by never writing back unchanged statement lists.
///
/// # Errors
///
/// See [`optimize`].
pub fn optimize_with_cache(
    prog: &mut Program,
    config: &PdceConfig,
    cache: &mut AnalysisCache,
) -> Result<PdceStats, PdceError> {
    let cache_baseline = cache.stats();
    let solver_baseline = pdce_trace::solver_totals();
    let driver_name = match (config.mode, config.sinking) {
        (Mode::Dead, true) => "pde",
        (Mode::Faint, true) => "pfe",
        (Mode::Dead, false) => "dce",
        (Mode::Faint, false) => "fce",
    };
    let driver_span = pdce_trace::span("driver", driver_name);
    let mut stats = PdceStats::default();
    if config.sinking {
        stats.synthetic_blocks = split_critical_edges(prog).len() as u64;
    }
    stats.initial_stmts = prog.num_stmts() as u64;
    stats.max_stmts = stats.initial_stmts;

    let cap = config
        .max_rounds
        .unwrap_or_else(|| PdceConfig::default_round_cap(prog));

    // Resolve the hot region (if any) to a dense block mask.
    let region_mask: Option<Vec<bool>> = config.region.as_ref().map(|names| {
        prog.node_ids()
            .map(|n| names.contains(&prog.block(n).name))
            .collect()
    });
    let region = region_mask.as_deref();

    loop {
        stats.rounds += 1;
        if stats.rounds as usize > cap {
            match config.on_limit {
                LimitBehavior::Error => {
                    return Err(PdceError::RoundLimitExceeded {
                        rounds: stats.rounds,
                    });
                }
                LimitBehavior::Truncate => {
                    stats.rounds -= 1;
                    stats.truncated = true;
                    break;
                }
            }
        }
        let before = prog.revision();
        let _round = pdce_trace::round_scope(stats.rounds);

        let (removed, passes) = eliminate_fixpoint_cached(prog, cache, config.mode, region);
        stats.eliminated_assignments += removed;
        stats.elimination_passes += passes;

        if config.sinking {
            let outcome = sink_assignments_cached(prog, cache, region)?;
            stats.sunk_assignments += outcome.removed;
            stats.inserted_assignments += outcome.inserted;
            stats.max_stmts = stats.max_stmts.max(prog.num_stmts() as u64);
        }

        if prog.revision() == before {
            break;
        }
    }
    stats.final_stmts = prog.num_stmts() as u64;
    stats.cache = cache.stats().since(&cache_baseline);
    stats.solver = pdce_trace::solver_totals().since(&solver_baseline);
    driver_span.finish_with(if pdce_trace::enabled() {
        vec![
            ("rounds", stats.rounds.into()),
            ("eliminated", stats.eliminated_assignments.into()),
            ("sunk", stats.sunk_assignments.into()),
            ("inserted", stats.inserted_assignments.into()),
        ]
    } else {
        Vec::new()
    });
    Ok(stats)
}

/// Convenience: partial dead code elimination in place.
///
/// # Errors
///
/// See [`optimize`].
pub fn pde(prog: &mut Program) -> Result<PdceStats, PdceError> {
    optimize(prog, &PdceConfig::pde())
}

/// Convenience: partial faint code elimination in place.
///
/// # Errors
///
/// See [`optimize`].
pub fn pfe(prog: &mut Program) -> Result<PdceStats, PdceError> {
    optimize(prog, &PdceConfig::pfe())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{diff, structural_eq};

    fn run(config: &PdceConfig, src: &str) -> (Program, PdceStats) {
        let mut p = parse(src).unwrap();
        let stats = optimize(&mut p, config).unwrap();
        (p, stats)
    }

    fn expect(got: &Program, want_src: &str) {
        let want = parse(want_src).unwrap();
        assert!(structural_eq(got, &want), "mismatch:\n{}", diff(got, &want));
    }

    /// The §6.3 default round cap is `4 + i·b`, clamped so even a
    /// statement-free program gets a few certifying rounds.
    #[test]
    fn default_round_cap_formula() {
        let p = parse(
            "prog {
               block s { x := 1; y := 2; out(y); goto m }
               block m { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(p.num_stmts(), 3);
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(PdceConfig::default_round_cap(&p), 4 + 3 * 3);

        let empty = parse("prog { block s { goto e } block e { halt } }").unwrap();
        assert_eq!(PdceConfig::default_round_cap(&empty), 4 + 2);
    }

    /// Figures 1 → 2: the motivating example end to end.
    #[test]
    fn fig1_to_fig2() {
        let (got, stats) = run(
            &PdceConfig::pde(),
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s  { goto n1 }
               block n1 { nondet n2 n3 }
               block n2 { y := a + b; out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        assert_eq!(stats.eliminated_assignments, 1); // the copy at n3
        assert!(stats.sunk_assignments >= 1);
        assert_eq!(stats.synthetic_blocks, 0);
    }

    /// The loop case completed: sinking moves the header assignment to
    /// the synthetic repeat block and the exit; dce then removes the
    /// repeat-block copy (it is dead — x is recomputed at the exit).
    #[test]
    fn loop_invariant_assignment_fully_leaves_loop() {
        let (got, _stats) = run(
            &PdceConfig::pde(),
            "prog {
               block s { goto h }
               block h { x := a + b; nondet h after }
               block after { out(x); goto e }
               block e { halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s { goto h }
               block h { nondet S_h_h after }
               block S_h_h { goto h }
               block after { x := a + b; out(x); goto e }
               block e { halt }
             }",
        );
    }

    /// dce-only (no sinking) cannot touch the partially dead assignment.
    #[test]
    fn dce_only_is_strictly_weaker() {
        let src = "prog {
            block s  { goto n1 }
            block n1 { y := a + b; nondet n2 n3 }
            block n2 { out(y); goto n4 }
            block n3 { y := 4; goto n4 }
            block n4 { out(y); goto e }
            block e  { halt }
        }";
        let (got, stats) = run(&PdceConfig::dce_only(), src);
        expect(&got, src);
        assert_eq!(stats.eliminated_assignments, 0);
    }

    /// pfe subsumes pde: on Figure 9 the faint loop increment disappears.
    #[test]
    fn pfe_removes_faint_loop_increment() {
        let src = "prog {
            block s { goto l }
            block l { x := x + 1; nondet l d }
            block d { goto e }
            block e { halt }
        }";
        let (got_pde, _) = run(&PdceConfig::pde(), src);
        assert_eq!(got_pde.num_assignments(), 1, "pde cannot remove it");
        let (got_pfe, stats) = run(&PdceConfig::pfe(), src);
        assert_eq!(got_pfe.num_assignments(), 0);
        assert_eq!(stats.eliminated_assignments, 1);
    }

    /// Idempotence: running pde on its own output changes nothing.
    #[test]
    fn pde_is_idempotent() {
        let src = "prog {
            block s  { goto n1 }
            block n1 { y := a + b; x := y + 1; nondet n2 n3 }
            block n2 { out(x); goto n4 }
            block n3 { y := 4; out(y); goto n4 }
            block n4 { nondet n1 e }
            block e  { halt }
        }";
        let mut p = parse(src).unwrap();
        optimize(&mut p, &PdceConfig::pde()).unwrap();
        let once = pdce_ir::printer::canonical_string(&p);
        let stats = optimize(&mut p, &PdceConfig::pde()).unwrap();
        assert_eq!(pdce_ir::printer::canonical_string(&p), once);
        assert_eq!(stats.eliminated_assignments, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn stats_track_sizes_and_growth() {
        let (_got, stats) = run(
            &PdceConfig::pde(),
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        assert_eq!(stats.initial_stmts, 4);
        // After sinking, copies exist on both arms (5 statements) before
        // dce removes the dead one: ω = 5/4 transiently.
        assert_eq!(stats.max_stmts, 5);
        assert!(stats.growth_factor() > 1.0);
        assert_eq!(stats.final_stmts, 4);
    }

    #[test]
    fn trivial_program_one_round() {
        let (got, stats) = run(
            &PdceConfig::pde(),
            "prog { block s { out(1); goto e } block e { halt } }",
        );
        assert_eq!(stats.rounds, 1);
        assert_eq!(got.num_stmts(), 1);
    }

    /// Regression: a prior pass (e.g. SCCP branch folding) can leave
    /// unreachable blocks before simplify_cfg runs. The solvers never
    /// evaluate such blocks, so their optimistic initial state must not
    /// feed the transformations — this used to diverge (the program grew
    /// by two statements per round inside the unreachable block).
    #[test]
    fn unreachable_blocks_do_not_diverge() {
        let mut p = pdce_ir::parser::parse_unvalidated(
            "prog {
               block s { goto a }
               block a { out(v); goto e }
               block zombie { x := v * 2; v := 5 * x; goto a }
               block e { halt }
             }",
        )
        .unwrap();
        let stats = optimize(&mut p, &PdceConfig::pfe()).unwrap();
        assert!(stats.rounds <= 2, "diverged: {} rounds", stats.rounds);
        // The unreachable block is left untouched.
        let zombie = p.block_by_name("zombie").unwrap();
        assert_eq!(p.block(zombie).stmts.len(), 2);
    }

    #[test]
    fn round_cap_is_respected() {
        let mut p = parse("prog { block s { x := 1; out(x); goto e } block e { halt } }").unwrap();
        // Cap of zero rounds: the very first round exceeds it.
        let err = optimize(
            &mut p,
            &PdceConfig {
                max_rounds: Some(0),
                ..PdceConfig::pde()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PdceError::RoundLimitExceeded { .. }));
    }
}
