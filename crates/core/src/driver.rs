//! The global algorithm (Section 5.1): repeat dead/faint code
//! elimination and assignment sinking until the program stabilizes.
//!
//! * `pde` = `{dce, ask}` exhaustively (Theorem 5.2.1: optimal in
//!   `G_PDE`),
//! * `pfe` = `{fce, ask}` exhaustively (Theorem 5.2.2: optimal in
//!   `G_PFE`).
//!
//! Critical edges are split up front (Section 2.1). Each global round
//! first drives the elimination step to its own fixpoint (capturing the
//! elimination–elimination effects of Figure 12) and then applies one
//! sinking pass; the loop ends when a full round leaves the program
//! structurally unchanged. Termination is guaranteed by the paper's
//! fixpoint argument (Theorem 3.7); a defensive round cap derived from
//! the Section 6.3 bound (`r ≤ i·b`) turns any implementation bug into an
//! error instead of an endless loop.

use std::error::Error;
use std::fmt;
use std::sync::OnceLock;

use pdce_dfa::{AnalysisCache, CacheStats, SolverStrategy};
use pdce_ir::edgesplit::split_critical_edges;
use pdce_ir::Program;
use pdce_trace::budget::{self, Budget, BudgetExhausted};
use pdce_trace::sandbox::{self, SandboxError};
use pdce_trace::{fault, SolverStats};

use crate::elim::{eliminate_fixpoint_cached, Mode};
use crate::sink::{sink_assignments_cached, CriticalEdgeError};
use crate::tv;

/// Registry handles for the driver/resilience counter families. The
/// degradation counter is labelled by the rung degraded *to* and
/// registered on first use (degradations are rare, so the registration
/// lock is off the hot path by construction).
mod resilience_metrics {
    use pdce_metrics::{global, Counter, Stability};
    use std::sync::{Arc, LazyLock};

    fn counter(name: &'static str, help: &'static str) -> Arc<Counter> {
        global().counter(name, help, Stability::Deterministic, &[])
    }

    pub static ROUNDS: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("pdce_rounds_total", "Global optimization rounds executed"));
    pub static TV_CHECKS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_tv_checks_total",
            "Translation-validation round checks",
        )
    });
    pub static TV_ROLLBACKS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_tv_rollbacks_total",
            "Rounds rolled back by translation validation",
        )
    });
    pub static ROLLBACKS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_rollbacks_total",
            "Program snapshots restored after a failed round or rung",
        )
    });
    pub static BUDGET_EXHAUSTIONS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        counter(
            "pdce_budget_exhaustions_total",
            "Attempts stopped by a resource budget",
        )
    });

    pub fn degraded_to(rung: &'static str) -> Arc<Counter> {
        global().counter(
            "pdce_degradations_total",
            "Resilience-ladder degradations by destination rung",
            Stability::Deterministic,
            &[("to", rung)],
        )
    }

    pub fn driver_run(driver: &'static str) -> Arc<Counter> {
        global().counter(
            "pdce_driver_runs_total",
            "Driver invocations by mode",
            Stability::Deterministic,
            &[("driver", driver)],
        )
    }
}

/// What to do when the global round cap is reached (the paper's
/// Section 7 suggests "simply cutting the global iteration process
/// after ... a fixed number of iterations" as a practical heuristic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitBehavior {
    /// Treat hitting the cap as a bug (the default: Theorem 3.7 proves
    /// termination, so a correct implementation never needs the cap).
    Error,
    /// Stop gracefully and return the partial result, which is still
    /// semantics-preserving and better than the input (every
    /// intermediate program of the iteration is).
    Truncate,
}

/// Configuration of the optimizer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PdceConfig {
    /// Elimination mode: dead (`pde`) or faint (`pfe`).
    pub mode: Mode,
    /// Whether assignment sinking runs at all. With sinking disabled the
    /// driver degenerates to classic (iterated) dead/faint code
    /// elimination — the paper's baseline.
    pub sinking: bool,
    /// Override for the global round cap; `None` uses `4 + i·b` from the
    /// paper's Section 6.3 estimate.
    pub max_rounds: Option<usize>,
    /// Behaviour at the round cap.
    pub on_limit: LimitBehavior,
    /// Section 7's "hot areas" heuristic: restrict candidate collection
    /// and elimination to the named blocks (by block name, so a config
    /// is program-independent). Insertions may land at region-boundary
    /// entries; blocks outside the region are otherwise untouched.
    pub region: Option<std::collections::BTreeSet<String>>,
    /// Work budget for this run: rounds and wall time are checked in
    /// the round loop, worklist pops inside the dfa solvers. Exhaustion
    /// surfaces as [`PdceError::BudgetExhausted`] (round/wall checks)
    /// or as an unwind out of an in-flight solve that
    /// [`optimize_resilient`] converts into ladder degradation.
    pub budget: Budget,
    /// Translation validation: `Some(k)` re-executes the pre- and
    /// post-round programs on `k` seeded input vectors after every
    /// round and rolls the round back on an observable mismatch.
    /// `None` falls back to the `TV` environment variable (`TV=k`, or
    /// any other non-empty value for the default vector count); unset
    /// means off.
    pub validate: Option<u32>,
}

impl PdceConfig {
    /// Restricts optimization effort to the named blocks.
    pub fn with_region<I, S>(mut self, blocks: I) -> PdceConfig
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.region = Some(blocks.into_iter().map(Into::into).collect());
        self
    }

    /// Caps the global iteration at `rounds`, truncating gracefully.
    pub fn truncating_after(mut self, rounds: usize) -> PdceConfig {
        self.max_rounds = Some(rounds);
        self.on_limit = LimitBehavior::Truncate;
        self
    }

    /// Sets the work budget for the run.
    pub fn with_budget(mut self, budget: Budget) -> PdceConfig {
        self.budget = budget;
        self
    }

    /// Enables per-round translation validation on `k` seeded vectors.
    pub fn with_validation(mut self, k: u32) -> PdceConfig {
        self.validate = Some(k);
        self
    }

    /// The effective translation-validation vector count: the explicit
    /// config wins, then the `TV` environment variable, then off.
    pub fn tv_vectors(&self) -> u32 {
        self.validate.unwrap_or_else(env_tv_vectors)
    }

    /// The default global round cap for `prog` when [`max_rounds`] is
    /// unset: `4 + i·b` from the paper's Section 6.3 estimate (`r ≤ i·b`,
    /// plus slack for the certifying no-change rounds), with both factors
    /// clamped to at least 1 so even an empty program gets a few rounds.
    ///
    /// [`max_rounds`]: PdceConfig::max_rounds
    pub fn default_round_cap(prog: &Program) -> usize {
        4 + prog.num_stmts().max(1) * prog.num_blocks().max(1)
    }
}

/// `TV` environment gate, parsed once: a number is the vector count
/// (`0` disables), any other non-empty value enables the default count.
fn env_tv_vectors() -> u32 {
    static TV: OnceLock<u32> = OnceLock::new();
    *TV.get_or_init(|| match std::env::var("TV") {
        Ok(v) if v.trim().is_empty() => 0,
        Ok(v) => v
            .trim()
            .parse::<u32>()
            .unwrap_or(tv::TvOptions::default().vectors),
        Err(_) => 0,
    })
}

impl PdceConfig {
    /// Partial dead code elimination (the paper's `pde`).
    pub fn pde() -> PdceConfig {
        PdceConfig {
            mode: Mode::Dead,
            sinking: true,
            max_rounds: None,
            on_limit: LimitBehavior::Error,
            region: None,
            budget: Budget::UNLIMITED,
            validate: None,
        }
    }

    /// Partial faint code elimination (the paper's `pfe`).
    pub fn pfe() -> PdceConfig {
        PdceConfig {
            mode: Mode::Faint,
            ..PdceConfig::pde()
        }
    }

    /// Plain iterated dead code elimination (no sinking).
    pub fn dce_only() -> PdceConfig {
        PdceConfig {
            sinking: false,
            ..PdceConfig::pde()
        }
    }

    /// Plain iterated faint code elimination (no sinking).
    pub fn fce_only() -> PdceConfig {
        PdceConfig {
            mode: Mode::Faint,
            sinking: false,
            ..PdceConfig::pde()
        }
    }
}

/// Statistics of one optimizer run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PdceStats {
    /// Global rounds executed (the paper's `r`), including the final
    /// no-change round that certifies stability.
    pub rounds: u64,
    /// Elimination passes that removed at least one assignment.
    pub elimination_passes: u64,
    /// Assignments removed by dead/faint code elimination.
    pub eliminated_assignments: u64,
    /// Sinking candidates removed by `ask`.
    pub sunk_assignments: u64,
    /// Pattern instances inserted by `ask`.
    pub inserted_assignments: u64,
    /// Synthetic blocks added by critical-edge splitting.
    pub synthetic_blocks: u64,
    /// Statement count before optimization (after edge splitting).
    pub initial_stmts: u64,
    /// Statement count after optimization.
    pub final_stmts: u64,
    /// Peak statement count during optimization (the paper's code-growth
    /// factor `ω` is `max_stmts / initial_stmts`).
    pub max_stmts: u64,
    /// Whether the run stopped at the round cap (only with
    /// [`LimitBehavior::Truncate`]).
    pub truncated: bool,
    /// Analysis-cache hit/miss counters for this run. Each global round
    /// needs the `CfgView` many times (every elimination pass, the
    /// sinking pass); with the cache it is built at most once per round
    /// — `cache.cfg_hits` counts the avoided rebuilds.
    pub cache: CacheStats,
    /// Data-flow solver telemetry for this run: problems solved,
    /// worklist pops/evaluations, revisits, sweeps to fixpoint, and
    /// bit-vector word operations (deterministic for a fixed input).
    pub solver: SolverStats,
    /// Snapshot restores: failed ladder rungs plus translation-
    /// validation round rollbacks.
    pub rollbacks: u64,
    /// Ladder steps taken by [`optimize_resilient`] (0 = the configured
    /// run succeeded as-is).
    pub degradations: u64,
    /// Translation-validation checks executed (one per round when
    /// validation is enabled).
    pub tv_checks: u64,
    /// Rounds rolled back because translation validation observed a
    /// semantic difference.
    pub tv_rollbacks: u64,
    /// Budget-exhaustion events (round/wall checks and solver-pop
    /// unwinds, including injected `budget:` faults).
    pub budget_exhaustions: u64,
    /// Where on the degradation ladder the result came from; `None`
    /// for a normal, undegraded run.
    pub degraded: Option<DegradedMode>,
    /// Human-readable record of every recovered failure, in order.
    pub failure_log: Vec<String>,
}

/// The documented degradation ladder of [`optimize_resilient`]: each
/// failed attempt falls one rung, trading optimization strength for
/// robustness until the identity rung cannot fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradedMode {
    /// Incremental re-analysis off: every solve is a cold solve.
    ColdSolve,
    /// Additionally force the FIFO reference solver.
    FifoSolver,
    /// Additionally disable sinking: pde→dce-only / pfe→fce-only.
    EliminationOnly,
    /// Nothing worked: the input program is returned verbatim.
    Identity,
}

impl DegradedMode {
    /// Stable label used by `--stats`, traces, and BENCH_PDE.json.
    pub fn label(self) -> &'static str {
        match self {
            DegradedMode::ColdSolve => "cold-solve",
            DegradedMode::FifoSolver => "fifo-solver",
            DegradedMode::EliminationOnly => "elimination-only",
            DegradedMode::Identity => "identity",
        }
    }
}

impl PdceStats {
    /// The code growth factor `ω` (Section 6.2): peak size over initial
    /// size. `1.0` for empty programs.
    pub fn growth_factor(&self) -> f64 {
        if self.initial_stmts == 0 {
            1.0
        } else {
            self.max_stmts as f64 / self.initial_stmts as f64
        }
    }
}

/// Optimization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PdceError {
    /// The global loop exceeded its round cap — would indicate an
    /// implementation bug, since the paper proves termination.
    RoundLimitExceeded {
        /// Rounds executed before giving up.
        rounds: u64,
    },
    /// The configured [`Budget`] ran out between rounds.
    BudgetExhausted(BudgetExhausted),
}

impl fmt::Display for PdceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PdceError::RoundLimitExceeded { rounds } => {
                write!(f, "optimizer did not stabilize within {rounds} rounds")
            }
            PdceError::BudgetExhausted(b) => write!(f, "{b}"),
        }
    }
}

impl Error for PdceError {}

impl From<CriticalEdgeError> for PdceError {
    fn from(_: CriticalEdgeError) -> PdceError {
        // Unreachable: the driver splits critical edges before sinking.
        PdceError::RoundLimitExceeded { rounds: 0 }
    }
}

/// Runs the configured optimizer on `prog` in place.
///
/// Critical edges are split first (when sinking is enabled), so the
/// block set of the result is the block set of the *split* program.
///
/// # Errors
///
/// [`PdceError::RoundLimitExceeded`] if the program fails to stabilize
/// within the round cap (which the paper's Theorem 3.7 rules out for a
/// correct implementation).
pub fn optimize(prog: &mut Program, config: &PdceConfig) -> Result<PdceStats, PdceError> {
    optimize_with_cache(prog, config, &mut AnalysisCache::new())
}

/// [`optimize`] sharing analyses through a caller-provided
/// [`AnalysisCache`], the driver's integration point with the pass
/// manager: one `CfgView` (and one dead/faint solution, where the
/// program allows it) is shared across all elimination passes and the
/// sinking pass of a round instead of being rebuilt per transform.
/// Stability is detected through [`Program::revision`] — a round that
/// performs no mutation ends the loop — which both transforms guarantee
/// by never writing back unchanged statement lists.
///
/// # Errors
///
/// See [`optimize`].
pub fn optimize_with_cache(
    prog: &mut Program,
    config: &PdceConfig,
    cache: &mut AnalysisCache,
) -> Result<PdceStats, PdceError> {
    let cache_baseline = cache.stats();
    let solver_baseline = pdce_trace::solver_totals();
    let driver_name = match (config.mode, config.sinking) {
        (Mode::Dead, true) => "pde",
        (Mode::Faint, true) => "pfe",
        (Mode::Dead, false) => "dce",
        (Mode::Faint, false) => "fce",
    };
    let driver_span = pdce_trace::span("driver", driver_name);
    resilience_metrics::driver_run(driver_name).inc();
    let _budget = budget::install(config.budget);
    let tv_vectors = config.tv_vectors();
    let mut stats = PdceStats::default();
    if config.sinking {
        stats.synthetic_blocks = split_critical_edges(prog).len() as u64;
    }
    stats.initial_stmts = prog.num_stmts() as u64;
    stats.max_stmts = stats.initial_stmts;

    let cap = config
        .max_rounds
        .unwrap_or_else(|| PdceConfig::default_round_cap(prog));

    // Resolve the hot region (if any) to a dense block mask.
    let region_mask: Option<Vec<bool>> = config.region.as_ref().map(|names| {
        prog.node_ids()
            .map(|n| names.contains(&prog.block(n).name))
            .collect()
    });
    let region = region_mask.as_deref();

    loop {
        stats.rounds += 1;
        resilience_metrics::ROUNDS.inc();
        if stats.rounds as usize > cap {
            match config.on_limit {
                LimitBehavior::Error => {
                    return Err(PdceError::RoundLimitExceeded {
                        rounds: stats.rounds,
                    });
                }
                LimitBehavior::Truncate => {
                    stats.rounds -= 1;
                    stats.truncated = true;
                    break;
                }
            }
        }
        if let Err(e) = budget::charge_round() {
            stats.budget_exhaustions += 1;
            resilience_metrics::BUDGET_EXHAUSTIONS.inc();
            pdce_trace::instant(
                "resilience",
                "budget-exhausted",
                if pdce_trace::enabled() {
                    vec![("resource", e.resource.into()), ("spent", e.spent.into())]
                } else {
                    Vec::new()
                },
            );
            return Err(PdceError::BudgetExhausted(e));
        }
        let before = prog.revision();
        let _round = pdce_trace::round_scope(stats.rounds);
        // Pre-round snapshot: translation validation compares against
        // it and rolls back to it on a mismatch.
        let last_good = (tv_vectors > 0).then(|| prog.clone());

        fault::fire(match config.mode {
            Mode::Dead => "dce",
            Mode::Faint => "fce",
        });
        let (removed, passes) = eliminate_fixpoint_cached(prog, cache, config.mode, region);
        stats.eliminated_assignments += removed;
        stats.elimination_passes += passes;

        if config.sinking {
            fault::fire("sink");
            let outcome = sink_assignments_cached(prog, cache, region)?;
            stats.sunk_assignments += outcome.removed;
            stats.inserted_assignments += outcome.inserted;
            stats.max_stmts = stats.max_stmts.max(prog.num_stmts() as u64);
        }

        // A round that changed nothing cannot have miscompiled; only
        // validate rounds that touched the program.
        if let Some(last_good) = last_good.filter(|_| prog.revision() != before) {
            stats.tv_checks += 1;
            resilience_metrics::TV_CHECKS.inc();
            let opts = tv::TvOptions {
                vectors: tv_vectors,
                // Bound per-vector interpretation relative to program
                // size: a truncated pair still compares its executed
                // prefix, and the validation tax stays proportional to
                // the optimization work.
                max_block_visits: (last_good.num_blocks() as u64 * 8).max(256),
                ..tv::TvOptions::default()
            };
            let report = tv::validate_pair(&last_good, prog, &opts);
            if let Some(mismatch) = report.mismatch {
                *prog = last_good;
                // Analyses computed for the rolled-back intermediate
                // states must not leak into later queries.
                *cache = AnalysisCache::new();
                stats.tv_rollbacks += 1;
                stats.rollbacks += 1;
                resilience_metrics::TV_ROLLBACKS.inc();
                resilience_metrics::ROLLBACKS.inc();
                stats.failure_log.push(mismatch.to_string());
                pdce_trace::instant(
                    "resilience",
                    "tv-rollback",
                    if pdce_trace::enabled() {
                        vec![
                            ("round", stats.rounds.into()),
                            ("vector", u64::from(mismatch.vector).into()),
                        ]
                    } else {
                        Vec::new()
                    },
                );
                // Re-running the round would reproduce the miscompile;
                // stop here and keep the last-good program.
                break;
            }
        }

        if prog.revision() == before {
            break;
        }
    }
    stats.final_stmts = prog.num_stmts() as u64;
    stats.cache = cache.stats().since(&cache_baseline);
    stats.solver = pdce_trace::solver_totals().since(&solver_baseline);
    driver_span.finish_with(if pdce_trace::enabled() {
        vec![
            ("rounds", stats.rounds.into()),
            ("eliminated", stats.eliminated_assignments.into()),
            ("sunk", stats.sunk_assignments.into()),
            ("inserted", stats.inserted_assignments.into()),
            // Cache telemetry on the span keeps `--trace` output and the
            // metrics registry in agreement (checked by the chrome parity
            // test in tests/observability.rs).
            ("cfg_cache_hits", stats.cache.cfg_hits.into()),
            ("cfg_relayouts", stats.cache.cfg_relayouts.into()),
        ]
    } else {
        Vec::new()
    });
    Ok(stats)
}

/// Convenience: partial dead code elimination in place.
///
/// # Errors
///
/// See [`optimize`].
pub fn pde(prog: &mut Program) -> Result<PdceStats, PdceError> {
    optimize(prog, &PdceConfig::pde())
}

/// Convenience: partial faint code elimination in place.
///
/// # Errors
///
/// See [`optimize`].
pub fn pfe(prog: &mut Program) -> Result<PdceStats, PdceError> {
    optimize(prog, &PdceConfig::pfe())
}

/// Fault-tolerant front door: runs the configured optimizer inside a
/// panic sandbox and, when an attempt fails (panic, budget exhaustion,
/// round-cap bug), restores the input snapshot and retries one rung
/// further down the **degradation ladder**:
///
/// 1. the run as configured,
/// 2. [`DegradedMode::ColdSolve`] — incremental re-analysis off,
/// 3. [`DegradedMode::FifoSolver`] — additionally the FIFO reference
///    solver,
/// 4. [`DegradedMode::EliminationOnly`] — additionally no sinking
///    (pde degrades to dce-only, pfe to fce-only),
/// 5. [`DegradedMode::Identity`] — the input program verbatim.
///
/// Never fails and never panics (modulo allocation failure): the
/// identity rung always succeeds. Every recovered failure is counted
/// in [`PdceStats::degradations`]/[`PdceStats::rollbacks`] and logged
/// in [`PdceStats::failure_log`]; the winning rung is recorded in
/// [`PdceStats::degraded`]. Each rung gets the configured budget
/// afresh (wall clock included) — a budget sized for the full run
/// therefore bounds each attempt, not their sum.
pub fn optimize_resilient(prog: &mut Program, config: &PdceConfig) -> PdceStats {
    let mut degradations = 0u64;
    let mut rollbacks = 0u64;
    let mut budget_exhaustions = 0u64;
    let mut failure_log: Vec<String> = Vec::new();

    let rungs: [Option<DegradedMode>; 4] = [
        None,
        Some(DegradedMode::ColdSolve),
        Some(DegradedMode::FifoSolver),
        Some(DegradedMode::EliminationOnly),
    ];
    for rung in rungs {
        let mut attempt = prog.clone();
        let mut cache = AnalysisCache::new();
        let rung_config = match rung {
            Some(DegradedMode::EliminationOnly) => PdceConfig {
                sinking: false,
                ..config.clone()
            },
            _ => config.clone(),
        };
        let outcome = sandbox::catch(|| match rung {
            None => optimize_with_cache(&mut attempt, &rung_config, &mut cache),
            Some(DegradedMode::ColdSolve) => pdce_dfa::with_incremental(false, || {
                optimize_with_cache(&mut attempt, &rung_config, &mut cache)
            }),
            _ => pdce_dfa::with_incremental(false, || {
                pdce_dfa::with_strategy(SolverStrategy::Fifo, || {
                    optimize_with_cache(&mut attempt, &rung_config, &mut cache)
                })
            }),
        });
        let failure = match outcome {
            Ok(Ok(mut stats)) => {
                *prog = attempt;
                stats.degradations += degradations;
                stats.rollbacks += rollbacks;
                stats.budget_exhaustions += budget_exhaustions;
                failure_log.extend(std::mem::take(&mut stats.failure_log));
                stats.failure_log = failure_log;
                stats.degraded = rung;
                return stats;
            }
            Ok(Err(e)) => {
                if matches!(e, PdceError::BudgetExhausted(_)) {
                    // Already counted in the registry by the inner
                    // `charge_round` site; only the attempt-local stat
                    // moves here.
                    budget_exhaustions += 1;
                }
                e.to_string()
            }
            Err(SandboxError::Budget(b)) => {
                budget_exhaustions += 1;
                resilience_metrics::BUDGET_EXHAUSTIONS.inc();
                b.to_string()
            }
            Err(SandboxError::Panic(msg)) => format!("panic: {msg}"),
        };
        // `attempt` (possibly half-transformed) is discarded; `prog`
        // still holds the pristine input — that *is* the rollback.
        degradations += 1;
        rollbacks += 1;
        resilience_metrics::ROLLBACKS.inc();
        let next = match rung {
            None => DegradedMode::ColdSolve,
            Some(DegradedMode::ColdSolve) => DegradedMode::FifoSolver,
            Some(DegradedMode::FifoSolver) => DegradedMode::EliminationOnly,
            _ => DegradedMode::Identity,
        };
        resilience_metrics::degraded_to(next.label()).inc();
        failure_log.push(format!(
            "{} failed ({failure}); degrading to {}",
            rung.map_or("configured run", DegradedMode::label),
            next.label()
        ));
        pdce_trace::instant(
            "resilience",
            "degrade",
            if pdce_trace::enabled() {
                vec![("to", next.label().into())]
            } else {
                Vec::new()
            },
        );
    }

    // Identity rung: the input program verbatim, flagged as such.
    let stmts = prog.num_stmts() as u64;
    PdceStats {
        initial_stmts: stmts,
        final_stmts: stmts,
        max_stmts: stmts,
        degradations,
        rollbacks,
        budget_exhaustions,
        degraded: Some(DegradedMode::Identity),
        failure_log,
        ..PdceStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{diff, structural_eq};

    fn run(config: &PdceConfig, src: &str) -> (Program, PdceStats) {
        let mut p = parse(src).unwrap();
        let stats = optimize(&mut p, config).unwrap();
        (p, stats)
    }

    fn expect(got: &Program, want_src: &str) {
        let want = parse(want_src).unwrap();
        assert!(structural_eq(got, &want), "mismatch:\n{}", diff(got, &want));
    }

    /// The §6.3 default round cap is `4 + i·b`, clamped so even a
    /// statement-free program gets a few certifying rounds.
    #[test]
    fn default_round_cap_formula() {
        let p = parse(
            "prog {
               block s { x := 1; y := 2; out(y); goto m }
               block m { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(p.num_stmts(), 3);
        assert_eq!(p.num_blocks(), 3);
        assert_eq!(PdceConfig::default_round_cap(&p), 4 + 3 * 3);

        let empty = parse("prog { block s { goto e } block e { halt } }").unwrap();
        assert_eq!(PdceConfig::default_round_cap(&empty), 4 + 2);
    }

    /// Figures 1 → 2: the motivating example end to end.
    #[test]
    fn fig1_to_fig2() {
        let (got, stats) = run(
            &PdceConfig::pde(),
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s  { goto n1 }
               block n1 { nondet n2 n3 }
               block n2 { y := a + b; out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        assert_eq!(stats.eliminated_assignments, 1); // the copy at n3
        assert!(stats.sunk_assignments >= 1);
        assert_eq!(stats.synthetic_blocks, 0);
    }

    /// The loop case completed: sinking moves the header assignment to
    /// the synthetic repeat block and the exit; dce then removes the
    /// repeat-block copy (it is dead — x is recomputed at the exit).
    #[test]
    fn loop_invariant_assignment_fully_leaves_loop() {
        let (got, _stats) = run(
            &PdceConfig::pde(),
            "prog {
               block s { goto h }
               block h { x := a + b; nondet h after }
               block after { out(x); goto e }
               block e { halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s { goto h }
               block h { nondet S_h_h after }
               block S_h_h { goto h }
               block after { x := a + b; out(x); goto e }
               block e { halt }
             }",
        );
    }

    /// dce-only (no sinking) cannot touch the partially dead assignment.
    #[test]
    fn dce_only_is_strictly_weaker() {
        let src = "prog {
            block s  { goto n1 }
            block n1 { y := a + b; nondet n2 n3 }
            block n2 { out(y); goto n4 }
            block n3 { y := 4; goto n4 }
            block n4 { out(y); goto e }
            block e  { halt }
        }";
        let (got, stats) = run(&PdceConfig::dce_only(), src);
        expect(&got, src);
        assert_eq!(stats.eliminated_assignments, 0);
    }

    /// pfe subsumes pde: on Figure 9 the faint loop increment disappears.
    #[test]
    fn pfe_removes_faint_loop_increment() {
        let src = "prog {
            block s { goto l }
            block l { x := x + 1; nondet l d }
            block d { goto e }
            block e { halt }
        }";
        let (got_pde, _) = run(&PdceConfig::pde(), src);
        assert_eq!(got_pde.num_assignments(), 1, "pde cannot remove it");
        let (got_pfe, stats) = run(&PdceConfig::pfe(), src);
        assert_eq!(got_pfe.num_assignments(), 0);
        assert_eq!(stats.eliminated_assignments, 1);
    }

    /// Idempotence: running pde on its own output changes nothing.
    #[test]
    fn pde_is_idempotent() {
        let src = "prog {
            block s  { goto n1 }
            block n1 { y := a + b; x := y + 1; nondet n2 n3 }
            block n2 { out(x); goto n4 }
            block n3 { y := 4; out(y); goto n4 }
            block n4 { nondet n1 e }
            block e  { halt }
        }";
        let mut p = parse(src).unwrap();
        optimize(&mut p, &PdceConfig::pde()).unwrap();
        let once = pdce_ir::printer::canonical_string(&p);
        let stats = optimize(&mut p, &PdceConfig::pde()).unwrap();
        assert_eq!(pdce_ir::printer::canonical_string(&p), once);
        assert_eq!(stats.eliminated_assignments, 0);
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn stats_track_sizes_and_growth() {
        let (_got, stats) = run(
            &PdceConfig::pde(),
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        assert_eq!(stats.initial_stmts, 4);
        // After sinking, copies exist on both arms (5 statements) before
        // dce removes the dead one: ω = 5/4 transiently.
        assert_eq!(stats.max_stmts, 5);
        assert!(stats.growth_factor() > 1.0);
        assert_eq!(stats.final_stmts, 4);
    }

    #[test]
    fn trivial_program_one_round() {
        let (got, stats) = run(
            &PdceConfig::pde(),
            "prog { block s { out(1); goto e } block e { halt } }",
        );
        assert_eq!(stats.rounds, 1);
        assert_eq!(got.num_stmts(), 1);
    }

    /// Regression: a prior pass (e.g. SCCP branch folding) can leave
    /// unreachable blocks before simplify_cfg runs. The solvers never
    /// evaluate such blocks, so their optimistic initial state must not
    /// feed the transformations — this used to diverge (the program grew
    /// by two statements per round inside the unreachable block).
    #[test]
    fn unreachable_blocks_do_not_diverge() {
        let mut p = pdce_ir::parser::parse_unvalidated(
            "prog {
               block s { goto a }
               block a { out(v); goto e }
               block zombie { x := v * 2; v := 5 * x; goto a }
               block e { halt }
             }",
        )
        .unwrap();
        let stats = optimize(&mut p, &PdceConfig::pfe()).unwrap();
        assert!(stats.rounds <= 2, "diverged: {} rounds", stats.rounds);
        // The unreachable block is left untouched.
        let zombie = p.block_by_name("zombie").unwrap();
        assert_eq!(p.block(zombie).stmts.len(), 2);
    }

    const FIG1: &str = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { out(y); goto n4 }
        block n3 { y := 4; goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";

    #[test]
    fn round_budget_surfaces_as_error() {
        let mut p = parse(FIG1).unwrap();
        let config = PdceConfig::pde().with_budget(Budget {
            max_rounds: Some(0),
            ..Budget::UNLIMITED
        });
        let err = optimize(&mut p, &config).unwrap_err();
        assert!(matches!(err, PdceError::BudgetExhausted(ref b) if b.resource == "rounds"));
    }

    #[test]
    fn pop_budget_degrades_to_identity() {
        let mut p = parse(FIG1).unwrap();
        let original = pdce_ir::printer::canonical_string(&p);
        let config = PdceConfig::pde().with_budget(Budget {
            max_pops: Some(1),
            ..Budget::UNLIMITED
        });
        let stats = optimize_resilient(&mut p, &config);
        // Every ladder rung still solves data-flow problems, so every
        // rung exhausts one pop: the prediction is identity.
        assert_eq!(stats.degraded, Some(DegradedMode::Identity));
        assert_eq!(stats.budget_exhaustions, 4);
        assert_eq!(stats.degradations, 4);
        assert_eq!(pdce_ir::printer::canonical_string(&p), original);
    }

    #[test]
    fn persistent_sink_panic_degrades_to_elimination_only() {
        let (want, _) = run(&PdceConfig::dce_only(), FIG1);
        let mut p = parse(FIG1).unwrap();
        let stats = pdce_trace::fault::with_faults("panic:sink:*", || {
            optimize_resilient(&mut p, &PdceConfig::pde())
        });
        assert_eq!(stats.degraded, Some(DegradedMode::EliminationOnly));
        assert_eq!(stats.degradations, 3);
        assert_eq!(stats.rollbacks, 3);
        assert!(stats.failure_log.iter().any(|m| m.contains("sink")));
        // The ladder's prediction: pde without sinking is dce-only.
        assert_eq!(
            pdce_ir::printer::canonical_string(&p),
            pdce_ir::printer::canonical_string(&want)
        );
    }

    #[test]
    fn one_shot_panic_recovers_on_next_rung() {
        let (want, _) = run(&PdceConfig::pde(), FIG1);
        let mut p = parse(FIG1).unwrap();
        let stats = pdce_trace::fault::with_faults("panic:dce:1", || {
            optimize_resilient(&mut p, &PdceConfig::pde())
        });
        assert_eq!(stats.degraded, Some(DegradedMode::ColdSolve));
        assert_eq!(stats.degradations, 1);
        assert_eq!(
            pdce_ir::printer::canonical_string(&p),
            pdce_ir::printer::canonical_string(&want)
        );
    }

    #[test]
    fn resilient_run_without_faults_is_undegraded() {
        let (want, want_stats) = run(&PdceConfig::pde(), FIG1);
        let mut p = parse(FIG1).unwrap();
        let stats = optimize_resilient(&mut p, &PdceConfig::pde());
        assert_eq!(stats.degraded, None);
        assert_eq!(stats.degradations, 0);
        assert_eq!(
            stats.eliminated_assignments,
            want_stats.eliminated_assignments
        );
        assert_eq!(
            pdce_ir::printer::canonical_string(&p),
            pdce_ir::printer::canonical_string(&want)
        );
    }

    #[test]
    fn tv_accepts_a_correct_run() {
        let (want, _) = run(&PdceConfig::pde(), FIG1);
        let mut p = parse(FIG1).unwrap();
        let stats = optimize(&mut p, &PdceConfig::pde().with_validation(4)).unwrap();
        assert!(stats.tv_checks >= 1);
        assert_eq!(stats.tv_rollbacks, 0);
        assert_eq!(
            pdce_ir::printer::canonical_string(&p),
            pdce_ir::printer::canonical_string(&want)
        );
    }

    #[test]
    fn tv_rolls_back_an_injected_miscompile() {
        let mut p = parse(FIG1).unwrap();
        let original = pdce_ir::printer::canonical_string(&p);
        let stats = pdce_trace::fault::with_faults("bitflip:dead:1", || {
            optimize(&mut p, &PdceConfig::pde().with_validation(8)).unwrap()
        });
        assert_eq!(stats.tv_rollbacks, 1);
        assert_eq!(stats.rollbacks, 1);
        assert!(stats
            .failure_log
            .iter()
            .any(|m| m.contains("translation validation failed")));
        // Rolled back to the pre-round program — the unoptimized input
        // (FIG1 has no critical edges, so no split blocks either).
        assert_eq!(pdce_ir::printer::canonical_string(&p), original);
    }

    #[test]
    fn tv_rollback_under_resilient_driver_keeps_last_good() {
        let mut p = parse(FIG1).unwrap();
        let original = pdce_ir::printer::canonical_string(&p);
        let stats = pdce_trace::fault::with_faults("bitflip:dead:1", || {
            optimize_resilient(&mut p, &PdceConfig::pde().with_validation(8))
        });
        // A TV rollback is a contained recovery, not a rung failure.
        assert_eq!(stats.degraded, None);
        assert_eq!(stats.tv_rollbacks, 1);
        assert_eq!(pdce_ir::printer::canonical_string(&p), original);
    }

    #[test]
    fn round_cap_is_respected() {
        let mut p = parse("prog { block s { x := 1; out(x); goto e } block e { halt } }").unwrap();
        // Cap of zero rounds: the very first round exceeds it.
        let err = optimize(
            &mut p,
            &PdceConfig {
                max_rounds: Some(0),
                ..PdceConfig::pde()
            },
        )
        .unwrap_err();
        assert!(matches!(err, PdceError::RoundLimitExceeded { .. }));
    }
}
