//! The elimination step (Section 5.2).
//!
//! "Process every basic block by successively eliminating all assignments
//! whose left-hand side variables are dead (faint) immediately after
//! them." One pass over a fixed analysis solution is sound: removing a
//! dead assignment never makes anything *less* dead. Second-order
//! elimination–elimination effects (Figure 12) are handled by iterating
//! the pass to a fixpoint in the driver.

use pdce_dfa::{AnalysisCache, Preserves};
use pdce_ir::{Program, Stmt};

use crate::dead::DeadSolution;
use crate::faint::FaintSolution;

/// Which notion of uselessness drives eliminations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Dead variables (bit-vector analysis; `pde`/`dce`).
    Dead,
    /// Faint variables (slotwise analysis; `pfe`/`fce`).
    Faint,
}

/// Runs one elimination pass, removing every assignment whose left-hand
/// side is dead (faint) immediately after it. Returns the number of
/// removed assignments.
pub fn eliminate_once(prog: &mut Program, mode: Mode) -> u64 {
    eliminate_once_in(prog, mode, None)
}

/// [`eliminate_once`] restricted to a hot region (Section 7's
/// localization heuristic): assignments are only removed from blocks
/// whose index is allowed. The analyses remain global, so region
/// results are always sound — just less aggressive.
pub fn eliminate_once_in(prog: &mut Program, mode: Mode, region: Option<&[bool]>) -> u64 {
    eliminate_once_cached(prog, &mut AnalysisCache::new(), mode, region)
}

/// [`eliminate_once_in`] sharing analyses through an [`AnalysisCache`]:
/// the `CfgView` and the dead/faint solution are served from `cache`
/// when the program has not changed since they were computed (which is
/// exactly the case in the stability-certifying final pass of the
/// fixpoint iteration, and whenever a preceding pass in a pipeline left
/// them valid). After removals the cache is retained at
/// [`Preserves::Cfg`]: eliminations only edit statement lists.
pub fn eliminate_once_cached(
    prog: &mut Program,
    cache: &mut AnalysisCache,
    mode: Mode,
    region: Option<&[bool]>,
) -> u64 {
    let (pass_name, detail) = match mode {
        Mode::Dead => ("dce", "lhs dead after"),
        Mode::Faint => ("fce", "lhs faint after"),
    };
    let trace_span = pdce_trace::span("transform", pass_name);
    let view = cache.cfg(prog);
    // Skip unreachable blocks: the solvers never evaluate them, so their
    // optimistic initial state would claim everything dead there.
    let in_region =
        |n: pdce_ir::NodeId| region.is_none_or(|r| r[n.index()]) && view.rpo_index(n) != usize::MAX;
    let mut removed = 0u64;
    match mode {
        Mode::Dead => {
            let sol = cache.analysis_seeded::<DeadSolution, _>(prog, |p, v, seed| match seed {
                Some((prev, delta)) => {
                    DeadSolution::compute_seeded(p, v, prev, delta.dirty_blocks())
                }
                None => DeadSolution::compute(p, v),
            });
            let plans: Vec<(pdce_ir::NodeId, Vec<usize>)> = prog
                .node_ids()
                .filter(|&n| in_region(n))
                .map(|n| {
                    // The rolling visitor walks the block backwards once
                    // instead of materializing one vector per statement.
                    let stmts = &prog.block(n).stmts;
                    let mut doomed: Vec<usize> = Vec::new();
                    sol.for_each_stmt_after(prog, n, |k, after| {
                        if let Stmt::Assign { lhs, .. } = stmts[k] {
                            if after.get(lhs.index()) {
                                doomed.push(k);
                            }
                        }
                    });
                    doomed.reverse(); // visitor runs last-to-first
                    (n, doomed)
                })
                .collect();
            let mut plans = plans;
            if pdce_trace::fault::flip("dead") {
                inject_decision_bitflip(prog, &mut plans);
            }
            record_eliminations(prog, &plans, pass_name, detail);
            removed += apply_removals(prog, &plans);
        }
        Mode::Faint => {
            // The revision-cached chain graph feeds the faint network:
            // cold, seeded, and sparse solves all reuse it instead of
            // re-scanning the program.
            let du = cache.du(prog);
            let sol = cache.analysis_seeded::<FaintSolution, _>(prog, |p, view, seed| match seed {
                Some((prev, delta)) => {
                    FaintSolution::compute_seeded_with_du(p, view, &du, prev, delta.dirty_blocks())
                }
                None => FaintSolution::compute_with_du(p, view, &du),
            });
            let plans: Vec<(pdce_ir::NodeId, Vec<usize>)> = prog
                .node_ids()
                .filter(|&n| in_region(n))
                .map(|n| {
                    let doomed = prog
                        .block(n)
                        .stmts
                        .iter()
                        .enumerate()
                        .filter_map(|(k, stmt)| match *stmt {
                            Stmt::Assign { lhs, .. } if sol.faint_after(n, k, lhs) => Some(k),
                            _ => None,
                        })
                        .collect();
                    (n, doomed)
                })
                .collect();
            let mut plans = plans;
            if pdce_trace::fault::flip("faint") {
                inject_decision_bitflip(prog, &mut plans);
            }
            record_eliminations(prog, &plans, pass_name, detail);
            removed += apply_removals(prog, &plans);
        }
    }
    if removed > 0 {
        // Removals touch statement lists only; the CFG shape survives.
        cache.retain(prog, Preserves::Cfg);
    }
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![("removed", removed.into())]
    } else {
        Vec::new()
    });
    removed
}

/// Logs one provenance record per planned removal (only when a tracer is
/// installed — statement pretty-printing is not free).
fn record_eliminations(
    prog: &Program,
    plans: &[(pdce_ir::NodeId, Vec<usize>)],
    pass: &'static str,
    detail: &'static str,
) {
    if !pdce_trace::enabled() {
        return;
    }
    for (n, doomed) in plans {
        for &k in doomed {
            pdce_trace::provenance(pdce_trace::ProvenanceRecord {
                action: pdce_trace::ProvAction::Eliminated,
                pass,
                round: pdce_trace::round(),
                revision: prog.revision(),
                block: prog.block(*n).name.clone(),
                stmt: pdce_ir::printer::print_stmt(prog, &prog.block(*n).stmts[k]),
                detail,
            });
        }
    }
}

/// Iterates [`eliminate_once`] until no assignment is removable, which
/// captures elimination–elimination second-order effects (Figure 12) for
/// the dead mode. Returns `(total removed, passes that removed something)`.
pub fn eliminate_fixpoint(prog: &mut Program, mode: Mode) -> (u64, u64) {
    eliminate_fixpoint_in(prog, mode, None)
}

/// [`eliminate_fixpoint`] restricted to a hot region.
pub fn eliminate_fixpoint_in(
    prog: &mut Program,
    mode: Mode,
    region: Option<&[bool]>,
) -> (u64, u64) {
    eliminate_fixpoint_cached(prog, &mut AnalysisCache::new(), mode, region)
}

/// [`eliminate_fixpoint_in`] sharing analyses through an
/// [`AnalysisCache`]. The `CfgView` is built (at most) once for the
/// whole iteration instead of once per pass.
pub fn eliminate_fixpoint_cached(
    prog: &mut Program,
    cache: &mut AnalysisCache,
    mode: Mode,
    region: Option<&[bool]>,
) -> (u64, u64) {
    let mut total = 0u64;
    let mut passes = 0u64;
    loop {
        let removed = eliminate_once_cached(prog, cache, mode, region);
        if removed == 0 {
            return (total, passes);
        }
        total += removed;
        passes += 1;
    }
}

/// `FAULT_INJECT=bitflip:dead:n` / `bitflip:faint:n` support: flips one
/// elimination decision bit by dooming the first assignment the
/// analysis did *not* prove removable — a deliberate miscompile that
/// per-round translation validation must catch and roll back.
fn inject_decision_bitflip(prog: &Program, plans: &mut [(pdce_ir::NodeId, Vec<usize>)]) {
    for (n, doomed) in plans.iter_mut() {
        let stmts = &prog.block(*n).stmts;
        for (k, stmt) in stmts.iter().enumerate() {
            if matches!(stmt, Stmt::Assign { .. }) && !doomed.contains(&k) {
                doomed.push(k);
                doomed.sort_unstable();
                return;
            }
        }
    }
}

fn apply_removals(prog: &mut Program, plans: &[(pdce_ir::NodeId, Vec<usize>)]) -> u64 {
    let mut removed = 0u64;
    for (n, doomed) in plans {
        if doomed.is_empty() {
            continue;
        }
        // `stmts_mut` (vs `block_mut`) logs a statement-level change, so
        // the next round's analyses can warm-start from this block alone.
        let stmts = prog.stmts_mut(*n);
        let mut keep = Vec::with_capacity(stmts.len() - doomed.len());
        let mut d = doomed.iter().peekable();
        for (k, stmt) in stmts.iter().enumerate() {
            if d.peek() == Some(&&k) {
                d.next();
                removed += 1;
            } else {
                keep.push(*stmt);
            }
        }
        *stmts = keep;
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{diff, structural_eq};

    fn check(mode: Mode, src: &str, expected: &str) {
        let mut p = parse(src).unwrap();
        eliminate_fixpoint(&mut p, mode);
        let want = parse(expected).unwrap();
        assert!(
            structural_eq(&p, &want),
            "mismatch after elimination:\n{}",
            diff(&p, &want)
        );
    }

    #[test]
    fn removes_totally_dead_assignment() {
        check(
            Mode::Dead,
            "prog { block s { x := 1; y := 2; out(y); goto e } block e { halt } }",
            "prog { block s { y := 2; out(y); goto e } block e { halt } }",
        );
    }

    #[test]
    fn keeps_partially_dead_assignment() {
        let src = "prog {
            block s  { y := a + b; nondet n2 n3 }
            block n2 { y := 4; goto n4 }
            block n3 { goto n4 }
            block n4 { out(y); goto e }
            block e  { halt }
        }";
        check(Mode::Dead, src, src);
    }

    /// Figure 12: `y := a + b` at node 4 is dead (y is redefined at node
    /// 5 before use); its removal makes `a := c + 1` dead too. Two passes
    /// of dead elimination; one pass of faint elimination.
    #[test]
    fn fig12_elimination_elimination_effect() {
        let src = "prog {
            block s  { a := c + 1; nondet n3 n4 }
            block n3 { goto n5 }
            block n4 { y := a + b; goto n5 }
            block n5 { y := c + d; out(y); goto e }
            block e  { halt }
        }";
        let expected = "prog {
            block s  { nondet n3 n4 }
            block n3 { goto n5 }
            block n4 { goto n5 }
            block n5 { y := c + d; out(y); goto e }
            block e  { halt }
        }";
        // Dead mode needs two passes.
        let mut p = parse(src).unwrap();
        assert_eq!(eliminate_once(&mut p, Mode::Dead), 1);
        assert_eq!(eliminate_once(&mut p, Mode::Dead), 1);
        assert_eq!(eliminate_once(&mut p, Mode::Dead), 0);
        assert!(structural_eq(&p, &parse(expected).unwrap()));
        // Faint mode removes both in a single pass (first-order for PFE).
        let mut p = parse(src).unwrap();
        assert_eq!(eliminate_once(&mut p, Mode::Faint), 2);
        assert!(structural_eq(&p, &parse(expected).unwrap()));
    }

    /// Figure 9: the faint self-increment is removed by fce, not by dce.
    #[test]
    fn fig9_faint_not_dead() {
        let src = "prog {
            block s { goto l }
            block l { x := x + 1; nondet l d }
            block d { goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        assert_eq!(eliminate_fixpoint(&mut p, Mode::Dead).0, 0);
        let mut p = parse(src).unwrap();
        assert_eq!(eliminate_fixpoint(&mut p, Mode::Faint).0, 1);
    }

    #[test]
    fn within_block_chain_removed_in_one_faint_pass() {
        check(
            Mode::Faint,
            "prog { block s { a := 1; b := a + 1; c := b + 1; out(9); goto e } block e { halt } }",
            "prog { block s { out(9); goto e } block e { halt } }",
        );
    }

    #[test]
    fn multiple_blocks_processed_in_one_pass() {
        check(
            Mode::Dead,
            "prog {
               block s { x := 1; goto m }
               block m { y := 2; goto e }
               block e { halt }
             }",
            "prog {
               block s { goto m }
               block m { goto e }
               block e { halt }
             }",
        );
    }

    #[test]
    fn out_and_skip_are_never_removed() {
        check(
            Mode::Faint,
            "prog { block s { skip; out(1); skip; goto e } block e { halt } }",
            "prog { block s { skip; out(1); skip; goto e } block e { halt } }",
        );
    }
}
