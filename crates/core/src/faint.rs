//! Faint-variable analysis (Table 1 of the paper).
//!
//! A variable `x` is *faint* at a point if on every path to the end node
//! every right-hand-side occurrence of `x` is either preceded by a
//! modification of `x` or occurs in an assignment whose left-hand-side
//! variable is itself faint. Faintness subsumes deadness (Figure 9 shows
//! a faint-but-not-dead assignment) but is **not** a bit-vector problem:
//! the equation for slot `(ι, x)` of an assignment `ι` reads the slot of
//! a *different* variable, `(ι, lhs_ι)`:
//!
//! ```text
//! N-FAINT_ι(x) = ¬RELV-USED_ι(x) ∧ (X-FAINT_ι(x) ∨ MOD_ι(x))
//!                               ∧ (X-FAINT_ι(lhs_ι) ∨ ¬ASS-USED_ι(x))
//! X-FAINT_ι(x) = ∧_{ι' ∈ succ(ι)} N-FAINT_ι'(x)
//! ```
//!
//! Following Section 5.2 we solve it with a slotwise worklist algorithm
//! (the greatest-fixpoint boolean-network solver of `pdce-dfa`), with the
//! paper's subtlety: whenever slot `(ι, lhs_ι)` drops, the slots `(ι, z)`
//! of all right-hand-side variables `z` of `ι` are re-queued.

use pdce_dfa::network::{
    solve_greatest, solve_greatest_prioritized, solve_greatest_seeded, solve_greatest_sparse,
    NetworkSolution,
};
use pdce_dfa::{Csr, DuGraph, InstrKind, SolverStrategy};
use pdce_ir::{CfgView, NodeId, Program, Var};

/// Result of the faint-variable analysis.
#[derive(Debug)]
pub struct FaintSolution {
    num_vars: usize,
    /// First instruction index of each block.
    offsets: Vec<usize>,
    /// `N-FAINT` value of every `(instruction, variable)` slot.
    values: pdce_dfa::BitVec,
    /// Successor instruction indices of every instruction, in CSR form.
    next: Csr,
    evaluations: u64,
}

/// The slot network of one program, viewed through its def-use chain
/// graph: the [`DuGraph`] already holds the instruction layout, the
/// per-instruction kind/def/use facts, and the flow chains, so the
/// network is a thin slot-arithmetic layer over it. The dense
/// dependency CSR is materialized on demand ([`Network::dependents`])
/// only for the worklist strategies; the sparse strategy walks the
/// use-def chains lazily instead.
struct Network<'a> {
    num_vars: usize,
    num_instrs: usize,
    num_slots: usize,
    du: &'a DuGraph,
}

impl<'a> Network<'a> {
    fn new(du: &'a DuGraph) -> Network<'a> {
        let num_vars = du.num_vars();
        let num_instrs = du.num_instrs();
        Network {
            num_vars,
            num_instrs,
            num_slots: num_instrs * num_vars,
            du,
        }
    }

    /// Dense dependency edges, for the Fifo/Priority/seeded solvers:
    /// slot (ν, y) is read by (ι, y) whenever ν ∈ next(ι); additionally,
    /// for assignments, (ν, lhs) is read by (ι, z) for every
    /// right-hand-side variable z. Emission order is the worklist
    /// scheduling order; it must not change.
    fn dependents(&self) -> Csr {
        let num_vars = self.num_vars;
        Csr::build(self.num_slots, |emit| {
            for i in 0..self.num_instrs {
                for &nu in self.du.next_of(i) {
                    let nu = nu as usize;
                    for v in 0..num_vars {
                        emit((nu * num_vars + v) as u32, (i * num_vars + v) as u32);
                    }
                    if self.du.kind(i) == InstrKind::Assign {
                        let lhs = self.du.def_of(i).expect("assignment defines").index();
                        for &z in self.du.uses_of(i) {
                            if z as usize != lhs {
                                emit(
                                    (nu * num_vars + lhs) as u32,
                                    (i * num_vars + z as usize) as u32,
                                );
                            }
                        }
                    }
                }
            }
        })
    }

    /// The constant-false slots under the all-true start value: Table 1
    /// makes exactly the `RELV-USED` slots false unconditionally, so the
    /// sparse falsity closure seeds from the relevant instructions' used
    /// variables — every other equation is true while its inputs are.
    fn false_seeds(&self) -> Vec<u32> {
        let mut seeds = Vec::new();
        for i in 0..self.num_instrs {
            if self.du.kind(i) == InstrKind::Relevant {
                for &u in self.du.uses_of(i) {
                    seeds.push((i * self.num_vars + u as usize) as u32);
                }
            }
        }
        seeds
    }

    /// Lazy dependents of slot `s` for the sparse solver, walking the
    /// use-def chains: the same edges [`Network::dependents`] emits,
    /// enumerated from the target side via `prev`.
    fn sparse_dependents_of(&self, s: usize, out: &mut Vec<u32>) {
        let nu = s / self.num_vars;
        let y = (s % self.num_vars) as u32;
        for &i in self.du.prev_of(nu) {
            let i = i as usize;
            out.push((i * self.num_vars) as u32 + y);
            if self.du.kind(i) == InstrKind::Assign {
                let lhs = self.du.def_of(i).expect("assignment defines").index() as u32;
                if lhs == y {
                    for &z in self.du.uses_of(i) {
                        if z != y {
                            out.push((i * self.num_vars + z as usize) as u32);
                        }
                    }
                }
            }
        }
    }

    /// Table 1's `X-FAINT`: conjunction over successor instructions.
    fn x_faint(&self, values: &pdce_dfa::BitVec, instr: usize, v: usize) -> bool {
        self.du
            .next_of(instr)
            .iter()
            .all(|&nu| values.get(nu as usize * self.num_vars + v))
    }

    /// Table 1's `N-FAINT` right-hand side for one slot.
    fn eval(&self, s: usize, values: &pdce_dfa::BitVec) -> bool {
        let instr = s / self.num_vars;
        let x = s % self.num_vars;
        match self.du.kind(instr) {
            InstrKind::Neutral => self.x_faint(values, instr, x),
            InstrKind::Relevant => {
                !self.du.uses_of(instr).contains(&(x as u32)) && self.x_faint(values, instr, x)
            }
            InstrKind::Assign => {
                let lhs = self.du.def_of(instr).expect("assignment defines").index();
                (self.x_faint(values, instr, x) || x == lhs)
                    && (self.x_faint(values, instr, lhs)
                        || !self.du.uses_of(instr).contains(&(x as u32)))
            }
        }
    }

    /// Slot priorities for the prioritized/seeded solvers: falsity flows
    /// backward along `next`, so evaluate deep instructions first
    /// (the view's precomputed instruction-graph postorder index).
    fn priorities(&self, view: &CfgView) -> Vec<u32> {
        let po = view.instr_postorder();
        (0..self.num_slots).map(|s| po[s / self.num_vars]).collect()
    }

    /// Number of instructions of block `n` in this layout.
    fn instr_count(&self, n: usize) -> usize {
        let offsets = self.du.block_offsets();
        let end = offsets.get(n + 1).copied().unwrap_or(self.num_instrs);
        end - offsets[n]
    }
}

impl FaintSolution {
    /// Runs the analysis over `prog`.
    ///
    /// # Example
    ///
    /// ```
    /// use pdce_core::FaintSolution;
    /// use pdce_ir::parser::parse;
    ///
    /// // Figure 9: the self-increment is faint (though not dead).
    /// let prog = parse(
    ///     "prog { block s { goto l } block l { x := x + 1; nondet l d }
    ///             block d { goto e } block e { halt } }",
    /// )?;
    /// let faint = FaintSolution::compute(&prog, &pdce_ir::CfgView::new(&prog));
    /// let l = prog.block_by_name("l").unwrap();
    /// let x = prog.vars().lookup("x").unwrap();
    /// assert!(faint.faint_after(l, 0, x));
    /// # Ok::<(), pdce_ir::ParseError>(())
    /// ```
    pub fn compute(prog: &Program, view: &CfgView) -> FaintSolution {
        let du = DuGraph::build(prog, view);
        FaintSolution::compute_with_du(prog, view, &du)
    }

    /// Runs the analysis against an already-built def-use chain graph
    /// (typically the revision-cached one from `AnalysisCache::du`,
    /// avoiding the program re-scan). `du` must describe `prog` under
    /// `view`'s layout.
    pub fn compute_with_du(prog: &Program, view: &CfgView, du: &DuGraph) -> FaintSolution {
        debug_assert!(view.layout_matches(prog), "view layout is stale");
        debug_assert_eq!(du.num_instrs(), view.num_instrs(), "du graph is stale");
        let net = Network::new(du);
        let eval = |s: usize, values: &pdce_dfa::BitVec| net.eval(s, values);
        let NetworkSolution {
            values,
            evaluations,
        } = match pdce_dfa::current_strategy() {
            SolverStrategy::Fifo => solve_greatest(net.num_slots, &net.dependents(), eval),
            SolverStrategy::Priority => {
                // Falsity flows backward along `next`, so evaluate deep
                // instructions first: priority = instruction-graph
                // postorder index (exit-most instructions finish first).
                let priority = net.priorities(view);
                solve_greatest_prioritized(net.num_slots, &net.dependents(), &priority, eval)
            }
            SolverStrategy::Sparse => {
                // No dense dependency CSR at all: seed the closed-form
                // false slots and chase falsity along the use-def chains.
                let seeds = net.false_seeds();
                solve_greatest_sparse(
                    net.num_slots,
                    &seeds,
                    |s, out| net.sparse_dependents_of(s, out),
                    eval,
                )
            }
        };

        FaintSolution {
            num_vars: net.num_vars,
            offsets: du.block_offsets().to_vec(),
            values,
            next: du.next().clone(),
            evaluations,
        }
    }

    /// Warm-start re-analysis seeded from a previous solution.
    ///
    /// `prev` must come from [`FaintSolution::compute`] (or a previous
    /// seeded run) over the same CFG, and `dirty` must cover every block
    /// whose statement list changed since. The slot network is rebuilt
    /// for the current program (a linear scan); the previous fixpoint
    /// values of untouched blocks are remapped into the new layout and
    /// only the slots of dirty blocks — plus their dependence cone — are
    /// re-iterated. Falls back to a cold solve internally when the
    /// shapes do not line up (the variable universe moved, the block
    /// set changed, or a supposedly-clean block changed length).
    /// Bit-identical to a cold solve.
    pub fn compute_seeded(
        prog: &Program,
        view: &CfgView,
        prev: &FaintSolution,
        dirty: &[NodeId],
    ) -> FaintSolution {
        let du = DuGraph::build(prog, view);
        FaintSolution::compute_seeded_with_du(prog, view, &du, prev, dirty)
    }

    /// [`FaintSolution::compute_seeded`] against an already-built chain
    /// graph (see [`FaintSolution::compute_with_du`]).
    pub fn compute_seeded_with_du(
        prog: &Program,
        view: &CfgView,
        du: &DuGraph,
        prev: &FaintSolution,
        dirty: &[NodeId],
    ) -> FaintSolution {
        debug_assert_eq!(du.num_instrs(), view.num_instrs(), "du graph is stale");
        let net = Network::new(du);
        let nblocks = prog.num_blocks();
        if net.num_vars != prev.num_vars || prev.offsets.len() != nblocks {
            return FaintSolution::compute_with_du(prog, view, du);
        }
        let mut is_dirty = vec![false; nblocks];
        for &d in dirty {
            is_dirty[d.index()] = true;
        }
        let prev_num_instrs = prev.next.num_nodes();
        let prev_instr_count = |n: usize| {
            let end = prev.offsets.get(n + 1).copied().unwrap_or(prev_num_instrs);
            end - prev.offsets[n]
        };
        // Every clean block must have kept its instruction count, else
        // the per-block value remapping below is meaningless.
        for (n, &block_dirty) in is_dirty.iter().enumerate() {
            if !block_dirty && net.instr_count(n) != prev_instr_count(n) {
                return FaintSolution::compute_with_du(prog, view, du);
            }
        }

        // Seed: all-true (the lattice top, what dirty slots reset to),
        // with every clean block's segment copied from the previous
        // fixpoint under the new instruction numbering.
        let offsets = du.block_offsets();
        let mut seed = pdce_dfa::BitVec::ones(net.num_slots);
        let mut dirty_slots: Vec<u32> = Vec::new();
        for (n, &block_dirty) in is_dirty.iter().enumerate() {
            let base = offsets[n] * net.num_vars;
            let count = net.instr_count(n) * net.num_vars;
            if block_dirty {
                dirty_slots.extend((base..base + count).map(|s| s as u32));
            } else {
                let prev_base = prev.offsets[n] * net.num_vars;
                for k in 0..count {
                    seed.set(base + k, prev.values.get(prev_base + k));
                }
            }
        }

        let priority = net.priorities(view);
        let eval = |s: usize, values: &pdce_dfa::BitVec| net.eval(s, values);
        let NetworkSolution {
            values,
            evaluations,
        } = solve_greatest_seeded(
            net.num_slots,
            &net.dependents(),
            &priority,
            &seed,
            &dirty_slots,
            eval,
        );

        FaintSolution {
            num_vars: net.num_vars,
            offsets: offsets.to_vec(),
            values,
            next: du.next().clone(),
            evaluations,
        }
    }

    fn instr_index(&self, n: NodeId, stmt_idx: usize) -> usize {
        self.offsets[n.index()] + stmt_idx
    }

    /// `N-FAINT` of variable `v` at statement `k` of block `n` (the
    /// terminator is statement index `block.stmts.len()`).
    pub fn faint_before(&self, n: NodeId, k: usize, v: Var) -> bool {
        self.values
            .get(self.instr_index(n, k) * self.num_vars + v.index())
    }

    /// `X-FAINT` of variable `v` immediately after statement `k` of
    /// block `n`.
    pub fn faint_after(&self, n: NodeId, k: usize, v: Var) -> bool {
        let instr = self.instr_index(n, k);
        self.next
            .neighbors(instr)
            .iter()
            .all(|&nu| self.values.get(nu as usize * self.num_vars + v.index()))
    }

    /// `N-FAINT` of `v` at the entry of block `n`.
    pub fn faint_at_entry(&self, n: NodeId, v: Var) -> bool {
        self.faint_before(n, 0, v)
    }

    /// Number of slot evaluations (for the Section 6.1.2 experiments).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::Stmt;

    fn var(p: &Program, name: &str) -> Var {
        p.vars().lookup(name).unwrap()
    }

    /// Figure 9: `x := x + 1` inside a loop, never observed: faint
    /// (though not dead, cf. dead.rs tests).
    #[test]
    fn fig9_self_increment_is_faint() {
        let p = parse(
            "prog {
               block s { goto l }
               block l { x := x + 1; nondet l x2 }
               block x2 { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let f = FaintSolution::compute(&p, &CfgView::new(&p));
        let l = p.block_by_name("l").unwrap();
        assert!(f.faint_after(l, 0, var(&p, "x")));
        assert!(f.faint_at_entry(l, var(&p, "x")));
    }

    /// The Horwitz/Demers/Teitelbaum-style chain: `y := x` where y is
    /// itself unused — both x's definition and the copy are faint.
    #[test]
    fn faint_chains_propagate() {
        let p = parse(
            "prog {
               block s { x := 1; y := x; goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let f = FaintSolution::compute(&p, &CfgView::new(&p));
        let s = p.entry();
        assert!(f.faint_after(s, 0, var(&p, "x")), "x only feeds faint y");
        assert!(f.faint_after(s, 1, var(&p, "y")));
    }

    #[test]
    fn relevant_use_defeats_faintness() {
        let p = parse(
            "prog {
               block s { x := 1; y := x; out(y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let f = FaintSolution::compute(&p, &CfgView::new(&p));
        let s = p.entry();
        assert!(!f.faint_after(s, 0, var(&p, "x")));
        assert!(!f.faint_after(s, 1, var(&p, "y")));
        assert!(
            f.faint_after(s, 2, var(&p, "y")),
            "after out(y), y is faint"
        );
    }

    #[test]
    fn branch_condition_is_relevant() {
        let p = parse(
            "prog {
               block s { x := 1; if x < 2 then t else e }
               block t { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let f = FaintSolution::compute(&p, &CfgView::new(&p));
        assert!(!f.faint_after(p.entry(), 0, var(&p, "x")));
    }

    #[test]
    fn dead_implies_faint_on_example() {
        use crate::dead::DeadSolution;
        use pdce_ir::CfgView;
        let p = parse(
            "prog {
               block s { a := 1; b := a + 2; out(b); nondet l e }
               block l { c := c + b; nondet l e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let d = DeadSolution::compute(&p, &view);
        let f = FaintSolution::compute(&p, &CfgView::new(&p));
        for n in p.node_ids() {
            for (k, stmt) in p.block(n).stmts.iter().enumerate() {
                if let Some(lhs) = stmt.modified() {
                    if d.dead_after(&p, n, k, lhs) {
                        assert!(
                            f.faint_after(n, k, lhs),
                            "dead ⟹ faint violated at {}[{}]",
                            p.block(n).name,
                            k
                        );
                    }
                }
            }
        }
    }

    /// Figure 12 seen through faintness: both `a := ...` (used only by a
    /// dead assignment) and the dead `y := a+b` are faint simultaneously
    /// — a first-order effect for PFE (Section 4.4).
    #[test]
    fn fig12_both_assignments_faint_simultaneously() {
        let p = parse(
            "prog {
               block s  { a := c + 1; nondet n3 n4 }
               block n3 { goto n5 }
               block n4 { y := a + b; goto n5 }
               block n5 { y := c + d; out(y); goto e }
               block e  { halt }
             }",
        )
        .unwrap();
        let f = FaintSolution::compute(&p, &CfgView::new(&p));
        let s = p.entry();
        let n4 = p.block_by_name("n4").unwrap();
        assert!(f.faint_after(s, 0, var(&p, "a")));
        assert!(f.faint_after(n4, 0, var(&p, "y")));
    }

    #[test]
    fn mutual_recursion_between_faint_variables() {
        // x feeds y, y feeds x, neither observed: both faint (greatest
        // fixpoint keeps the self-supporting cycle).
        let p = parse(
            "prog {
               block s { goto l }
               block l { x := y + 1; y := x + 1; nondet l d }
               block d { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let f = FaintSolution::compute(&p, &CfgView::new(&p));
        let l = p.block_by_name("l").unwrap();
        assert!(f.faint_after(l, 0, var(&p, "x")));
        assert!(f.faint_after(l, 1, var(&p, "y")));
    }

    #[test]
    fn strategies_agree_on_faint_values() {
        let p = parse(
            "prog {
               block s  { a := c + 1; nondet n3 n4 }
               block n3 { goto n5 }
               block n4 { y := a + b; goto n5 }
               block n5 { y := c + d; out(y); nondet n4 e }
               block e  { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let fifo =
            pdce_dfa::with_strategy(SolverStrategy::Fifo, || FaintSolution::compute(&p, &view));
        let prio = pdce_dfa::with_strategy(SolverStrategy::Priority, || {
            FaintSolution::compute(&p, &view)
        });
        let sparse =
            pdce_dfa::with_strategy(SolverStrategy::Sparse, || FaintSolution::compute(&p, &view));
        assert_eq!(fifo.values, prio.values);
        assert_eq!(fifo.values, sparse.values);
        assert!(prio.evaluations <= fifo.evaluations);
    }

    #[test]
    fn seeded_recompute_matches_cold_after_stmt_edit() {
        let mut p = parse(
            "prog {
               block s  { a := c + 1; nondet n3 n4 }
               block n3 { goto n5 }
               block n4 { y := a + b; goto n5 }
               block n5 { y := c + d; out(y); nondet n4 e }
               block e  { halt }
             }",
        )
        .unwrap();
        let prev = FaintSolution::compute(&p, &CfgView::new(&p));
        // Remove `out(y)` from n5: faintness changes ripple through the
        // loop back into n4 and s. The edit changes n5's length, which
        // the per-block remapping must absorb.
        let n5 = p.block_by_name("n5").unwrap();
        p.stmts_mut(n5).pop();
        let view = CfgView::new(&p);
        let cold = FaintSolution::compute(&p, &view);
        let warm = FaintSolution::compute_seeded(&p, &view, &prev, &[n5]);
        for n in p.node_ids() {
            for k in 0..=p.block(n).stmts.len() {
                for v in 0..p.num_vars() {
                    let v = Var::from_index(v);
                    assert_eq!(
                        cold.faint_before(n, k, v),
                        warm.faint_before(n, k, v),
                        "N-FAINT mismatch at {}[{}] var {:?}",
                        p.block(n).name,
                        k,
                        v
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_recompute_with_incompatible_shape_solves_cold() {
        let mut p = parse("prog { block s { x := 1; goto e } block e { halt } }").unwrap();
        let prev = FaintSolution::compute(&p, &CfgView::new(&p));
        // Growing the variable universe invalidates the slot layout; the
        // seeded path must detect it and fall back.
        let y = p.var("freshvar");
        let one = p.terms_mut().constant(1);
        let s = p.entry();
        p.stmts_mut(s).push(Stmt::Assign { lhs: y, rhs: one });
        let view = CfgView::new(&p);
        let cold = FaintSolution::compute(&p, &view);
        let warm = FaintSolution::compute_seeded(&p, &view, &prev, &[s]);
        assert_eq!(cold.values, warm.values);
    }

    #[test]
    fn observed_cycle_is_not_faint() {
        let p = parse(
            "prog {
               block s { goto l }
               block l { x := y + 1; y := x + 1; nondet l d }
               block d { out(y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let f = FaintSolution::compute(&p, &CfgView::new(&p));
        let l = p.block_by_name("l").unwrap();
        assert!(!f.faint_after(l, 0, var(&p, "x")));
        assert!(!f.faint_after(l, 1, var(&p, "y")));
    }
}
