//! Partial dead code elimination — Knoop, Rüthing & Steffen, PLDI 1994.
//!
//! This crate implements the paper's contribution in full:
//!
//! * [`dead`] — the dead-variable analysis of Table 1 (bit-vector),
//! * [`faint`] — the faint-variable analysis of Table 1 (slotwise),
//! * [`local`] + [`patterns`] — sinking candidates and the local
//!   predicates `LOCDELAYED`/`LOCBLOCKED` (Figure 13),
//! * [`delay`] — the delayability analysis and insertion points of
//!   Table 2,
//! * [`elim`] — the dead/faint code elimination step,
//! * [`sink`] — the assignment-sinking transformation `ask`,
//! * [`driver`] — the global fixpoint loop `pde`/`pfe` (Section 5) with
//!   statistics for the Section 6 complexity experiments,
//! * [`better`] — the `better` relation of Definition 3.6 (per-path
//!   assignment-pattern counts), used to validate improvement and
//!   optimality,
//! * [`universe`] — a bounded brute-force enumeration of the universe
//!   `G_T` of Definition 3.5, used to cross-check Theorem 5.2's
//!   optimality claim on small programs.
//!
//! # Example
//!
//! ```
//! use pdce_core::driver::pde;
//! use pdce_ir::parser::parse;
//!
//! // Figure 1 of the paper.
//! let mut prog = parse(
//!     "prog {
//!        block s  { goto n1 }
//!        block n1 { y := a + b; nondet n2 n3 }
//!        block n2 { out(y); goto n4 }
//!        block n3 { y := 4; goto n4 }
//!        block n4 { out(y); goto e }
//!        block e  { halt }
//!      }",
//! )?;
//! let stats = pde(&mut prog)?;
//! // The partially dead `y := a + b` was sunk and its dead copy removed.
//! assert_eq!(stats.eliminated_assignments, 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod better;
pub mod dead;
pub mod delay;
pub mod driver;
pub mod elim;
pub mod faint;
pub mod local;
pub mod passes;
pub mod patterns;
pub mod sink;
pub mod tv;
pub mod universe;

pub use better::{check_improvement, DominanceReport};
pub use dead::DeadSolution;
pub use delay::DelayInfo;
pub use driver::{
    optimize, optimize_resilient, optimize_with_cache, pde, pfe, DegradedMode, PdceConfig,
    PdceError, PdceStats,
};
pub use elim::{eliminate_fixpoint, eliminate_once, Mode};
pub use faint::FaintSolution;
pub use local::LocalInfo;
pub use passes::{DcePass, FcePass, PdePass, PfePass, SinkPass};
pub use patterns::PatternTable;
pub use sink::{sink_assignments, sinking_is_stable, SinkOutcome};
