//! Local predicates of the delayability analysis (Table 2) and sinking
//! candidates (Figure 13).
//!
//! A *sinking candidate* of pattern `α ≡ x := t` in block `n` is an
//! occurrence of `α` that is not followed (within `n`, terminator
//! included) by any instruction blocking `α`: no modification of an
//! operand of `t`, no use of `x`, no modification of `x`. Among several
//! occurrences of the same pattern at most the *last* one can be a
//! candidate, since every occurrence blocks its predecessors (it modifies
//! `x`).

use pdce_dfa::BitVec;
use pdce_ir::{NodeId, Program};

use crate::patterns::PatternTable;

/// Per-block local information feeding Table 2.
#[derive(Debug, Clone)]
pub struct LocalInfo {
    /// `LOCDELAYED_n(α)`: block `n` contains a sinking candidate of `α`.
    pub locdelayed: Vec<BitVec>,
    /// `LOCBLOCKED_n(α)`: some instruction of `n` blocks `α`.
    pub locblocked: Vec<BitVec>,
    /// For each block, the `(stmt index, pattern index)` pairs of its
    /// sinking candidates, in statement order.
    pub candidates: Vec<Vec<(usize, usize)>>,
}

impl LocalInfo {
    /// Computes the local predicates for every block of `prog`.
    #[allow(clippy::needless_range_loop)] // p is a pattern index, not just a subscript
    pub fn compute(prog: &Program, table: &PatternTable) -> LocalInfo {
        let nblocks = prog.num_blocks();
        let width = table.len();
        let mut locdelayed = vec![BitVec::zeros(width); nblocks];
        let mut locblocked = vec![BitVec::zeros(width); nblocks];
        let mut candidates = vec![Vec::new(); nblocks];

        for n in prog.node_ids() {
            let block = prog.block(n);
            // `open[p]` holds the statement index of the most recent
            // occurrence of pattern p not yet blocked by anything after it.
            let mut open: Vec<Option<usize>> = vec![None; width];
            for (k, stmt) in block.stmts.iter().enumerate() {
                // A new instruction first blocks open occurrences...
                for p in 0..width {
                    if table.stmt_blocks(prog, p, stmt) {
                        locblocked[n.index()].set(p, true);
                        open[p] = None;
                    }
                }
                // ...then may itself open a fresh occurrence. (Order
                // matters: an occurrence of α blocks *earlier* instances
                // but is itself a live candidate afterwards.)
                if let Some(p) = table.index_of_stmt(stmt) {
                    open[p] = Some(k);
                }
            }
            // The terminator can still block trailing occurrences.
            for p in 0..width {
                if table.terminator_blocks(prog, p, &block.term) {
                    locblocked[n.index()].set(p, true);
                    open[p] = None;
                }
            }
            let mut cands: Vec<(usize, usize)> = open
                .iter()
                .enumerate()
                .filter_map(|(p, k)| k.map(|k| (k, p)))
                .collect();
            cands.sort_unstable();
            for &(_, p) in &cands {
                locdelayed[n.index()].set(p, true);
            }
            candidates[n.index()] = cands;
        }

        LocalInfo {
            locdelayed,
            locblocked,
            candidates,
        }
    }

    /// Sinking candidates of block `n` as `(stmt index, pattern index)`.
    pub fn candidates_of(&self, n: NodeId) -> &[(usize, usize)] {
        &self.candidates[n.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn info(src: &str) -> (pdce_ir::Program, PatternTable, LocalInfo) {
        let p = parse(src).unwrap();
        let t = PatternTable::build(&p);
        let i = LocalInfo::compute(&p, &t);
        (p, t, i)
    }

    /// Figure 13 (left block): `y := a+b; a := c; x := 3*y` — the
    /// occurrence of `y := a+b` is followed by `a := c` (modifies operand
    /// `a`), so it is *not* a candidate.
    #[test]
    fn fig13_first_block_has_no_y_ab_candidate() {
        let (p, t, i) = info(
            "prog {
               block s { y := a + b; a := c; x := 3 * y; goto e }
               block e { halt }
             }",
        );
        let y_ab = (0..t.len())
            .find(|&k| t.key(k).as_str() == "y := a + b")
            .unwrap();
        assert!(!i.locdelayed[p.entry().index()].get(y_ab));
        assert!(i.locblocked[p.entry().index()].get(y_ab));
        // `x := 3*y` is a candidate: nothing after it blocks it.
        let x_3y = (0..t.len())
            .find(|&k| t.key(k).as_str() == "x := 3 * y")
            .unwrap();
        assert!(i.locdelayed[p.entry().index()].get(x_3y));
    }

    /// Figure 13 (right block): with a second occurrence
    /// `y := a+b; a := c; x := 3*y; y := a+b; a := d`, the trailing
    /// `a := d` modifies operand `a`, blocking even the last occurrence.
    #[test]
    fn fig13_second_block_trailing_mod_blocks_last_occurrence() {
        let (p, t, i) = info(
            "prog {
               block s { y := a + b; a := c; x := 3 * y; y := a + b; a := d; goto e }
               block e { halt }
             }",
        );
        let y_ab = (0..t.len())
            .find(|&k| t.key(k).as_str() == "y := a + b")
            .unwrap();
        assert!(!i.locdelayed[p.entry().index()].get(y_ab));
        // `a := d` itself is a trailing candidate.
        let a_d = (0..t.len())
            .find(|&k| t.key(k).as_str() == "a := d")
            .unwrap();
        assert!(i.locdelayed[p.entry().index()].get(a_d));
        assert_eq!(
            i.candidates_of(p.entry())
                .iter()
                .map(|&(k, _)| k)
                .collect::<Vec<_>>(),
            vec![4]
        );
    }

    /// Without the trailing modification the last occurrence is the
    /// candidate — "at most the last one" (Figure 13's point).
    #[test]
    fn only_last_occurrence_is_candidate() {
        let (p, t, i) = info(
            "prog {
               block s { y := a + b; skip; y := a + b; goto e }
               block e { halt }
             }",
        );
        let y_ab = (0..t.len())
            .find(|&k| t.key(k).as_str() == "y := a + b")
            .unwrap();
        assert!(i.locdelayed[p.entry().index()].get(y_ab));
        assert_eq!(i.candidates_of(p.entry()), &[(2, y_ab)]);
        // The pattern is also locally blocked (the second occurrence
        // blocks the first by modifying y).
        assert!(i.locblocked[p.entry().index()].get(y_ab));
    }

    #[test]
    fn terminator_condition_blocks_candidates() {
        let (p, _t, i) = info(
            "prog {
               block s { x := a + b; if x < 3 then t else e }
               block t { goto e }
               block e { halt }
             }",
        );
        assert!(!i.locdelayed[p.entry().index()].get(0));
        assert!(i.locblocked[p.entry().index()].get(0));
        assert!(i.candidates_of(p.entry()).is_empty());
    }

    #[test]
    fn relevant_statement_blocks() {
        let (p, _t, i) = info("prog { block s { x := a; out(x); goto e } block e { halt } }");
        assert!(!i.locdelayed[p.entry().index()].get(0));
        assert!(i.locblocked[p.entry().index()].get(0));
    }

    #[test]
    fn independent_patterns_are_both_candidates() {
        let (p, t, i) = info(
            "prog {
               block s { x := a + 1; y := b + 2; goto e }
               block e { halt }
             }",
        );
        assert_eq!(i.candidates_of(p.entry()).len(), 2);
        assert_eq!(i.locdelayed[p.entry().index()].count_ones(), 2);
        // Neither blocks the other, but each occurrence blocks its own
        // pattern (it modifies its left-hand side).
        assert_eq!(i.locblocked[p.entry().index()].count_ones(), 2);
        let _ = t;
    }

    #[test]
    fn empty_blocks_have_no_predicates() {
        let (p, _t, i) =
            info("prog { block s { goto m } block m { x := 1; goto e } block e { halt } }");
        assert!(i.locdelayed[p.entry().index()].none());
        assert!(i.locblocked[p.entry().index()].none());
        assert!(i.candidates_of(p.entry()).is_empty());
    }

    #[test]
    fn self_referential_assignment_is_candidate_when_unblocked() {
        // x := x + 1 at the end of a block: candidate (nothing follows).
        let (p, _t, i) = info("prog { block s { x := x + 1; goto e } block e { halt } }");
        assert_eq!(i.candidates_of(p.entry()), &[(0, 0)]);
    }
}
