//! [`Pass`] adapters for the paper's transformations, so that dce, fce,
//! `ask`, and the full `pde`/`pfe` drivers compose in the workspace-wide
//! pass pipeline alongside the baselines, LCM, and the SSA passes.

use pdce_dfa::{AnalysisCache, Pass, PassOutcome, Preserves};
use pdce_ir::edgesplit::{has_critical_edges, split_critical_edges};
use pdce_ir::Program;

use crate::driver::{optimize_with_cache, PdceConfig};
use crate::elim::{eliminate_fixpoint_cached, Mode};
use crate::sink::sink_assignments_cached;

fn elim_outcome(removed: u64) -> PassOutcome {
    if removed == 0 {
        PassOutcome::unchanged()
    } else {
        PassOutcome {
            changed: true,
            removed,
            preserves: Preserves::Cfg,
            ..PassOutcome::default()
        }
    }
}

/// Iterated dead code elimination (`dce` to its fixpoint, capturing the
/// Figure 12 elimination–elimination effects).
pub struct DcePass;

impl Pass for DcePass {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let (removed, _) = eliminate_fixpoint_cached(prog, cache, Mode::Dead, None);
        elim_outcome(removed)
    }
}

/// Iterated faint code elimination (`fce` to its fixpoint).
pub struct FcePass;

impl Pass for FcePass {
    fn name(&self) -> &'static str {
        "fce"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let (removed, _) = eliminate_fixpoint_cached(prog, cache, Mode::Faint, None);
        elim_outcome(removed)
    }
}

/// One assignment-sinking pass (`ask`). Splits critical edges first when
/// necessary, which is the one CFG-shape change in this crate.
pub struct SinkPass;

impl Pass for SinkPass {
    fn name(&self) -> &'static str {
        "sink"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let mut out = PassOutcome::unchanged();
        if has_critical_edges(prog) {
            split_critical_edges(prog);
            out.merge(&PassOutcome {
                changed: true,
                preserves: Preserves::Nothing,
                ..PassOutcome::default()
            });
        }
        let sunk =
            sink_assignments_cached(prog, cache, None).expect("critical edges were just split");
        if sunk.changed {
            out.merge(&PassOutcome {
                changed: true,
                removed: sunk.removed,
                inserted: sunk.inserted,
                preserves: Preserves::Cfg,
                ..PassOutcome::default()
            });
        }
        out
    }
}

/// A full driver run as a single pipeline pass.
fn run_driver(config: &PdceConfig, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
    let before = prog.revision();
    let stats = optimize_with_cache(prog, config, cache)
        .expect("the default driver configuration cannot hit the round cap (Theorem 3.7)");
    if prog.revision() == before {
        return PassOutcome::unchanged();
    }
    PassOutcome {
        changed: true,
        removed: stats.eliminated_assignments + stats.sunk_assignments,
        inserted: stats.inserted_assignments,
        // The driver may have split critical edges; the cache itself was
        // kept consistent internally either way.
        preserves: if stats.synthetic_blocks == 0 {
            Preserves::Cfg
        } else {
            Preserves::Nothing
        },
        ..PassOutcome::default()
    }
}

/// Partial dead code elimination: the full `pde` driver (Section 5.1).
pub struct PdePass;

impl Pass for PdePass {
    fn name(&self) -> &'static str {
        "pde"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        run_driver(&PdceConfig::pde(), prog, cache)
    }
}

/// Partial faint code elimination: the full `pfe` driver (Section 5.1).
pub struct PfePass;

impl Pass for PfePass {
    fn name(&self) -> &'static str {
        "pfe"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        run_driver(&PdceConfig::pfe(), prog, cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn fig1() -> Program {
        parse(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        )
        .unwrap()
    }

    #[test]
    fn pde_pass_runs_the_driver() {
        let mut p = fig1();
        let mut cache = AnalysisCache::new();
        let out = PdePass.run(&mut p, &mut cache);
        assert!(out.changed);
        assert!(out.removed >= 2); // sunk candidate(s) + the dead copy
        let again = PdePass.run(&mut p, &mut cache);
        assert!(!again.changed);
        assert_eq!(again.preserves, Preserves::All);
    }

    #[test]
    fn sink_pass_splits_edges_when_needed() {
        let mut p = parse(
            "prog {
               block s  { x := 1; nondet a j }
               block a  { goto j }
               block j  { out(x); goto e }
               block e  { halt }
             }",
        )
        .unwrap();
        let blocks = p.num_blocks();
        let mut cache = AnalysisCache::new();
        let out = SinkPass.run(&mut p, &mut cache);
        assert!(out.changed);
        assert!(p.num_blocks() > blocks, "critical edge was split");
        assert_eq!(out.preserves, Preserves::Nothing);
    }

    #[test]
    fn dce_and_fce_report_removals() {
        let src = "prog { block s { x := 1; y := 2; out(y); goto e } block e { halt } }";
        let mut p = parse(src).unwrap();
        let out = DcePass.run(&mut p, &mut AnalysisCache::new());
        assert_eq!(out.removed, 1);
        assert_eq!(out.preserves, Preserves::Cfg);
        let mut p = parse(src).unwrap();
        let out = FcePass.run(&mut p, &mut AnalysisCache::new());
        assert_eq!(out.removed, 1);
    }
}
