//! Dense indexing of the assignment patterns `AP` of a program.
//!
//! The delayability analysis of Table 2 works on "bit-vectors of sinking
//! candidates", one bit per assignment pattern occurring in the program.
//! [`PatternTable`] assigns each distinct pattern `x := t` a dense index
//! (stable for the lifetime of one analysis round) and answers the
//! blocking queries that the local predicates are built from.

use std::collections::HashMap;

use pdce_ir::{PatternKey, Program, Stmt, TermId, Terminator, Var};

/// Dense table of the assignment patterns occurring in a program.
#[derive(Debug, Clone)]
pub struct PatternTable {
    patterns: Vec<(Var, TermId)>,
    keys: Vec<PatternKey>,
    index: HashMap<(Var, TermId), usize>,
}

impl PatternTable {
    /// Collects all assignment patterns of `prog`, in canonical-key order
    /// so that indices (and hence insertion order during sinking) are
    /// deterministic.
    pub fn build(prog: &Program) -> PatternTable {
        let mut pairs: Vec<(Var, TermId)> = Vec::new();
        let mut seen: HashMap<(Var, TermId), ()> = HashMap::new();
        for n in prog.node_ids() {
            for stmt in &prog.block(n).stmts {
                if let Stmt::Assign { lhs, rhs } = *stmt {
                    if seen.insert((lhs, rhs), ()).is_none() {
                        pairs.push((lhs, rhs));
                    }
                }
            }
        }
        let mut keyed: Vec<(PatternKey, (Var, TermId))> = pairs
            .into_iter()
            .map(|(v, t)| (PatternKey::of(prog, v, t), (v, t)))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));
        let mut patterns = Vec::with_capacity(keyed.len());
        let mut keys = Vec::with_capacity(keyed.len());
        let mut index = HashMap::with_capacity(keyed.len());
        for (i, (key, pat)) in keyed.into_iter().enumerate() {
            index.insert(pat, i);
            patterns.push(pat);
            keys.push(key);
        }
        PatternTable {
            patterns,
            keys,
            index,
        }
    }

    /// Number of distinct patterns (the paper's `a`).
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the program has no assignments.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The pattern `(lhs, rhs)` at `index`.
    pub fn pattern(&self, index: usize) -> (Var, TermId) {
        self.patterns[index]
    }

    /// All patterns in index order (e.g. for comparing two tables).
    pub fn pairs(&self) -> &[(Var, TermId)] {
        &self.patterns
    }

    /// The canonical key of the pattern at `index`.
    pub fn key(&self, index: usize) -> &PatternKey {
        &self.keys[index]
    }

    /// Index of the pattern of an assignment statement, if it is one.
    pub fn index_of_stmt(&self, stmt: &Stmt) -> Option<usize> {
        match *stmt {
            Stmt::Assign { lhs, rhs } => self.index.get(&(lhs, rhs)).copied(),
            _ => None,
        }
    }

    /// Index of a pattern by parts.
    pub fn index_of(&self, lhs: Var, rhs: TermId) -> Option<usize> {
        self.index.get(&(lhs, rhs)).copied()
    }

    /// Whether statement `stmt` *blocks* the sinking of pattern `p`
    /// (Definition 3.1 discussion): it modifies an operand of `t`, uses
    /// `x`, or modifies `x`.
    pub fn stmt_blocks(&self, prog: &Program, p: usize, stmt: &Stmt) -> bool {
        let (x, t) = self.patterns[p];
        if stmt.uses(prog.terms(), x) {
            return true;
        }
        match stmt.modified() {
            Some(m) => m == x || prog.terms().term_uses(t, m),
            None => false,
        }
    }

    /// Whether the terminator blocks pattern `p`. Only conditional
    /// branches read variables (the condition is a relevant use); no
    /// terminator modifies anything.
    pub fn terminator_blocks(&self, prog: &Program, p: usize, term: &Terminator) -> bool {
        let (x, _) = self.patterns[p];
        term.used_term()
            .is_some_and(|c| prog.terms().term_uses(c, x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    #[test]
    fn builds_deterministic_dense_indices() {
        let p = parse(
            "prog {
               block s { y := a + b; x := a; y := a + b; goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let table = PatternTable::build(&p);
        assert_eq!(table.len(), 2);
        // Canonical order: "x := a" < "y := a + b".
        assert_eq!(table.key(0).as_str(), "x := a");
        assert_eq!(table.key(1).as_str(), "y := a + b");
        let s0 = &p.block(p.entry()).stmts[0];
        assert_eq!(table.index_of_stmt(s0), Some(1));
        assert_eq!(table.index_of_stmt(&Stmt::Skip), None);
    }

    #[test]
    fn blocking_rules() {
        let p = parse(
            "prog {
               block s { y := a + b; a := 1; z := y; y := 2; skip; out(c); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let table = PatternTable::build(&p);
        let y_ab = table
            .index_of(p.vars().lookup("y").unwrap(), {
                let Stmt::Assign { rhs, .. } = p.block(p.entry()).stmts[0] else {
                    unreachable!()
                };
                rhs
            })
            .unwrap();
        let stmts = &p.block(p.entry()).stmts;
        // a := 1 modifies an operand of a+b.
        assert!(table.stmt_blocks(&p, y_ab, &stmts[1]));
        // z := y uses y.
        assert!(table.stmt_blocks(&p, y_ab, &stmts[2]));
        // y := 2 modifies y.
        assert!(table.stmt_blocks(&p, y_ab, &stmts[3]));
        // skip blocks nothing.
        assert!(!table.stmt_blocks(&p, y_ab, &stmts[4]));
        // out(c) does not touch y, a, b.
        assert!(!table.stmt_blocks(&p, y_ab, &stmts[5]));
        // The occurrence itself blocks the pattern (modifies y).
        assert!(table.stmt_blocks(&p, y_ab, &stmts[0]));
    }

    #[test]
    fn terminator_blocking() {
        let p = parse(
            "prog {
               block s { x := a + b; if x < 3 then t else e }
               block t { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let table = PatternTable::build(&p);
        let term = &p.block(p.entry()).term;
        assert!(table.terminator_blocks(&p, 0, term));
        let goto = &p.block(p.block_by_name("t").unwrap()).term;
        assert!(!table.terminator_blocks(&p, 0, goto));
    }

    #[test]
    fn out_relevant_statement_blocks_pattern_variable() {
        let p = parse("prog { block s { x := a; out(x + 1); goto e } block e { halt } }").unwrap();
        let table = PatternTable::build(&p);
        let out = &p.block(p.entry()).stmts[1];
        assert!(table.stmt_blocks(&p, 0, out));
    }
}
