//! The assignment-sinking transformation `ask` (Section 5.3).
//!
//! One pass: compute sinking candidates and the delayability solution,
//! then
//!
//! 1. remove every sinking candidate, and
//! 2. insert an instance of every pattern `α` at the entry of each block
//!    with `N-INSERT_n(α)` and at the exit of each block with
//!    `X-INSERT_n(α)`.
//!
//! Patterns inserted at the same point are independent (the paper's
//! observation before "The Insertion Step"), so they are placed in
//! pattern-index order for determinism. The program must be free of
//! critical edges; otherwise `X-INSERT` could demand an insertion at the
//! exit of a branching node, which is unsound (Figure 8).

use std::error::Error;
use std::fmt;

use pdce_dfa::{AnalysisCache, Preserves};
use pdce_ir::edgesplit::has_critical_edges;
use pdce_ir::{Program, Stmt, TermId, Var};

use crate::delay::DelayInfo;
use crate::local::LocalInfo;
use crate::patterns::PatternTable;

/// Cached delayability solution together with the inputs it was derived
/// under. The delay fixpoint depends on the pattern indexing and the
/// region mask, not just the program revision, so both are recorded and
/// checked before the cache entry (fresh or stale) is trusted.
struct CachedDelay {
    patterns: Vec<(Var, TermId)>,
    region: Option<Vec<bool>>,
    info: DelayInfo,
}

/// Outcome of one `ask` pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkOutcome {
    /// Sinking candidates removed.
    pub removed: u64,
    /// Pattern instances inserted.
    pub inserted: u64,
    /// Whether any block's statement list changed structurally.
    pub changed: bool,
}

/// `ask` was called on a program that still has critical edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalEdgeError;

impl fmt::Display for CriticalEdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "assignment sinking requires critical edges to be split first"
        )
    }
}

impl Error for CriticalEdgeError {}

/// Runs one assignment-sinking pass over `prog`.
///
/// # Errors
///
/// Returns [`CriticalEdgeError`] if the program has critical edges; call
/// [`pdce_ir::edgesplit::split_critical_edges`] first (the driver does).
///
/// # Example
///
/// ```
/// use pdce_core::sink_assignments;
/// use pdce_ir::parser::parse;
///
/// // The assignment sinks to its use.
/// let mut prog = parse(
///     "prog { block s { x := a + 1; goto m } block m { out(x); goto e }
///             block e { halt } }",
/// )?;
/// let outcome = sink_assignments(&mut prog)?;
/// assert_eq!(outcome.removed, 1);
/// assert!(prog.block(prog.entry()).stmts.is_empty());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn sink_assignments(prog: &mut Program) -> Result<SinkOutcome, CriticalEdgeError> {
    sink_assignments_in(prog, None)
}

/// Runs one sinking pass restricted to a *hot region* (Section 7's
/// localization heuristic): only blocks whose index is allowed (or all
/// blocks, when `region` is `None`) contribute sinking candidates, and
/// disallowed blocks are treated as fully blocking, so no instance
/// moves through, out of, or originates in them. Insertions may land at
/// the entry of a boundary block, which is sound (the instance simply
/// stops at the region border).
///
/// # Errors
///
/// Returns [`CriticalEdgeError`] if the program has critical edges.
pub fn sink_assignments_in(
    prog: &mut Program,
    region: Option<&[bool]>,
) -> Result<SinkOutcome, CriticalEdgeError> {
    sink_assignments_cached(prog, &mut AnalysisCache::new(), region)
}

/// [`sink_assignments_in`] sharing analyses through an
/// [`AnalysisCache`]: the `CfgView` and [`PatternTable`] are served
/// from `cache` when still valid (the elimination step that precedes
/// sinking in the driver leaves both alive, so a driver round builds the
/// view exactly once). Blocks whose statement list would be rewritten
/// identically are left untouched, so a stable program keeps its
/// revision — and its cache — intact.
///
/// # Errors
///
/// Returns [`CriticalEdgeError`] if the program has critical edges.
pub fn sink_assignments_cached(
    prog: &mut Program,
    cache: &mut AnalysisCache,
    region: Option<&[bool]>,
) -> Result<SinkOutcome, CriticalEdgeError> {
    if has_critical_edges(prog) {
        return Err(CriticalEdgeError);
    }
    let trace_span = pdce_trace::span("transform", "sink");
    let view = cache.cfg(prog);
    let table = cache.analysis::<PatternTable, _>(prog, |p, _| PatternTable::build(p));
    if table.is_empty() {
        return Ok(SinkOutcome::default());
    }
    let mut local = LocalInfo::compute(prog, &table);
    if let Some(allowed) = region {
        assert_eq!(allowed.len(), prog.num_blocks(), "region mask length");
        for n in prog.node_ids() {
            if !allowed[n.index()] {
                local.locdelayed[n.index()].fill(false);
                local.locblocked[n.index()].fill(true);
                local.candidates[n.index()].clear();
            }
        }
    }
    let region_key: Option<Vec<bool>> = region.map(<[bool]>::to_vec);
    let cached = {
        let table = table.clone();
        let local = &local;
        let region_key = region_key.clone();
        cache.analysis_seeded::<CachedDelay, _>(prog, move |p, v, seed| {
            let info = match seed {
                Some((prev, delta))
                    if prev.patterns.as_slice() == table.pairs() && prev.region == region_key =>
                {
                    DelayInfo::compute_seeded(p, v, &table, local, &prev.info, delta.dirty_blocks())
                }
                _ => DelayInfo::compute(p, v, &table, local),
            };
            CachedDelay {
                patterns: table.pairs().to_vec(),
                region: region_key,
                info,
            }
        })
    };
    // A fresh cache hit may have been produced under a different region
    // mask (or pattern indexing); it must not be trusted blindly.
    let delay_direct;
    let delay: &DelayInfo =
        if cached.patterns.as_slice() == table.pairs() && cached.region == region_key {
            &cached.info
        } else {
            delay_direct = DelayInfo::compute(prog, &view, &table, &local);
            &delay_direct
        };

    let mut outcome = SinkOutcome::default();
    for n in prog.node_ids() {
        // Unreachable blocks (possible when a prior pass folded a branch
        // and simplify_cfg has not run yet) are outside the paper's
        // program model; the solver never evaluates them, so their
        // optimistic all-ones state must not drive transformations.
        if view.rpo_index(n) == usize::MAX {
            continue;
        }
        let entry_ins = delay.entry_insertions(n);
        let exit_ins = delay.exit_insertions(n);
        let candidates = local.candidates_of(n);
        if entry_ins.is_empty() && exit_ins.is_empty() && candidates.is_empty() {
            continue;
        }
        debug_assert!(
            exit_ins.is_empty() || view.succs(n).len() <= 1,
            "X-INSERT at branching node {} — critical edge left unsplit?",
            prog.block(n).name
        );

        let make = |p: usize| {
            let (lhs, rhs) = table.pattern(p);
            Stmt::Assign { lhs, rhs }
        };
        let old = &prog.block(n).stmts;
        let mut new_stmts = Vec::with_capacity(old.len() + entry_ins.len() + exit_ins.len());
        new_stmts.extend(entry_ins.iter().map(|&p| make(p)));
        let mut doomed = candidates.iter().map(|&(k, _)| k).peekable();
        for (k, stmt) in old.iter().enumerate() {
            if doomed.peek() == Some(&k) {
                doomed.next();
                outcome.removed += 1;
            } else {
                new_stmts.push(*stmt);
            }
        }
        new_stmts.extend(exit_ins.iter().map(|&p| make(p)));
        outcome.inserted += (entry_ins.len() + exit_ins.len()) as u64;
        // Write back only when the list actually differs (a stable block
        // re-derives its own statements: candidates removed and
        // re-inserted in place). Skipping the write keeps the program
        // revision — and therefore the cache — intact.
        if new_stmts != *old {
            if pdce_trace::enabled() {
                // Provenance: candidates leave this block; instances
                // re-materialize at the recorded insertion points (a
                // stable block never reaches here, so no phantom moves
                // are logged).
                let rev = prog.revision();
                let rnd = pdce_trace::round();
                let prov = |action, stmt: &Stmt, detail| pdce_trace::ProvenanceRecord {
                    action,
                    pass: "sink",
                    round: rnd,
                    revision: rev,
                    block: prog.block(n).name.clone(),
                    stmt: pdce_ir::printer::print_stmt(prog, stmt),
                    detail,
                };
                for &(k, _) in candidates {
                    pdce_trace::provenance(prov(
                        pdce_trace::ProvAction::Sunk,
                        &old[k],
                        "sinking candidate",
                    ));
                }
                for &p in &entry_ins {
                    pdce_trace::provenance(prov(
                        pdce_trace::ProvAction::Inserted,
                        &make(p),
                        "entry insertion",
                    ));
                }
                for &p in &exit_ins {
                    pdce_trace::provenance(prov(
                        pdce_trace::ProvAction::Inserted,
                        &make(p),
                        "exit insertion",
                    ));
                }
            }
            outcome.changed = true;
            // `stmts_mut` logs a statement-level change so the next
            // round's analyses can warm-start from this block alone.
            *prog.stmts_mut(n) = new_stmts;
        }
    }
    if outcome.changed {
        // Sinking moves statements between existing blocks; the CFG
        // shape survives.
        cache.retain(prog, Preserves::Cfg);
    }
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![
            ("removed", outcome.removed.into()),
            ("inserted", outcome.inserted.into()),
        ]
    } else {
        Vec::new()
    });
    Ok(outcome)
}

/// Whether a further `ask` pass would leave the program invariant
/// (Section 5.4's termination condition): every block `n` satisfies
/// `N-INSERT_n = false` and `X-INSERT_n = LOCDELAYED_n`.
pub fn sinking_is_stable(prog: &Program) -> bool {
    sinking_is_stable_cached(prog, &mut AnalysisCache::new())
}

/// [`sinking_is_stable`] sharing analyses through an [`AnalysisCache`]
/// (the predicate is read-only, so everything it requests stays cached
/// for later passes).
pub fn sinking_is_stable_cached(prog: &Program, cache: &mut AnalysisCache) -> bool {
    let view = cache.cfg(prog);
    let table = cache.analysis::<PatternTable, _>(prog, |p, _| PatternTable::build(p));
    if table.is_empty() {
        return true;
    }
    let local = LocalInfo::compute(prog, &table);
    let delay = DelayInfo::compute(prog, &view, &table, &local);
    prog.node_ids().all(|n| {
        delay.n_insert[n.index()].none() && delay.x_insert[n.index()] == local.locdelayed[n.index()]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::printer::{diff, structural_eq};

    fn sink(src: &str) -> Program {
        let mut p = parse(src).unwrap();
        sink_assignments(&mut p).unwrap();
        p
    }

    fn expect(got: &Program, want_src: &str) {
        let want = parse(want_src).unwrap();
        assert!(
            structural_eq(got, &want),
            "mismatch after sinking:\n{}",
            diff(got, &want)
        );
    }

    /// Figure 1 → Figure 2's sinking half: `y := a+b` moves from n1 to
    /// the entries of n2 and n3 (the elimination of the dead copy at n3
    /// is dce's job).
    #[test]
    fn fig1_sinks_into_both_successors() {
        let got = sink(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s  { goto n1 }
               block n1 { nondet n2 n3 }
               block n2 { y := a + b; out(y); goto n4 }
               block n3 { y := a + b; y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        );
    }

    #[test]
    fn one_sided_join_inserts_at_exit() {
        let got = sink(
            "prog {
               block s  { nondet l r }
               block l  { x := a + 1; skip; goto j }
               block r  { goto j }
               block j  { out(x); goto e }
               block e  { halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s  { nondet l r }
               block l  { skip; x := a + 1; goto j }
               block r  { goto j }
               block j  { out(x); goto e }
               block e  { halt }
             }",
        );
    }

    /// Sinking towards loop exits: after splitting the critical back
    /// edge, one `ask` pass moves the loop-header assignment into the
    /// synthetic repeat block `S_h_h` and the exit block. (A subsequent
    /// dce pass removes the `S_h_h` copy, completing the loop removal —
    /// tested with the driver.)
    #[test]
    fn sinks_toward_loop_exits() {
        let mut p = parse(
            "prog {
               block s { goto h }
               block h { x := a + b; nondet h after }
               block after { out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        pdce_ir::edgesplit::split_critical_edges(&mut p);
        sink_assignments(&mut p).unwrap();
        expect(
            &p,
            "prog {
               block s { goto h }
               block h { nondet S_h_h after }
               block S_h_h { x := a + b; goto h }
               block after { x := a + b; out(x); goto e }
               block e { halt }
             }",
        );
    }

    /// An assignment used by the loop body must stay.
    #[test]
    fn does_not_sink_used_assignment_out_of_loop() {
        let mut p = parse(
            "prog {
               block s { goto h }
               block h { x := a + b; out(x); nondet h after }
               block after { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        pdce_ir::edgesplit::split_critical_edges(&mut p);
        let before = pdce_ir::printer::canonical_string(&p);
        let out = sink_assignments(&mut p).unwrap();
        assert!(!out.changed);
        assert_eq!(pdce_ir::printer::canonical_string(&p), before);
    }

    /// Pattern delayable to the exit node dissolves (it would be dead).
    #[test]
    fn unneeded_assignment_sinks_off_the_end() {
        let got = sink("prog { block s { x := 1; out(2); goto e } block e { halt } }");
        // x := 1 is a candidate (out(2) doesn't block it), delayable to e
        // with no insertion point: removed entirely.
        expect(&got, "prog { block s { out(2); goto e } block e { halt } }");
    }

    #[test]
    fn critical_edges_are_rejected() {
        let mut p = parse(
            "prog {
               block s  { x := 1; nondet a j }
               block a  { goto j }
               block j  { out(x); goto e }
               block e  { halt }
             }",
        )
        .unwrap();
        assert_eq!(sink_assignments(&mut p), Err(CriticalEdgeError));
    }

    /// Figure 7 (m-to-n sinking): occurrences of `a := a+1` on both arms
    /// merge at the join and sink together past it — the bit-vector
    /// treatment is inherently simultaneous.
    #[test]
    fn fig7_m_to_n_simultaneous_sinking() {
        let got = sink(
            "prog {
               block s  { nondet n1 n2 }
               block n1 { a := a + 1; goto n3 }
               block n2 { a := a + 1; y := a + b; out(x + y); goto n3 }
               block n3 { nondet n4 n5 }
               block n4 { out(a); goto e }
               block n5 { out(a + b); goto e }
               block e  { halt }
             }",
        );
        // From n1 the pattern sinks freely. In n2 it is blocked (y := a+b
        // uses a) — the candidate there is only y := a+b? No: the last
        // occurrence of a := a+1 in n2 is followed by a use of a, so n2
        // has no candidate for it and X-DELAYED_n2(a+1) is false. Hence
        // N-DELAYED_n3 is false and n1 must re-insert at its own exit:
        // nothing moves across the join unless *both* arms delay it.
        expect(
            &got,
            "prog {
               block s  { nondet n1 n2 }
               block n1 { a := a + 1; goto n3 }
               block n2 { a := a + 1; y := a + b; out(x + y); goto n3 }
               block n3 { nondet n4 n5 }
               block n4 { out(a); goto e }
               block n5 { out(a + b); goto e }
               block e  { halt }
             }",
        );
    }

    #[test]
    fn fig7_both_arms_delay_then_join_sinks() {
        // Variant where both arms end with the candidate: it crosses the
        // join simultaneously (the real Figure 7 effect) and lands at the
        // entries of both final blocks.
        let got = sink(
            "prog {
               block s  { nondet n1 n2 }
               block n1 { a := a + 1; goto n3 }
               block n2 { y := c + d; a := a + 1; goto n3 }
               block n3 { nondet n4 n5 }
               block n4 { out(a); goto e }
               block n5 { out(a + b); goto e }
               block e  { halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s  { nondet n1 n2 }
               block n1 { goto n3 }
               block n2 { y := c + d; goto n3 }
               block n3 { nondet n4 n5 }
               block n4 { a := a + 1; out(a); goto e }
               block n5 { a := a + 1; out(a + b); goto e }
               block e  { halt }
             }",
        );
    }

    #[test]
    fn stability_predicate() {
        let mut p = parse(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        )
        .unwrap();
        assert!(!sinking_is_stable(&p));
        sink_assignments(&mut p).unwrap();
        assert!(sinking_is_stable(&p));
        // A second pass leaves the program unchanged.
        let before = pdce_ir::printer::canonical_string(&p);
        let out = sink_assignments(&mut p).unwrap();
        assert!(!out.changed);
        assert_eq!(pdce_ir::printer::canonical_string(&p), before);
    }

    /// A pattern can sink into the exit block itself when the blocking
    /// use lives there (the paper's e is skip-only, but nothing in the
    /// equations requires that).
    #[test]
    fn sinks_into_exit_block() {
        let got = sink(
            "prog {
               block s { x := a + b; goto m }
               block m { goto e }
               block e { out(x); halt }
             }",
        );
        expect(
            &got,
            "prog {
               block s { goto m }
               block m { goto e }
               block e { x := a + b; out(x); halt }
             }",
        );
    }

    #[test]
    fn empty_program_is_stable() {
        let mut p = parse("prog { block s { goto e } block e { halt } }").unwrap();
        assert!(sinking_is_stable(&p));
        let out = sink_assignments(&mut p).unwrap();
        assert_eq!(out, SinkOutcome::default());
    }
}
