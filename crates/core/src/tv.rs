//! Translation validation: runtime equivalence checking of an
//! optimization step.
//!
//! The offline differential oracles in `tests/` compare whole optimizer
//! configurations after the fact; this module is their in-driver
//! counterpart. After each pde/pfe round the driver can execute the
//! *pre-round* and *post-round* programs on `K` seeded input vectors
//! and compare their observable effects (the `out(...)` stream). The
//! transforms preserve branching structure — neither elimination nor
//! sinking touches terminators, and edge splitting happens before the
//! round loop — so nondeterministic choices recorded while running the
//! old program replay verbatim on the new one.
//!
//! A mismatch is *evidence of a miscompile* (or an injected
//! `bitflip:dead` fault): the driver rolls the round back to the
//! last-good program and stops, recording a `tv_rollbacks` stat. A
//! clean check is not a proof — it is K random vectors — but it turns
//! silent wrong-code bugs into contained rollbacks, which is the
//! robustness contract this layer provides.

use pdce_ir::interp::{run, Env, ExecLimits, ReplayOracle, SeededOracle};
use pdce_ir::Program;

/// Options for one validation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TvOptions {
    /// Number of seeded input vectors to execute.
    pub vectors: u32,
    /// Base seed; vector `i` derives its inputs and decisions from
    /// `seed ^ i`.
    pub seed: u64,
    /// Block-visit cutoff per run (both programs are cut at the same
    /// visit count, keeping their traces comparable).
    pub max_block_visits: u64,
}

impl Default for TvOptions {
    fn default() -> TvOptions {
        TvOptions {
            vectors: 8,
            seed: 0x9e37_79b9_7f4a_7c15,
            max_block_visits: 4_096,
        }
    }
}

/// A detected observable difference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TvMismatch {
    /// Which vector (0-based) diverged.
    pub vector: u32,
    /// Output stream of the pre-transform program.
    pub expected: Vec<i64>,
    /// Output stream of the post-transform program.
    pub actual: Vec<i64>,
}

impl std::fmt::Display for TvMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "translation validation failed on vector {}: expected outputs {:?}, got {:?}",
            self.vector, self.expected, self.actual
        )
    }
}

/// Result of [`validate_pair`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TvReport {
    /// Vectors executed (all of them unless a mismatch cut it short).
    pub vectors_run: u32,
    /// The first mismatch, if any.
    pub mismatch: Option<TvMismatch>,
}

impl TvReport {
    /// Whether every vector agreed.
    pub fn ok(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// splitmix64: decorrelates per-vector seeds and input values.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Seeded input environment for `prog`: every variable gets a small
/// pseudorandom value (small keeps arithmetic overflow out of the
/// comparison; wrap-around differences would be a red herring).
fn seeded_env(prog: &Program, mut state: u64) -> Env {
    let mut env = Env::zeroed(prog);
    for v in prog.vars().iter() {
        env.set(v, (splitmix64(&mut state) % 1_024) as i64 - 512);
    }
    env
}

/// Executes `old` and `new` on `opts.vectors` seeded input vectors and
/// compares their observable effects.
///
/// Inputs are assigned *by variable name* — `new` may have dropped
/// variables `old` still carries (or vice versa after sinking inserts
/// fresh names); shared names get identical values, unshared names
/// cannot affect outputs of the program that lacks them. Decisions are
/// recorded on `old` and replayed positionally on `new`.
pub fn validate_pair(old: &Program, new: &Program, opts: &TvOptions) -> TvReport {
    let limits = ExecLimits {
        max_block_visits: opts.max_block_visits,
    };
    let mut vectors_run = 0;
    for i in 0..opts.vectors {
        vectors_run += 1;
        let vec_seed = opts.seed ^ u64::from(i).wrapping_mul(0xa076_1d64_78bd_642f);

        // Identical named inputs on both sides.
        let mut old_env = seeded_env(old, vec_seed);
        let mut new_env = Env::zeroed(new);
        for v in new.vars().iter() {
            if let Some(ov) = old.vars().lookup(new.vars().name(v)) {
                new_env.set(v, old_env.get(ov));
            } else {
                // A variable fresh in `new`: derive deterministically
                // from the same seed stream so runs stay reproducible.
                let mut s = vec_seed ^ 0x5851_f42d_4c95_7f2d;
                new_env.set(v, (splitmix64(&mut s) % 1_024) as i64 - 512);
            }
        }

        let mut decide = SeededOracle::new(vec_seed);
        let old_trace = run(old, &mut old_env, &mut decide, limits);
        let mut replay = ReplayOracle::new(old_trace.decisions.clone());
        let new_trace = run(new, &mut new_env, &mut replay, limits);

        if old_trace.outputs != new_trace.outputs || old_trace.completed != new_trace.completed {
            return TvReport {
                vectors_run,
                mismatch: Some(TvMismatch {
                    vector: i,
                    expected: old_trace.outputs,
                    actual: new_trace.outputs,
                }),
            };
        }
    }
    TvReport {
        vectors_run,
        mismatch: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    const FIG1: &str = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { out(y); goto n4 }
        block n3 { y := 4; goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";

    #[test]
    fn program_is_equivalent_to_itself() {
        let p = parse(FIG1).unwrap();
        let report = validate_pair(&p, &p, &TvOptions::default());
        assert!(report.ok());
        assert_eq!(report.vectors_run, 8);
    }

    #[test]
    fn correct_optimization_validates() {
        let mut p = parse(FIG1).unwrap();
        let orig = p.clone();
        crate::pde(&mut p).unwrap();
        assert!(validate_pair(&orig, &p, &TvOptions::default()).ok());
    }

    #[test]
    fn dropping_a_live_assignment_is_caught() {
        let orig = parse(FIG1).unwrap();
        let mut broken = orig.clone();
        // "Optimize" by deleting the live y := a + b.
        let n1 = broken.block_by_name("n1").unwrap();
        broken.stmts_mut(n1).clear();
        let report = validate_pair(&orig, &broken, &TvOptions::default());
        let m = report.mismatch.expect("must catch the miscompile");
        assert_ne!(m.expected, m.actual);
    }

    #[test]
    fn nonterminating_loops_compare_by_prefix() {
        // Both sides hit the block-visit cutoff; equal outputs → ok.
        let p = parse(
            "prog { block s { goto l } block l { out(1); nondet l x }
                    block x { goto e } block e { halt } }",
        )
        .unwrap();
        let opts = TvOptions {
            max_block_visits: 64,
            ..TvOptions::default()
        };
        assert!(validate_pair(&p, &p, &opts).ok());
    }
}
