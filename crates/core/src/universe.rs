//! Bounded enumeration of the PDE/PFE universe (Definition 3.5).
//!
//! `G_T` is the set of programs reachable from `G` by admissible
//! assignment sinkings and dead (faint) code eliminations. Theorem 5.2
//! claims the driver's result is *better* (Definition 3.6) than every
//! program in that universe. This module cross-checks the claim by brute
//! force on small programs: it explores the universe with a set of
//! *elementary admissible moves* and verifies that the driver's output
//! dominates every program found.
//!
//! The elementary moves (each a special case of Definitions 3.1–3.4):
//!
//! 1. **Single elimination** — remove one assignment whose left-hand side
//!    is dead (faint) immediately after it.
//! 2. **Branch move** — a sinking candidate in block `n` where every
//!    successor of `n` has `n` as its only predecessor: remove it and
//!    insert an instance at the entry of every successor. (Substitution
//!    and justification hold trivially.)
//! 3. **Join move** — a block `m` all of whose predecessors are
//!    single-successor blocks carrying a sinking candidate of the same
//!    pattern: remove all of them and insert one instance at the entry of
//!    `m`. This is the paper's m-to-n sinking (Figure 7).
//!
//! The closure of these moves is a *subset* of the universe, so any
//! explored program that beats the driver's output disproves optimality;
//! the check is sound, and on the paper's figures it is also sharp
//! enough to cover the interesting competitors.

use std::collections::{HashMap, HashSet, VecDeque};

use pdce_ir::printer::canonical_string;
use pdce_ir::{NodeId, Program, Stmt};

use crate::better::{is_better, BetterOptions};
use crate::dead::DeadSolution;
use crate::elim::Mode;
use crate::faint::FaintSolution;
use crate::local::LocalInfo;
use crate::patterns::PatternTable;
use pdce_dfa::AnalysisCache;

/// Options bounding the exploration.
#[derive(Debug, Clone)]
pub struct UniverseOptions {
    /// Elimination mode (mirrors the driver's).
    pub mode: Mode,
    /// Maximum number of distinct programs to enumerate.
    pub max_programs: usize,
    /// Dominance-check options.
    pub better: BetterOptions,
}

impl Default for UniverseOptions {
    fn default() -> UniverseOptions {
        UniverseOptions {
            mode: Mode::Dead,
            max_programs: 2000,
            better: BetterOptions::default(),
        }
    }
}

/// Result of exploring the universe.
#[derive(Debug)]
pub struct UniverseResult {
    /// Distinct programs reached (including the start program).
    pub programs: Vec<Program>,
    /// Whether exploration stopped at the program cap.
    pub truncated: bool,
}

/// Enumerates the bounded universe of `start`.
///
/// `start` must already be critical-edge free (the driver's
/// preprocessing); moves never create new blocks.
pub fn explore(start: &Program, opts: &UniverseOptions) -> UniverseResult {
    let mut seen: HashSet<String> = HashSet::new();
    let mut programs: Vec<Program> = Vec::new();
    let mut queue: VecDeque<Program> = VecDeque::new();
    seen.insert(canonical_string(start));
    programs.push(start.clone());
    queue.push_back(start.clone());
    let mut truncated = false;

    while let Some(prog) = queue.pop_front() {
        for succ in successors(&prog, opts.mode) {
            let key = canonical_string(&succ);
            if seen.contains(&key) {
                continue;
            }
            if programs.len() >= opts.max_programs {
                truncated = true;
                continue;
            }
            seen.insert(key);
            programs.push(succ.clone());
            queue.push_back(succ);
        }
    }
    UniverseResult {
        programs,
        truncated,
    }
}

fn successors(prog: &Program, mode: Mode) -> Vec<Program> {
    // One cache per enumerated program: both move generators need the
    // same CfgView, which is now built once instead of twice.
    let mut cache = AnalysisCache::new();
    let mut out = Vec::new();
    single_eliminations(prog, &mut cache, mode, &mut out);
    sinking_moves(prog, &mut cache, &mut out);
    out
}

fn single_eliminations(
    prog: &Program,
    cache: &mut AnalysisCache,
    mode: Mode,
    out: &mut Vec<Program>,
) {
    let dead = match mode {
        Mode::Dead => Some(cache.analysis::<DeadSolution, _>(prog, DeadSolution::compute)),
        Mode::Faint => None,
    };
    let faint = match mode {
        Mode::Faint => {
            let du = cache.du(prog);
            Some(cache.analysis::<FaintSolution, _>(prog, |p, v| {
                FaintSolution::compute_with_du(p, v, &du)
            }))
        }
        Mode::Dead => None,
    };
    for n in prog.node_ids() {
        let after = dead.as_ref().map(|d| d.after_each_stmt(prog, n));
        for (k, stmt) in prog.block(n).stmts.iter().enumerate() {
            let Stmt::Assign { lhs, .. } = *stmt else {
                continue;
            };
            let removable = match (&after, &faint) {
                (Some(a), _) => a[k].get(lhs.index()),
                (_, Some(f)) => f.faint_after(n, k, lhs),
                _ => unreachable!(),
            };
            if removable {
                let mut next = prog.clone();
                next.block_mut(n).stmts.remove(k);
                out.push(next);
            }
        }
    }
}

fn sinking_moves(prog: &Program, cache: &mut AnalysisCache, out: &mut Vec<Program>) {
    let view = cache.cfg(prog);
    let table = cache.analysis::<PatternTable, _>(prog, |p, _| PatternTable::build(p));
    if table.is_empty() {
        return;
    }
    let local = LocalInfo::compute(prog, &table);

    // Branch moves.
    for n in prog.node_ids() {
        let succs = view.succs(n).to_vec();
        if succs.is_empty() {
            continue;
        }
        let movable = succs
            .iter()
            .all(|&m| view.preds(m) == [n] && m != prog.entry());
        if !movable {
            continue;
        }
        for &(k, p) in local.candidates_of(n) {
            let (lhs, rhs) = table.pattern(p);
            let mut next = prog.clone();
            next.block_mut(n).stmts.remove(k);
            for &m in &succs {
                next.block_mut(m).stmts.insert(0, Stmt::Assign { lhs, rhs });
            }
            out.push(next);
        }
    }

    // Join moves (m-to-n sinking).
    for m in prog.node_ids() {
        let preds = view.preds(m).to_vec();
        if preds.is_empty() || preds.contains(&m) {
            continue;
        }
        if !preds.iter().all(|&p| view.succs(p).len() == 1) {
            continue;
        }
        // Patterns with a candidate in every predecessor.
        let mut by_pattern: HashMap<usize, Vec<(NodeId, usize)>> = HashMap::new();
        for &p in &preds {
            for &(k, pat) in local.candidates_of(p) {
                by_pattern.entry(pat).or_default().push((p, k));
            }
        }
        for (pat, sites) in by_pattern {
            if sites.len() != preds.len() {
                continue;
            }
            let (lhs, rhs) = table.pattern(pat);
            let mut next = prog.clone();
            for &(p, k) in &sites {
                next.block_mut(p).stmts.remove(k);
            }
            next.block_mut(m).stmts.insert(0, Stmt::Assign { lhs, rhs });
            out.push(next);
        }
    }
}

/// A universe program that beats the driver's output on some path.
#[derive(Debug)]
pub struct OptimalityViolation {
    /// The competitor program (canonical form).
    pub competitor: String,
    /// Paths/pattern counts where the competitor wins.
    pub report: crate::better::DominanceReport,
}

/// Summary of a successful optimality check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniverseCheck {
    /// Number of competitor programs compared.
    pub programs_checked: usize,
    /// Whether the exploration hit its cap.
    pub truncated: bool,
}

/// Verifies Theorem 5.2 by brute force: the driver's `optimized` output
/// must dominate every program in the bounded universe of `start`.
///
/// `start` must be the *split* program the driver actually optimized.
///
/// # Errors
///
/// Returns the first competitor that the output fails to dominate.
pub fn assert_optimal_on_universe(
    start: &Program,
    optimized: &Program,
    opts: &UniverseOptions,
) -> Result<UniverseCheck, Box<OptimalityViolation>> {
    let universe = explore(start, opts);
    for competitor in &universe.programs {
        let report = is_better(optimized, competitor, &opts.better);
        if !report.holds() {
            return Err(Box::new(OptimalityViolation {
                competitor: canonical_string(competitor),
                report,
            }));
        }
    }
    Ok(UniverseCheck {
        programs_checked: universe.programs.len(),
        truncated: universe.truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{optimize, PdceConfig};
    use pdce_ir::edgesplit::split_critical_edges;
    use pdce_ir::parser::parse;

    fn check_optimal(src: &str, mode: Mode) -> UniverseCheck {
        let mut start = parse(src).unwrap();
        split_critical_edges(&mut start);
        let mut optimized = start.clone();
        let config = match mode {
            Mode::Dead => PdceConfig::pde(),
            Mode::Faint => PdceConfig::pfe(),
        };
        optimize(&mut optimized, &config).unwrap();
        let opts = UniverseOptions {
            mode,
            ..UniverseOptions::default()
        };
        match assert_optimal_on_universe(&start, &optimized, &opts) {
            Ok(check) => check,
            Err(v) => panic!(
                "pde output is not optimal; beaten by:\n{}\nviolations: {:#?}",
                v.competitor, v.report.violations
            ),
        }
    }

    #[test]
    fn fig1_output_is_optimal_in_bounded_universe() {
        let check = check_optimal(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
            Mode::Dead,
        );
        assert!(check.programs_checked > 1);
        assert!(!check.truncated);
    }

    #[test]
    fn straight_line_dead_chain_optimal() {
        check_optimal(
            "prog {
               block s { a := 1; b := a + 1; out(b); goto e }
               block e { halt }
             }",
            Mode::Dead,
        );
    }

    #[test]
    fn diamond_with_one_sided_use_optimal() {
        check_optimal(
            "prog {
               block s { x := a + b; nondet l r }
               block l { out(x); goto j }
               block r { goto j }
               block j { out(a); goto e }
               block e { halt }
             }",
            Mode::Dead,
        );
    }

    #[test]
    fn faint_universe_check() {
        check_optimal(
            "prog {
               block s { x := 1; y := x; out(2); goto e }
               block e { halt }
             }",
            Mode::Faint,
        );
    }

    #[test]
    fn explore_finds_branch_and_join_moves() {
        // Figure 7 shape: both arms end with the candidate; the join move
        // must produce the merged program.
        let p = parse(
            "prog {
               block s  { nondet n1 n2 }
               block n1 { a := a + 1; goto n3 }
               block n2 { a := a + 1; goto n3 }
               block n3 { out(a); goto e }
               block e  { halt }
             }",
        )
        .unwrap();
        let res = explore(&p, &UniverseOptions::default());
        let merged = parse(
            "prog {
               block s  { nondet n1 n2 }
               block n1 { goto n3 }
               block n2 { goto n3 }
               block n3 { a := a + 1; out(a); goto e }
               block e  { halt }
             }",
        )
        .unwrap();
        let key = canonical_string(&merged);
        assert!(
            res.programs.iter().any(|q| canonical_string(q) == key),
            "join move missing; universe size {}",
            res.programs.len()
        );
    }

    #[test]
    fn exploration_cap_reports_truncation() {
        let p = parse(
            "prog {
               block s { a := 1; b := 2; c := 3; d := 4; goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let res = explore(
            &p,
            &UniverseOptions {
                max_programs: 3,
                ..UniverseOptions::default()
            },
        );
        assert!(res.truncated);
        assert_eq!(res.programs.len(), 3);
    }
}
