//! Dense fixed-width bit vectors.
//!
//! The data-flow analyses of the paper are bit-vector problems (Tables 1
//! and 2); this module provides the underlying representation: a dense
//! `u64`-block vector with the set-algebra operations the solvers need,
//! plus change-reporting variants (`*_changed`) for worklist convergence
//! checks.

use std::fmt;

/// A fixed-length vector of bits.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    blocks: Vec<u64>,
    len: usize,
}

const BITS: usize = 64;

impl BitVec {
    /// Creates a vector of `len` bits, all set to `value`.
    pub fn new(len: usize, value: bool) -> BitVec {
        let nblocks = len.div_ceil(BITS);
        let mut v = BitVec {
            blocks: vec![if value { !0u64 } else { 0 }; nblocks],
            len,
        };
        v.mask_tail();
        v
    }

    /// Creates an all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> BitVec {
        BitVec::new(len, false)
    }

    /// Creates an all-one vector of `len` bits.
    pub fn ones(len: usize) -> BitVec {
        BitVec::new(len, true)
    }

    fn mask_tail(&mut self) {
        let rem = self.len % BITS;
        if rem != 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.blocks[i / BITS] >> (i % BITS)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % BITS);
        if value {
            self.blocks[i / BITS] |= mask;
        } else {
            self.blocks[i / BITS] &= !mask;
        }
    }

    /// Sets all bits to `value`.
    pub fn fill(&mut self, value: bool) {
        for b in &mut self.blocks {
            *b = if value { !0 } else { 0 };
        }
        self.mask_tail();
    }

    /// Whether no bit is set.
    pub fn none(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Whether at least one bit is set.
    pub fn any(&self) -> bool {
        !self.none()
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Overwrites `self` with `other`'s bits without reallocating —
    /// the scratch-buffer reuse primitive of the solver hot loops.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn copy_from(&mut self, other: &BitVec) {
        self.check_len(other);
        self.blocks.copy_from_slice(&other.blocks);
    }

    /// `self |= other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn union_with(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn intersect_with(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// `self &= !other` (set difference).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn difference_with(&mut self, other: &BitVec) {
        self.check_len(other);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// `self |= other`, reporting whether any bit changed.
    pub fn union_with_changed(&mut self, other: &BitVec) -> bool {
        self.check_len(other);
        let mut changed = false;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`, reporting whether any bit changed.
    pub fn intersect_with_changed(&mut self, other: &BitVec) -> bool {
        self.check_len(other);
        let mut changed = false;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self &= other`, skipping words of `self` that are already zero
    /// (they cannot change under intersection). Returns the number of
    /// words actually combined — the sparse word-operation count used by
    /// the priority solver's `word_ops` accounting.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn intersect_with_skip(&mut self, other: &BitVec) -> u64 {
        self.check_len(other);
        let mut ops = 0;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            if *a == 0 {
                continue;
            }
            *a &= b;
            ops += 1;
        }
        ops
    }

    /// `self |= other`, skipping words where `other` contributes nothing
    /// (all-zero words are the union identity). Returns the number of
    /// words actually combined.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn union_with_skip(&mut self, other: &BitVec) -> u64 {
        self.check_len(other);
        let mut ops = 0;
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            if *b == 0 {
                continue;
            }
            *a |= b;
            ops += 1;
        }
        ops
    }

    /// Flips every bit in place.
    pub fn negate(&mut self) {
        for b in &mut self.blocks {
            *b = !*b;
        }
        self.mask_tail();
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &BitVec) -> bool {
        self.check_len(other);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over indices of set bits, ascending.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            vec: self,
            block_idx: 0,
            current: self.blocks.first().copied().unwrap_or(0),
        }
    }

    fn check_len(&self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "bit vector length mismatch: {} vs {}",
            self.len, other.len
        );
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[{}]{{", self.len)?;
        let mut first = true;
        for i in self.iter_ones() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Iterator over the set bits of a [`BitVec`], produced by
/// [`BitVec::iter_ones`].
pub struct IterOnes<'a> {
    vec: &'a BitVec,
    block_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.block_idx * BITS + bit);
            }
            self.block_idx += 1;
            if self.block_idx >= self.vec.blocks.len() {
                return None;
            }
            self.current = self.vec.blocks[self.block_idx];
        }
    }
}

impl FromIterator<usize> for BitVec {
    /// Collects set-bit indices; the length is one past the maximum index.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> BitVec {
        let indices: Vec<usize> = iter.into_iter().collect();
        let len = indices.iter().max().map_or(0, |m| m + 1);
        let mut v = BitVec::zeros(len);
        for i in indices {
            v.set(i, true);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_masking() {
        let v = BitVec::ones(70);
        assert_eq!(v.len(), 70);
        assert_eq!(v.count_ones(), 70);
        assert!(v.get(69));
        let z = BitVec::zeros(70);
        assert!(z.none());
        assert!(!z.any());
    }

    #[test]
    fn get_set_roundtrip() {
        let mut v = BitVec::zeros(130);
        for i in [0, 1, 63, 64, 65, 127, 128, 129] {
            v.set(i, true);
            assert!(v.get(i));
        }
        assert_eq!(v.count_ones(), 8);
        v.set(64, false);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        BitVec::zeros(10).get(10);
    }

    #[test]
    fn set_algebra() {
        let a: BitVec = [1usize, 3, 5].into_iter().collect();
        let mut b: BitVec = [3usize, 4, 5].into_iter().collect();
        // lengths: a has len 6, b has len 6
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![3, 5]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter_ones().collect::<Vec<_>>(), vec![1]);
        assert!(i.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        b.negate();
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn changed_variants_report_accurately() {
        let mut a: BitVec = [1usize, 2].into_iter().collect();
        let same = a.clone();
        assert!(!a.union_with_changed(&same));
        let mut more = BitVec::zeros(3);
        more.set(0, true);
        assert!(a.union_with_changed(&more));
        assert!(a.get(0));
        let mut b = BitVec::ones(3);
        assert!(b.intersect_with_changed(&a) || b == a);
    }

    #[test]
    fn skip_variants_match_dense_and_count_sparsely() {
        // 130 bits = 3 words; word 1 of `a` is zero, word 2 of `b` is zero.
        let mut a = BitVec::zeros(130);
        a.set(0, true);
        a.set(129, true);
        let mut b = BitVec::zeros(130);
        b.set(0, true);
        b.set(64, true);

        let mut dense = a.clone();
        dense.intersect_with(&b);
        let mut sparse = a.clone();
        let ops = sparse.intersect_with_skip(&b);
        assert_eq!(sparse, dense);
        assert_eq!(ops, 2, "the all-zero middle word of `a` is skipped");

        let mut dense = a.clone();
        dense.union_with(&b);
        let mut sparse = a.clone();
        let ops = sparse.union_with_skip(&b);
        assert_eq!(sparse, dense);
        assert_eq!(ops, 2, "the all-zero tail word of `b` is skipped");
    }

    #[test]
    fn iter_ones_across_blocks() {
        let v: BitVec = [0usize, 63, 64, 128].into_iter().collect();
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 128]);
    }

    #[test]
    fn negate_respects_tail_mask() {
        let mut v = BitVec::zeros(65);
        v.negate();
        assert_eq!(v.count_ones(), 65);
        v.negate();
        assert!(v.none());
    }

    #[test]
    fn fill_and_empty() {
        let mut v = BitVec::zeros(0);
        assert!(v.is_empty());
        assert!(v.none());
        v.fill(true);
        assert_eq!(v.count_ones(), 0);
        let mut w = BitVec::zeros(9);
        w.fill(true);
        assert_eq!(w.count_ones(), 9);
    }

    #[test]
    fn debug_format_lists_ones() {
        let v: BitVec = [2usize, 4].into_iter().collect();
        assert_eq!(format!("{v:?}"), "BitVec[5]{2,4}");
    }
}
