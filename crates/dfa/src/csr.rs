//! Flat CSR (compressed sparse row) adjacency for solver dependency
//! graphs.
//!
//! The worklist solvers in [`network`](crate::network) re-walk a slot's
//! dependents on every flip; storing those lists as `Vec<Vec<u32>>`
//! scatters them across the heap and costs a pointer chase per slot.
//! [`Csr`] packs all edges into one array with per-node offset ranges —
//! the same layout `pdce_ir::CfgView` uses for block adjacency — so a
//! flip's dependents are one contiguous slice.

/// A directed adjacency structure in CSR form: neighbors of node `s`
/// occupy `edges[off[s] .. off[s + 1]]`, in insertion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Csr {
    off: Vec<u32>,
    edges: Vec<u32>,
}

impl Csr {
    /// Builds a CSR graph in two passes over an edge-emitting closure:
    /// one counting pass, one fill pass. `emit` must produce the same
    /// `(source, target)` sequence both times; per-node neighbor order
    /// is exactly the emission order, which worklist scheduling (and
    /// therefore differential FIFO≡priority oracles) depends on.
    pub fn build(num_nodes: usize, emit: impl Fn(&mut dyn FnMut(u32, u32))) -> Csr {
        let mut off = vec![0u32; num_nodes + 1];
        emit(&mut |s, _| off[s as usize + 1] += 1);
        for i in 0..num_nodes {
            off[i + 1] += off[i];
        }
        let mut cursor: Vec<u32> = off[..num_nodes].to_vec();
        let mut edges = vec![0u32; *off.last().unwrap_or(&0) as usize];
        emit(&mut |s, t| {
            edges[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        });
        Csr { off, edges }
    }

    /// Builds a CSR graph from per-node neighbor lists (preserving each
    /// list's order). Convenient for tests and small fixed networks.
    pub fn from_lists(lists: &[Vec<u32>]) -> Csr {
        Csr::build(lists.len(), |emit| {
            for (s, l) in lists.iter().enumerate() {
                for &t in l {
                    emit(s as u32, t);
                }
            }
        })
    }

    /// Builds a CSR from already-computed offset and edge arrays —
    /// the single-pass splicing path `DuGraph::patch` uses to reuse
    /// clean-block segments without a repeatable emission closure.
    ///
    /// # Panics
    ///
    /// Panics if `off` is empty, not monotone, or its last entry does
    /// not equal `edges.len()`.
    pub fn from_parts(off: Vec<u32>, edges: Vec<u32>) -> Csr {
        assert!(!off.is_empty(), "offset array needs a leading 0");
        debug_assert!(off.windows(2).all(|w| w[0] <= w[1]), "offsets not sorted");
        assert_eq!(*off.last().unwrap() as usize, edges.len(), "edge count");
        Csr { off, edges }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.off.len().saturating_sub(1)
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of `s`, in insertion order.
    pub fn neighbors(&self, s: usize) -> &[u32] {
        &self.edges[self.off[s] as usize..self.off[s + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_lists_round_trips() {
        let lists = vec![vec![2, 1], vec![], vec![0, 0, 1]];
        let csr = Csr::from_lists(&lists);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_edges(), 5);
        assert_eq!(csr.neighbors(0), &[2, 1]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0, 0, 1]);
    }

    #[test]
    fn build_preserves_emission_order_per_node() {
        // Emission interleaves sources; per-node order must still follow
        // emission order, not global order.
        let csr = Csr::build(2, |emit| {
            emit(1, 7);
            emit(0, 3);
            emit(1, 5);
        });
        assert_eq!(csr.neighbors(0), &[3]);
        assert_eq!(csr.neighbors(1), &[7, 5]);
    }

    #[test]
    fn empty_graph() {
        let csr = Csr::from_lists(&[]);
        assert_eq!(csr.num_nodes(), 0);
        assert_eq!(csr.num_edges(), 0);
    }
}
