//! The def-use chain graph the sparse solver family propagates over.
//!
//! [`DuGraph`] is an instruction-level CSR snapshot of everything the
//! sparse formulations of dead, faint, and delay read: per-instruction
//! kind/def/use facts, the instruction successor relation (statements
//! chain within a block, terminators branch along the `CfgView` edges),
//! its inverse, and the per-variable occurrence sets — each variable's
//! own sparse node set, the instructions that define or use it. The
//! graph is revision-cached in `AnalysisCache` next to the `CfgView`
//! and, after statement-local edits reported by the mutation log,
//! patched by splicing clean-block segments instead of re-scanning the
//! whole program (DESIGN.md §15).
//!
//! The scan mirrors the faint network's instruction walk exactly —
//! statements plus one terminator pseudo-instruction per block, in the
//! view's arena numbering — so the faint analysis can rebuild its
//! boolean implication network from these chains without touching the
//! program again.

use pdce_ir::{CfgView, NodeId, Program, Stmt, Var};

use crate::csr::Csr;

/// What an instruction does, as far as the chain graph cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrKind {
    /// No variable effect (skip, goto, nondet, halt).
    Neutral,
    /// An assignment: defines [`DuGraph::def_of`], uses
    /// [`DuGraph::uses_of`] (the right-hand-side variables).
    Assign,
    /// A relevant use of [`DuGraph::uses_of`] (out statements and branch
    /// conditions) — the only instructions that pin variables live.
    Relevant,
}

/// Instruction-level def-use/use-def chains of one program, in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuGraph {
    num_vars: usize,
    num_instrs: usize,
    /// First instruction index of each block (the view's arena layout).
    offsets: Vec<usize>,
    /// Per-instruction kind.
    kinds: Vec<InstrKind>,
    /// Per-instruction defined variable index; `u32::MAX` if none.
    defs: Vec<u32>,
    /// Per-instruction used variable indices (right-hand-side variables
    /// for assignments, used variables for relevant instructions).
    uses: Csr,
    /// Instruction successors: statements chain to the next instruction
    /// of their block, terminators branch to the first instruction of
    /// each successor block, in branch order.
    next: Csr,
    /// Inverse of `next` (use-def direction).
    prev: Csr,
    /// Per-variable occurrence sets: the instructions that define or
    /// use the variable, in arena order, one entry per role (an
    /// instruction both defining and using a variable appears twice).
    occ: Csr,
}

/// Walks one block's instructions (statements, then the terminator
/// pseudo-instruction), reporting each one's kind, defined-variable
/// index (`u32::MAX` if none), and used variables.
fn scan_block(prog: &Program, n: NodeId, mut f: impl FnMut(InstrKind, u32, &[Var])) {
    let block = prog.block(n);
    for stmt in &block.stmts {
        match *stmt {
            Stmt::Skip => f(InstrKind::Neutral, u32::MAX, &[]),
            Stmt::Assign { lhs, rhs } => f(
                InstrKind::Assign,
                lhs.index() as u32,
                prog.terms().vars_of(rhs),
            ),
            Stmt::Out(t) => f(InstrKind::Relevant, u32::MAX, prog.terms().vars_of(t)),
        }
    }
    match block.term.used_term() {
        Some(c) => f(InstrKind::Relevant, u32::MAX, prog.terms().vars_of(c)),
        None => f(InstrKind::Neutral, u32::MAX, &[]),
    }
}

impl DuGraph {
    /// Builds the chain graph for `prog` from scratch.
    pub fn build(prog: &Program, view: &CfgView) -> DuGraph {
        debug_assert!(view.layout_matches(prog), "view layout is stale");
        let num_instrs = view.num_instrs();
        let nblocks = prog.num_blocks();
        let offsets: Vec<usize> = (0..nblocks)
            .map(|i| view.instr_offsets()[i] as usize)
            .collect();

        let mut kinds = Vec::with_capacity(num_instrs);
        let mut defs = Vec::with_capacity(num_instrs);
        let mut use_off = Vec::with_capacity(num_instrs + 1);
        use_off.push(0u32);
        let mut use_edges: Vec<u32> = Vec::new();
        for n in prog.node_ids() {
            scan_block(prog, n, |kind, def, uses| {
                kinds.push(kind);
                defs.push(def);
                use_edges.extend(uses.iter().map(|v| v.index() as u32));
                use_off.push(use_edges.len() as u32);
            });
        }
        let uses = Csr::from_parts(use_off, use_edges);

        DuGraph::assemble(
            prog.num_vars(),
            num_instrs,
            offsets,
            kinds,
            defs,
            uses,
            view,
        )
    }

    /// Splices `prev` into the chain graph of the current `prog`:
    /// clean-block fact segments are copied over, only the `dirty`
    /// blocks are re-scanned, and the flow/occurrence CSRs are rebuilt
    /// from the (cheap) spliced arrays. Falls back to a cold
    /// [`DuGraph::build`] when the shapes do not line up — the variable
    /// universe moved, the block set changed, or a supposedly-clean
    /// block changed length. Identical to a cold build either way; the
    /// property test in `tests/` drives random mutation sequences
    /// through both paths and compares the graphs structurally.
    pub fn patch(prog: &Program, view: &CfgView, prev: &DuGraph, dirty: &[NodeId]) -> DuGraph {
        let nblocks = prog.num_blocks();
        if prog.num_vars() != prev.num_vars || prev.offsets.len() != nblocks {
            return DuGraph::build(prog, view);
        }
        debug_assert!(view.layout_matches(prog), "view layout is stale");
        let num_instrs = view.num_instrs();
        let offsets: Vec<usize> = (0..nblocks)
            .map(|i| view.instr_offsets()[i] as usize)
            .collect();
        let mut is_dirty = vec![false; nblocks];
        for &d in dirty {
            is_dirty[d.index()] = true;
        }
        let prev_count = |n: usize| {
            let end = prev.offsets.get(n + 1).copied().unwrap_or(prev.num_instrs);
            end - prev.offsets[n]
        };
        let count = |n: usize| {
            let end = offsets.get(n + 1).copied().unwrap_or(num_instrs);
            end - offsets[n]
        };
        for (n, &block_dirty) in is_dirty.iter().enumerate() {
            if !block_dirty && count(n) != prev_count(n) {
                return DuGraph::build(prog, view);
            }
        }

        let mut kinds = Vec::with_capacity(num_instrs);
        let mut defs = Vec::with_capacity(num_instrs);
        let mut use_off = Vec::with_capacity(num_instrs + 1);
        use_off.push(0u32);
        let mut use_edges: Vec<u32> = Vec::new();
        for n in prog.node_ids() {
            let i = n.index();
            if is_dirty[i] {
                scan_block(prog, n, |kind, def, uses| {
                    kinds.push(kind);
                    defs.push(def);
                    use_edges.extend(uses.iter().map(|v| v.index() as u32));
                    use_off.push(use_edges.len() as u32);
                });
            } else {
                let base = prev.offsets[i];
                for k in base..base + prev_count(i) {
                    kinds.push(prev.kinds[k]);
                    defs.push(prev.defs[k]);
                    use_edges.extend_from_slice(prev.uses.neighbors(k));
                    use_off.push(use_edges.len() as u32);
                }
            }
        }
        let uses = Csr::from_parts(use_off, use_edges);

        DuGraph::assemble(
            prog.num_vars(),
            num_instrs,
            offsets,
            kinds,
            defs,
            uses,
            view,
        )
    }

    /// Shared tail of [`DuGraph::build`] and [`DuGraph::patch`]: derives
    /// the flow CSRs from the view and the occurrence CSR from the fact
    /// arrays.
    fn assemble(
        num_vars: usize,
        num_instrs: usize,
        offsets: Vec<usize>,
        kinds: Vec<InstrKind>,
        defs: Vec<u32>,
        uses: Csr,
        view: &CfgView,
    ) -> DuGraph {
        let next = Csr::build(num_instrs, |emit| {
            for i in 0..offsets.len() {
                let n = NodeId::from_index(i);
                let range = view.instr_range(n);
                for k in range.start..range.end - 1 {
                    emit(k as u32, k as u32 + 1);
                }
                for &m in view.succs(n) {
                    emit(range.end as u32 - 1, view.first_instr(m) as u32);
                }
            }
        });
        let prev = Csr::build(num_instrs, |emit| {
            for i in 0..num_instrs {
                for &nu in next.neighbors(i) {
                    emit(nu, i as u32);
                }
            }
        });
        let occ = Csr::build(num_vars, |emit| {
            for (i, &d) in defs.iter().enumerate() {
                if d != u32::MAX {
                    emit(d, i as u32);
                }
                for &v in uses.neighbors(i) {
                    emit(v, i as u32);
                }
            }
        });
        DuGraph {
            num_vars,
            num_instrs,
            offsets,
            kinds,
            defs,
            uses,
            next,
            prev,
            occ,
        }
    }

    /// Number of variables of the underlying program.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of instructions (statements plus one terminator
    /// pseudo-instruction per block).
    pub fn num_instrs(&self) -> usize {
        self.num_instrs
    }

    /// First instruction index of each block.
    pub fn block_offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Kind of instruction `i`.
    pub fn kind(&self, i: usize) -> InstrKind {
        self.kinds[i]
    }

    /// Variable defined by instruction `i`, if any.
    pub fn def_of(&self, i: usize) -> Option<Var> {
        (self.defs[i] != u32::MAX).then(|| Var::from_index(self.defs[i] as usize))
    }

    /// Variable indices used by instruction `i`.
    pub fn uses_of(&self, i: usize) -> &[u32] {
        self.uses.neighbors(i)
    }

    /// Successor instructions of `i`, in flow order.
    pub fn next_of(&self, i: usize) -> &[u32] {
        self.next.neighbors(i)
    }

    /// Predecessor instructions of `i` (the use-def direction).
    pub fn prev_of(&self, i: usize) -> &[u32] {
        self.prev.neighbors(i)
    }

    /// The instruction successor CSR itself.
    pub fn next(&self) -> &Csr {
        &self.next
    }

    /// The occurrence set of variable `v`: every instruction that
    /// defines or uses it, in arena order.
    pub fn occurrences(&self, v: Var) -> &[u32] {
        self.occ.neighbors(v.index())
    }

    /// Total def-use chain edge count (flow edges plus occurrence
    /// entries) — the denominator of the sparse solver's `O(affected
    /// edges)` bound.
    pub fn num_edges(&self) -> usize {
        self.next.num_edges() + self.occ.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    #[test]
    fn build_records_kinds_defs_uses_and_chains() {
        let prog = parse(
            "prog {
               block s { x := 1; y := x + z; out(y); if x < 2 then t else e }
               block t { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&prog);
        let du = DuGraph::build(&prog, &view);
        let x = prog.vars().lookup("x").unwrap();
        let y = prog.vars().lookup("y").unwrap();
        assert_eq!(du.num_instrs(), view.num_instrs());
        // Instruction 0 is `x := 1`, 1 is `y := x + z`, 2 is `out(y)`,
        // 3 is the branch on x.
        assert_eq!(du.kind(0), InstrKind::Assign);
        assert_eq!(du.def_of(0), Some(x));
        assert_eq!(du.uses_of(0), &[] as &[u32]);
        assert_eq!(du.kind(1), InstrKind::Assign);
        assert_eq!(du.def_of(1), Some(y));
        assert!(du.uses_of(1).contains(&(x.index() as u32)));
        assert_eq!(du.kind(2), InstrKind::Relevant);
        assert_eq!(du.uses_of(2), &[y.index() as u32]);
        assert_eq!(du.kind(3), InstrKind::Relevant);
        // x occurs as a def (0), a use (1), and the branch use (3).
        assert_eq!(du.occurrences(x), &[0, 1, 3]);
        // Statements chain; the branch fans out to both targets.
        assert_eq!(du.next_of(0), &[1]);
        assert_eq!(du.next_of(3).len(), 2);
        assert_eq!(du.prev_of(1), &[0]);
    }

    #[test]
    fn patch_equals_cold_build_after_stmt_edit() {
        let mut prog = parse(
            "prog {
               block s { x := 1; y := x + 1; goto m }
               block m { out(y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let prev = DuGraph::build(&prog, &CfgView::new(&prog));
        let m = prog.block_by_name("m").unwrap();
        prog.stmts_mut(m).pop();
        let view = CfgView::new(&prog);
        let cold = DuGraph::build(&prog, &view);
        let patched = DuGraph::patch(&prog, &view, &prev, &[m]);
        assert_eq!(cold, patched);
    }

    #[test]
    fn patch_with_incompatible_shape_falls_back_to_cold() {
        let mut prog = parse("prog { block s { x := 1; goto e } block e { halt } }").unwrap();
        let prev = DuGraph::build(&prog, &CfgView::new(&prog));
        let y = prog.var("freshvar");
        let one = prog.terms_mut().constant(1);
        let s = prog.entry();
        prog.stmts_mut(s).push(Stmt::Assign { lhs: y, rhs: one });
        let view = CfgView::new(&prog);
        let cold = DuGraph::build(&prog, &view);
        let patched = DuGraph::patch(&prog, &view, &prev, &[s]);
        assert_eq!(cold, patched);
    }
}
