//! Gen/kill transfer functions.
//!
//! Every bit-vector analysis of the paper has transfer functions of the
//! form `f(X) = GEN ∪ (X ∖ KILL)`. These compose, which lets the solver
//! work block-at-a-time even though the underlying equations (Table 1)
//! are formulated per instruction: a block's transfer is the composition
//! of its instructions' transfers.

use crate::bitvec::BitVec;

/// A transfer function `f(X) = gen ∪ (X ∖ kill)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenKill {
    /// Bits forced to one.
    pub gen: BitVec,
    /// Bits forced to zero (unless in `gen`).
    pub kill: BitVec,
}

impl GenKill {
    /// The identity transfer over `width` bits.
    pub fn identity(width: usize) -> GenKill {
        GenKill {
            gen: BitVec::zeros(width),
            kill: BitVec::zeros(width),
        }
    }

    /// Creates a transfer from parts.
    ///
    /// # Panics
    ///
    /// Panics if `gen` and `kill` have different lengths.
    pub fn new(gen: BitVec, kill: BitVec) -> GenKill {
        assert_eq!(gen.len(), kill.len(), "gen/kill width mismatch");
        GenKill { gen, kill }
    }

    /// Bit width of the transfer.
    pub fn width(&self) -> usize {
        self.gen.len()
    }

    /// Applies the transfer to `input`.
    pub fn apply(&self, input: &BitVec) -> BitVec {
        let mut out = input.clone();
        out.difference_with(&self.kill);
        out.union_with(&self.gen);
        out
    }

    /// Applies the transfer to `input`, writing the result into `out`
    /// (fully overwritten). Allocation-free variant of
    /// [`GenKill::apply`] for the solver hot loops, which reuse one
    /// scratch vector across evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `out` or `input` width differs from the transfer's.
    pub fn apply_into(&self, input: &BitVec, out: &mut BitVec) {
        out.copy_from(input);
        out.difference_with(&self.kill);
        out.union_with(&self.gen);
    }

    /// Returns `h` with `h(X) = self(inner(X))` — `inner` runs first.
    ///
    /// For a *forward* analysis over a statement sequence `s₁; s₂`,
    /// the block transfer is `f₂.compose_after(f₁)`; for a *backward*
    /// analysis it is `f₁.compose_after(f₂)`.
    pub fn compose_after(&self, inner: &GenKill) -> GenKill {
        // self(inner(x)) = self.gen ∪ ((inner.gen ∪ (x ∖ inner.kill)) ∖ self.kill)
        //                = (self.gen ∪ (inner.gen ∖ self.kill)) ∪ (x ∖ (inner.kill ∪ self.kill))
        let mut gen = inner.gen.clone();
        gen.difference_with(&self.kill);
        gen.union_with(&self.gen);
        let mut kill = inner.kill.clone();
        kill.union_with(&self.kill);
        GenKill { gen, kill }
    }

    /// Folds a sequence of transfers (in execution order) into one,
    /// for a forward analysis.
    pub fn compose_forward<'a>(width: usize, seq: impl Iterator<Item = &'a GenKill>) -> GenKill {
        let mut acc = GenKill::identity(width);
        for f in seq {
            acc = f.compose_after(&acc);
        }
        acc
    }

    /// Folds a sequence of transfers (in execution order) into one,
    /// for a backward analysis (information flows from the last statement
    /// to the first).
    pub fn compose_backward<'a>(width: usize, seq: impl Iterator<Item = &'a GenKill>) -> GenKill {
        let mut acc = GenKill::identity(width);
        for f in seq {
            acc = acc.compose_after(f);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gk(width: usize, gen: &[usize], kill: &[usize]) -> GenKill {
        let mut g = BitVec::zeros(width);
        let mut k = BitVec::zeros(width);
        for &i in gen {
            g.set(i, true);
        }
        for &i in kill {
            k.set(i, true);
        }
        GenKill::new(g, k)
    }

    #[test]
    fn apply_gen_wins_over_kill() {
        let f = gk(4, &[0, 1], &[1, 2]);
        let input: BitVec = [2usize, 3].into_iter().collect::<BitVec>();
        let mut input4 = BitVec::zeros(4);
        for i in input.iter_ones() {
            input4.set(i, true);
        }
        let out = f.apply(&input4);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![0, 1, 3]);
    }

    #[test]
    fn composition_equals_sequential_application() {
        let f1 = gk(5, &[0], &[1, 3]);
        let f2 = gk(5, &[1], &[0, 4]);
        let composed = f2.compose_after(&f1);
        for trial in 0..32u32 {
            let mut x = BitVec::zeros(5);
            for b in 0..5 {
                x.set(b, trial >> b & 1 == 1);
            }
            assert_eq!(composed.apply(&x), f2.apply(&f1.apply(&x)), "trial {trial}");
        }
    }

    #[test]
    fn forward_and_backward_folds() {
        let s1 = gk(3, &[0], &[]);
        let s2 = gk(3, &[], &[0]);
        // forward: s1 then s2 → bit 0 killed at exit.
        let fwd = GenKill::compose_forward(3, [&s1, &s2].into_iter());
        assert!(!fwd.apply(&BitVec::zeros(3)).get(0));
        // backward: information passes s2 first, then s1 → bit 0 generated
        // at entry.
        let bwd = GenKill::compose_backward(3, [&s1, &s2].into_iter());
        assert!(bwd.apply(&BitVec::zeros(3)).get(0));
    }

    #[test]
    fn identity_is_neutral() {
        let f = gk(4, &[2], &[3]);
        let id = GenKill::identity(4);
        assert_eq!(f.compose_after(&id), f);
        assert_eq!(id.compose_after(&f), f);
    }
}
