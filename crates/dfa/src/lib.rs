//! Bit-vector data-flow analysis framework for the PDCE reproduction.
//!
//! Three layers:
//!
//! * [`bitvec`] — dense fixed-width bit vectors;
//! * [`genkill`] + [`solve`](mod@solve) — block-level gen/kill problems solved by a
//!   worklist algorithm, covering the dead-variable (Table 1) and
//!   delayability (Table 2) analyses of the paper plus the baseline
//!   analyses (liveness, reaching definitions/copies, availability,
//!   anticipability);
//! * [`network`] — a slotwise greatest-fixpoint solver for monotone
//!   boolean networks, needed for the faint-variable analysis which is
//!   not expressible as a bit-vector problem (Section 5.2/6.1.2);
//! * [`du`](mod@du) + [`sparse`](mod@sparse) — the def-use chain graph
//!   and the sparse solver family built on it: per-bit forced-value
//!   closures that touch O(affected edges) nodes instead of sweeping
//!   dense rows, selectable as [`SolverStrategy::Sparse`] with the
//!   dense strategies as differential oracle (DESIGN.md §15);
//! * [`pass`](mod@pass) — the pass-manager framework: the [`Pass`] trait every
//!   transform in the workspace implements, and the revision-keyed
//!   [`AnalysisCache`] that shares `CfgView`s, dominators, and solver
//!   solutions across passes instead of rebuilding them per transform.
//!
//! # Example
//!
//! ```
//! use pdce_dfa::{BitVec, GenKill};
//!
//! let mut gen = BitVec::zeros(4);
//! gen.set(1, true);
//! let f = GenKill::new(gen, BitVec::zeros(4));
//! assert!(f.apply(&BitVec::zeros(4)).get(1));
//! ```

pub mod bitvec;
pub mod csr;
pub mod du;
pub mod genkill;
pub mod network;
pub mod pass;
pub mod solve;
pub mod sparse;

pub use bitvec::BitVec;
pub use csr::Csr;
pub use du::{DuGraph, InstrKind};
pub use genkill::GenKill;
pub use network::{
    solve_greatest, solve_greatest_prioritized, solve_greatest_seeded, solve_greatest_sparse,
    NetworkSolution,
};
pub use pass::{run_until_stable, AnalysisCache, CacheStats, Pass, PassOutcome, Preserves};
pub use solve::{
    affected_closure, current_strategy, incremental_enabled, solve, solve_fn, solve_seeded,
    with_incremental, with_strategy, BitProblem, Direction, Meet, Solution, SolverStrategy,
};
pub use sparse::solve_sparse;
