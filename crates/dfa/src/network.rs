//! Greatest-fixpoint solver for monotone boolean networks.
//!
//! The faint-variable analysis (Table 1 of the paper) is *not* a
//! bit-vector problem: the equation for a slot `(ι, x)` reads the slot
//! `(ι, lhs_ι)` of a *different variable*. The paper solves it with an
//! "iterative worklist algorithm operating slotwise on bit-vectors"
//! (citing Dhamdhere/Rosen/Zadeck). This module provides the general
//! machinery: a network of boolean slots, each with a *monotone*
//! (non-increasing in the greatest-fixpoint iteration) evaluation
//! function and an explicit dependency structure.
//!
//! Starting from all-true, a slot can only flip to false; each flip
//! enqueues its dependents. Total work is `O(#slots + #dependency edges)`
//! slot evaluations times evaluation cost — exactly the bound used in the
//! paper's Section 6.1.2 complexity argument.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::bitvec::BitVec;
use crate::csr::Csr;

/// Result of solving a boolean network.
#[derive(Debug, Clone)]
pub struct NetworkSolution {
    /// Final slot values (greatest fixpoint).
    pub values: BitVec,
    /// Number of slot evaluations performed.
    pub evaluations: u64,
}

/// Computes the greatest fixpoint of a monotone boolean network.
///
/// * `num_slots` — number of boolean unknowns.
/// * `dependents.neighbors(s)` — slots whose equations read slot `s`
///   (i.e. must be re-evaluated when `s` drops to false), stored as one
///   flat CSR edge array so every flip walks a contiguous slice.
/// * `eval(s, values)` — the right-hand side of slot `s`'s equation over
///   the current values. It must be monotone: flipping any input from
///   true to false may only flip the output from true to false.
///
/// # Panics
///
/// Panics if `dependents.num_nodes() != num_slots`.
pub fn solve_greatest(
    num_slots: usize,
    dependents: &Csr,
    mut eval: impl FnMut(usize, &BitVec) -> bool,
) -> NetworkSolution {
    assert_eq!(
        dependents.num_nodes(),
        num_slots,
        "one dependent slab per slot"
    );
    pdce_trace::fault::fire("solve");
    let trace_span = pdce_trace::span_with(
        "solver",
        "network-solve",
        if pdce_trace::enabled() {
            vec![("slots", num_slots.into())]
        } else {
            Vec::new()
        },
    );
    let mut values = BitVec::ones(num_slots);
    let mut queue: VecDeque<u32> = (0..num_slots as u32).collect();
    let mut queued = BitVec::ones(num_slots);
    let mut evaluations: u64 = 0;
    let mut pops: u64 = 0;

    while let Some(slot) = queue.pop_front() {
        pops += 1;
        pdce_trace::budget::charge_pops(1);
        let s = slot as usize;
        queued.set(s, false);
        if !values.get(s) {
            continue; // already false; false is final.
        }
        evaluations += 1;
        if !eval(s, &values) {
            values.set(s, false);
            for &d in dependents.neighbors(s) {
                let d = d as usize;
                if values.get(d) && !queued.get(d) {
                    queued.set(d, true);
                    queue.push_back(d as u32);
                }
            }
        }
    }
    pdce_trace::record_solver(pdce_trace::SolverStats {
        problems: 1,
        sweeps: 0, // worklist-driven, no sweep structure
        evaluations,
        revisits: pops.saturating_sub(num_slots as u64),
        word_ops: 0,
        fifo_pops: pops,
        priority_pops: 0,
        cold_solves: 1,
        warm_solves: 0,
        seeded_pops: 0,
        sparse_pops: 0,
        sparse_edge_visits: 0,
    });
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![("pops", pops.into()), ("evaluations", evaluations.into())]
    } else {
        Vec::new()
    });
    NetworkSolution {
        values,
        evaluations,
    }
}

/// [`solve_greatest`] with a priority-ordered worklist: ready slots are
/// evaluated smallest `priority[slot]` first instead of FIFO. With
/// priorities following the flow of falsity (e.g. instruction-graph
/// postorder for the backward-flavoured faint analysis), flips reach
/// their dependents before those are first evaluated, cutting
/// re-evaluations. The greatest fixpoint is order-independent, so the
/// result is bit-identical to [`solve_greatest`]'s — the differential
/// property tests check exactly that.
///
/// # Panics
///
/// Panics if `dependents.num_nodes()` or `priority.len()` differ from
/// `num_slots`.
pub fn solve_greatest_prioritized(
    num_slots: usize,
    dependents: &Csr,
    priority: &[u32],
    mut eval: impl FnMut(usize, &BitVec) -> bool,
) -> NetworkSolution {
    assert_eq!(
        dependents.num_nodes(),
        num_slots,
        "one dependent slab per slot"
    );
    assert_eq!(priority.len(), num_slots, "one priority per slot");
    pdce_trace::fault::fire("solve");
    let trace_span = pdce_trace::span_with(
        "solver",
        "network-solve-prioritized",
        if pdce_trace::enabled() {
            vec![("slots", num_slots.into())]
        } else {
            Vec::new()
        },
    );
    let mut values = BitVec::ones(num_slots);
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = (0..num_slots as u32)
        .map(|s| Reverse((priority[s as usize], s)))
        .collect();
    let mut queued = BitVec::ones(num_slots);
    let mut evaluations: u64 = 0;
    let mut pops: u64 = 0;

    while let Some(Reverse((_, slot))) = heap.pop() {
        pops += 1;
        pdce_trace::budget::charge_pops(1);
        let s = slot as usize;
        queued.set(s, false);
        if !values.get(s) {
            continue; // already false; false is final.
        }
        evaluations += 1;
        if !eval(s, &values) {
            values.set(s, false);
            for &d in dependents.neighbors(s) {
                let d = d as usize;
                if values.get(d) && !queued.get(d) {
                    queued.set(d, true);
                    heap.push(Reverse((priority[d], d as u32)));
                }
            }
        }
    }
    pdce_trace::record_solver(pdce_trace::SolverStats {
        problems: 1,
        sweeps: 0,
        evaluations,
        revisits: pops.saturating_sub(num_slots as u64),
        word_ops: 0,
        fifo_pops: 0,
        priority_pops: pops,
        cold_solves: 1,
        warm_solves: 0,
        seeded_pops: 0,
        sparse_pops: 0,
        sparse_edge_visits: 0,
    });
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![("pops", pops.into()), ("evaluations", evaluations.into())]
    } else {
        Vec::new()
    });
    NetworkSolution {
        values,
        evaluations,
    }
}

/// Warm-start variant of [`solve_greatest_prioritized`], seeded from a
/// previous greatest fixpoint.
///
/// `prev_values` must be the fixpoint of the same network before the
/// evaluation functions of the `dirty_slots` changed; `dirty_slots`
/// must cover every slot whose equation (or whose read set) differs
/// from the run that produced `prev_values`. The dependents-closure of
/// the dirty slots — the *dirty instruction cone* — is reset to true
/// and re-iterated; every slot outside the cone keeps its previous
/// value, which is still exact because its equation transitively reads
/// only untouched slots. The result is bit-identical to a cold solve.
///
/// # Panics
///
/// Panics if `dependents.num_nodes()`, `priority.len()`, or
/// `prev_values.len()` differ from `num_slots`.
pub fn solve_greatest_seeded(
    num_slots: usize,
    dependents: &Csr,
    priority: &[u32],
    prev_values: &BitVec,
    dirty_slots: &[u32],
    mut eval: impl FnMut(usize, &BitVec) -> bool,
) -> NetworkSolution {
    assert_eq!(
        dependents.num_nodes(),
        num_slots,
        "one dependent slab per slot"
    );
    assert_eq!(priority.len(), num_slots, "one priority per slot");
    assert_eq!(prev_values.len(), num_slots, "previous fixpoint size");
    pdce_trace::fault::fire("solve");
    let trace_span = pdce_trace::span_with(
        "solver",
        "network-solve-seeded",
        if pdce_trace::enabled() {
            vec![
                ("slots", num_slots.into()),
                ("dirty", dirty_slots.len().into()),
            ]
        } else {
            Vec::new()
        },
    );
    // Dirty cone: closure of the dirty slots along dependents edges.
    let mut cone = BitVec::zeros(num_slots);
    let mut stack: Vec<u32> = Vec::with_capacity(dirty_slots.len());
    for &s in dirty_slots {
        if !cone.get(s as usize) {
            cone.set(s as usize, true);
            stack.push(s);
        }
    }
    while let Some(s) = stack.pop() {
        for &d in dependents.neighbors(s as usize) {
            if !cone.get(d as usize) {
                cone.set(d as usize, true);
                stack.push(d);
            }
        }
    }

    let mut values = prev_values.clone();
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    let mut queued = BitVec::zeros(num_slots);
    let mut seeded: u64 = 0;
    for s in cone.iter_ones() {
        values.set(s, true);
        queued.set(s, true);
        heap.push(Reverse((priority[s], s as u32)));
        seeded += 1;
    }

    let mut evaluations: u64 = 0;
    let mut pops: u64 = 0;
    while let Some(Reverse((_, slot))) = heap.pop() {
        pops += 1;
        pdce_trace::budget::charge_pops(1);
        let s = slot as usize;
        queued.set(s, false);
        if !values.get(s) {
            continue; // already false; false is final.
        }
        evaluations += 1;
        if !eval(s, &values) {
            values.set(s, false);
            // Dependents of cone slots are in the cone by construction,
            // so re-queueing them never resurrects a non-cone value.
            for &d in dependents.neighbors(s) {
                let d = d as usize;
                if values.get(d) && !queued.get(d) {
                    queued.set(d, true);
                    heap.push(Reverse((priority[d], d as u32)));
                }
            }
        }
    }
    pdce_trace::record_solver(pdce_trace::SolverStats {
        problems: 1,
        evaluations,
        revisits: pops.saturating_sub(seeded),
        warm_solves: 1,
        seeded_pops: pops,
        ..pdce_trace::SolverStats::ZERO
    });
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![("pops", pops.into()), ("evaluations", evaluations.into())]
    } else {
        Vec::new()
    });
    NetworkSolution {
        values,
        evaluations,
    }
}

/// Sparse variant of [`solve_greatest`]: instead of seeding the worklist
/// with *every* slot and walking a prebuilt dense dependents CSR, the
/// caller hands over only the slots whose equations are constant-false
/// under the all-true start (`false_seeds`) and a lazy edge enumerator
/// (`dependents_of`), which appends the dependents of a slot to the
/// scratch vector. Slots never named by either stay true without ever
/// being evaluated — for the faint network that is the overwhelming
/// majority, and the dense dependents CSR (instructions × variables
/// edges) is never materialized at all (DESIGN.md §15).
///
/// `dependents_of` must enumerate exactly the edges the dense CSR would
/// hold (duplicates are harmless), and `eval` the same monotone
/// equations, so the greatest fixpoint is bit-identical to
/// [`solve_greatest`]'s — the differential oracle checks that.
///
/// Each seed is one outer-worklist pop (`SolverStats::sparse_pops`);
/// falsity then spreads by plain closure, every traversed edge counted
/// in `sparse_edge_visits`. A slot flips at most once, so total work is
/// `O(#seeds + #edges touched by falsity)`.
pub fn solve_greatest_sparse(
    num_slots: usize,
    false_seeds: &[u32],
    mut dependents_of: impl FnMut(usize, &mut Vec<u32>),
    mut eval: impl FnMut(usize, &BitVec) -> bool,
) -> NetworkSolution {
    pdce_trace::fault::fire("solve");
    let trace_span = pdce_trace::span_with(
        "solver",
        "network-solve-sparse",
        if pdce_trace::enabled() {
            vec![
                ("slots", num_slots.into()),
                ("seeds", false_seeds.len().into()),
            ]
        } else {
            Vec::new()
        },
    );
    let mut values = BitVec::ones(num_slots);
    let mut stack: Vec<u32> = Vec::new();
    let mut evaluations: u64 = 0;
    let mut edge_visits: u64 = 0;
    for &s in false_seeds {
        pdce_trace::budget::charge_pops(1);
        let s = s as usize;
        if values.get(s) {
            evaluations += 1;
            if !eval(s, &values) {
                values.set(s, false);
                stack.push(s as u32);
            }
        }
    }
    let mut deps: Vec<u32> = Vec::new();
    while let Some(s) = stack.pop() {
        deps.clear();
        dependents_of(s as usize, &mut deps);
        for &dep in &deps {
            edge_visits += 1;
            let d = dep as usize;
            if values.get(d) {
                evaluations += 1;
                if !eval(d, &values) {
                    values.set(d, false);
                    stack.push(d as u32);
                }
            }
        }
    }
    pdce_trace::record_solver(pdce_trace::SolverStats {
        problems: 1,
        evaluations,
        sparse_pops: false_seeds.len() as u64,
        sparse_edge_visits: edge_visits,
        cold_solves: 1,
        ..pdce_trace::SolverStats::ZERO
    });
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![
            ("seeds", false_seeds.len().into()),
            ("evaluations", evaluations.into()),
            ("edge_visits", edge_visits.into()),
        ]
    } else {
        Vec::new()
    });
    NetworkSolution {
        values,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chain: slot i is true iff slot i+1 is true; the last slot is false.
    /// Greatest fixpoint: everything false.
    #[test]
    fn falsity_propagates_along_chain() {
        let n = 10;
        let mut dependents = vec![Vec::new(); n];
        for i in 0..n - 1 {
            dependents[i + 1].push(i as u32); // slot i reads slot i+1
        }
        let sol = solve_greatest(n, &Csr::from_lists(&dependents), |s, vals| {
            if s == n - 1 {
                false
            } else {
                vals.get(s + 1)
            }
        });
        assert!(sol.values.none());
    }

    /// A cycle of mutually supporting slots stays true (greatest fixpoint),
    /// which is exactly what the faint analysis needs for cyclic uses.
    #[test]
    fn self_supporting_cycle_stays_true() {
        let n = 3;
        let mut dependents = vec![Vec::new(); n];
        for i in 0..n {
            dependents[(i + 1) % n].push(i as u32); // slot i reads slot i+1 mod n
        }
        let sol = solve_greatest(n, &Csr::from_lists(&dependents), |s, vals| {
            vals.get((s + 1) % n)
        });
        assert_eq!(sol.values.count_ones(), 3);
    }

    /// Conjunction over two inputs: false wins through either side.
    #[test]
    fn conjunction_network() {
        // slot 0 = slot 1 && slot 2; slot 1 = true; slot 2 = false.
        let dependents = Csr::from_lists(&[vec![], vec![0u32], vec![0u32]]);
        let sol = solve_greatest(3, &dependents, |s, vals| match s {
            0 => vals.get(1) && vals.get(2),
            1 => true,
            2 => false,
            _ => unreachable!(),
        });
        assert!(!sol.values.get(0));
        assert!(sol.values.get(1));
        assert!(!sol.values.get(2));
    }

    #[test]
    fn evaluation_count_is_bounded() {
        // Every slot is evaluated at least once; flips cause bounded
        // re-evaluations (≤ 1 + #incoming dependency edges per slot).
        let n = 100;
        let mut dependents = vec![Vec::new(); n];
        for i in 0..n - 1 {
            dependents[i + 1].push(i as u32);
        }
        let sol = solve_greatest(n, &Csr::from_lists(&dependents), |s, vals| {
            if s == n - 1 {
                false
            } else {
                vals.get(s + 1)
            }
        });
        assert!(sol.evaluations <= 2 * n as u64);
    }

    #[test]
    fn empty_network() {
        let empty = Csr::from_lists(&[]);
        let sol = solve_greatest(0, &empty, |_, _| unreachable!());
        assert_eq!(sol.values.len(), 0);
        assert_eq!(sol.evaluations, 0);
        let sol = solve_greatest_prioritized(0, &empty, &[], |_, _| unreachable!());
        assert_eq!(sol.evaluations, 0);
    }

    #[test]
    fn prioritized_matches_fifo_and_saves_evaluations() {
        // Falsity enters at the chain's end; evaluating end-first (small
        // priority = late position) lets every slot see its final input
        // on first evaluation: exactly n evaluations vs ~2n for FIFO.
        let n = 50;
        let mut dependents = vec![Vec::new(); n];
        for i in 0..n - 1 {
            dependents[i + 1].push(i as u32);
        }
        let dependents = Csr::from_lists(&dependents);
        let eval = |s: usize, vals: &BitVec| if s == n - 1 { false } else { vals.get(s + 1) };
        let fifo = solve_greatest(n, &dependents, eval);
        let priority: Vec<u32> = (0..n).map(|s| (n - 1 - s) as u32).collect();
        let prio = solve_greatest_prioritized(n, &dependents, &priority, eval);
        assert_eq!(fifo.values, prio.values);
        assert!(prio.evaluations <= fifo.evaluations);
        assert_eq!(prio.evaluations, n as u64);
    }

    #[test]
    fn seeded_matches_cold_after_local_change() {
        // Chain network; first solve with falsity entering at the end,
        // then "edit" the middle slot's equation to be constant-true and
        // re-solve seeded with only that slot dirty.
        let n = 20;
        let mid = 10;
        let mut dependents = vec![Vec::new(); n];
        for i in 0..n - 1 {
            dependents[i + 1].push(i as u32);
        }
        let dependents = Csr::from_lists(&dependents);
        let priority: Vec<u32> = (0..n).map(|s| (n - 1 - s) as u32).collect();
        let eval_v1 = |s: usize, vals: &BitVec| if s == n - 1 { false } else { vals.get(s + 1) };
        let eval_v2 = |s: usize, vals: &BitVec| if s == mid { true } else { eval_v1(s, vals) };
        let prev = solve_greatest_prioritized(n, &dependents, &priority, eval_v1);
        assert!(prev.values.none());
        let cold = solve_greatest_prioritized(n, &dependents, &priority, eval_v2);
        let warm = solve_greatest_seeded(
            n,
            &dependents,
            &priority,
            &prev.values,
            &[mid as u32],
            eval_v2,
        );
        assert_eq!(warm.values, cold.values);
        // The cone of `mid` is slots 0..=mid; everything past it was
        // untouched and must not have been re-evaluated.
        assert!(warm.evaluations <= (mid + 1) as u64 + 1);
    }

    #[test]
    fn seeded_with_no_dirty_slots_returns_previous_fixpoint() {
        let n = 5;
        let dependents = Csr::from_lists(&vec![Vec::new(); n]);
        let priority = vec![0u32; n];
        let prev = solve_greatest_prioritized(n, &dependents, &priority, |s, _| s % 2 == 0);
        let warm = solve_greatest_seeded(n, &dependents, &priority, &prev.values, &[], |_, _| {
            unreachable!("nothing dirty, nothing evaluated")
        });
        assert_eq!(warm.values, prev.values);
        assert_eq!(warm.evaluations, 0);
    }

    #[test]
    fn sparse_matches_dense_and_skips_untouched_slots() {
        // Chain with falsity entering at the end: the lazy-edge sparse
        // solve must reach the identical fixpoint from the single seed.
        let n = 10;
        let mut dependents = vec![Vec::new(); n];
        for i in 0..n - 1 {
            dependents[i + 1].push(i as u32);
        }
        let csr = Csr::from_lists(&dependents);
        let eval = |s: usize, vals: &BitVec| if s == n - 1 { false } else { vals.get(s + 1) };
        let dense = solve_greatest(n, &csr, eval);
        let sparse = solve_greatest_sparse(
            n,
            &[(n - 1) as u32],
            |s, out| out.extend_from_slice(csr.neighbors(s)),
            eval,
        );
        assert_eq!(dense.values, sparse.values);
        // A self-supporting cycle has no constant-false seed: nothing is
        // evaluated and everything stays true.
        let sol = solve_greatest_sparse(
            3,
            &[],
            |_, _| unreachable!("no falsity, no edges walked"),
            |_, _| unreachable!("no seeds, no evaluations"),
        );
        assert_eq!(sol.values.count_ones(), 3);
        assert_eq!(sol.evaluations, 0);
    }

    #[test]
    fn prioritized_keeps_self_supporting_cycle() {
        let n = 3;
        let mut dependents = vec![Vec::new(); n];
        for i in 0..n {
            dependents[(i + 1) % n].push(i as u32);
        }
        let priority = vec![0u32; n];
        let sol =
            solve_greatest_prioritized(n, &Csr::from_lists(&dependents), &priority, |s, vals| {
                vals.get((s + 1) % n)
            });
        assert_eq!(sol.values.count_ones(), 3);
    }
}
