//! The pass-manager framework: the [`Pass`] trait every transform in the
//! workspace implements, and the revision-keyed [`AnalysisCache`] that
//! lets passes share control-flow and data-flow analyses instead of
//! rebuilding them from scratch.
//!
//! The paper's global algorithm is itself a pass pipeline — *repeat
//! { dce/fce ; ask } until stabilization* (Section 5.1) — and all the
//! surrounding machinery (baselines, LCM, the SSA passes) composes the
//! same way. This module gives that composition a single shape:
//!
//! * a pass is `run(&mut Program, &mut AnalysisCache) -> PassOutcome`;
//! * the cache memoizes [`CfgView`], dominators, and arbitrary typed
//!   analysis solutions, keyed by [`Program::revision`];
//! * a pass that mutates the program declares what survives via
//!   [`Preserves`], so a transform that only edits statement lists (and
//!   leaves every terminator alone) keeps the CFG-shaped entries alive
//!   across the mutation.
//!
//! Correctness never depends on the declarations: an undeclared mutation
//! bumps the program revision and the next cache access rebuilds
//! everything. Declarations only *retain* entries that a revision bump
//! would otherwise discard.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::rc::Rc;

use pdce_ir::{CfgView, ChangeSet, NodeId, Program};

use crate::du::DuGraph;
use crate::solve::incremental_enabled;

/// Registry handles for the cache counter family
/// (`pdce_cache_events_total{kind=...}`). The per-instance [`CacheStats`]
/// below stay the per-run attribution mechanism; these mirror the same
/// increments into the process-global metrics registry so aggregate hit
/// rates survive across caches and worker threads.
mod cache_metrics {
    use pdce_metrics::{global, Counter, Stability};
    use std::sync::{Arc, LazyLock};

    fn event(kind: &'static str) -> Arc<Counter> {
        global().counter(
            "pdce_cache_events_total",
            "AnalysisCache events by kind (hits, misses, relayouts)",
            Stability::Deterministic,
            &[("kind", kind)],
        )
    }

    pub static CFG_HIT: LazyLock<Arc<Counter>> = LazyLock::new(|| event("cfg_hit"));
    pub static CFG_MISS: LazyLock<Arc<Counter>> = LazyLock::new(|| event("cfg_miss"));
    pub static CFG_RELAYOUT: LazyLock<Arc<Counter>> = LazyLock::new(|| event("cfg_relayout"));
    pub static DOM_HIT: LazyLock<Arc<Counter>> = LazyLock::new(|| event("dom_hit"));
    pub static DOM_MISS: LazyLock<Arc<Counter>> = LazyLock::new(|| event("dom_miss"));
    pub static ANALYSIS_HIT: LazyLock<Arc<Counter>> = LazyLock::new(|| event("analysis_hit"));
    pub static ANALYSIS_MISS: LazyLock<Arc<Counter>> = LazyLock::new(|| event("analysis_miss"));
    pub static DU_HIT: LazyLock<Arc<Counter>> = LazyLock::new(|| event("du_hit"));
    pub static DU_MISS: LazyLock<Arc<Counter>> = LazyLock::new(|| event("du_miss"));
    pub static DU_PATCH: LazyLock<Arc<Counter>> = LazyLock::new(|| event("du_patch"));
}

/// What a pass guarantees about cached analyses after it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preserves {
    /// Nothing survives: the pass may have rewired the graph (branch
    /// folding, edge splitting, block merging).
    #[default]
    Nothing,
    /// The control-flow shape survives: the pass only edited statement
    /// lists, never terminators or the block set. [`CfgView`],
    /// orderings, and dominators stay valid; data-flow solutions do not.
    Cfg,
    /// Everything survives: the pass did not mutate the program at all.
    All,
}

/// Outcome of one pass execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PassOutcome {
    /// Whether the program changed structurally.
    pub changed: bool,
    /// Statements removed (eliminations and sink-removals).
    pub removed: u64,
    /// Statements inserted (sink/hoist/LCM insertion points).
    pub inserted: u64,
    /// Statements or terms rewritten in place (copy propagation, LVN,
    /// constant folding).
    pub rewritten: u64,
    /// What the pass preserved in the analysis cache.
    pub preserves: Preserves,
}

impl PassOutcome {
    /// An outcome for a pass that did nothing.
    pub fn unchanged() -> PassOutcome {
        PassOutcome {
            preserves: Preserves::All,
            ..PassOutcome::default()
        }
    }

    /// Folds another outcome into this one (for passes made of passes).
    /// The weaker preservation wins.
    pub fn merge(&mut self, other: &PassOutcome) {
        self.changed |= other.changed;
        self.removed += other.removed;
        self.inserted += other.inserted;
        self.rewritten += other.rewritten;
        self.preserves = match (self.preserves, other.preserves) {
            (Preserves::Nothing, _) | (_, Preserves::Nothing) => Preserves::Nothing,
            (Preserves::Cfg, _) | (_, Preserves::Cfg) => Preserves::Cfg,
            (Preserves::All, Preserves::All) => Preserves::All,
        };
    }
}

/// A program transformation that can run inside a pipeline.
///
/// Implementations must leave the cache *consistent*: after `run`
/// returns, every entry still in the cache must be valid for the current
/// program. The easiest ways to comply are (a) don't touch the cache and
/// let revision tracking invalidate it, or (b) call
/// [`AnalysisCache::retain`] with an honest [`Preserves`] level after
/// mutating.
pub trait Pass {
    /// Stable, human-readable pass name (used by spec parsing and
    /// instrumentation).
    fn name(&self) -> &'static str;

    /// Runs the pass on `prog`, sharing analyses through `cache`.
    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome;
}

/// Cache hit/miss counters, split by the expensive entry kinds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// [`CfgView`] requests served from cache.
    pub cfg_hits: u64,
    /// [`CfgView`] requests that had to rebuild.
    pub cfg_misses: u64,
    /// Dominator-tree requests served from cache.
    pub dom_hits: u64,
    /// Dominator-tree requests that had to rebuild.
    pub dom_misses: u64,
    /// Typed analysis solutions served from cache.
    pub analysis_hits: u64,
    /// Typed analysis solutions that had to be recomputed.
    pub analysis_misses: u64,
    /// Cached [`CfgView`]s whose adjacency and orders survived a
    /// statement-local mutation with only the instruction-arena layout
    /// rebuilt ([`CfgView::relayout`]) — cheaper than a full rebuild,
    /// counted separately from both hits and misses.
    pub cfg_relayouts: u64,
    /// [`DuGraph`] requests served from cache.
    pub du_hits: u64,
    /// [`DuGraph`] requests that had to rebuild (patched or cold).
    pub du_misses: u64,
    /// [`DuGraph`] misses served by splicing the demoted previous graph
    /// ([`DuGraph::patch`]) instead of a cold re-scan — a subset of
    /// `du_misses`, counted separately like `cfg_relayouts`.
    pub du_patches: u64,
}

impl CacheStats {
    /// Total hits over all entry kinds.
    pub fn hits(&self) -> u64 {
        self.cfg_hits + self.dom_hits + self.analysis_hits + self.du_hits
    }

    /// Total misses over all entry kinds.
    pub fn misses(&self) -> u64 {
        self.cfg_misses + self.dom_misses + self.analysis_misses + self.du_misses
    }

    /// The counter delta since an `earlier` snapshot of the same cache
    /// (counters only grow, so plain subtraction is exact).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            cfg_hits: self.cfg_hits - earlier.cfg_hits,
            cfg_misses: self.cfg_misses - earlier.cfg_misses,
            dom_hits: self.dom_hits - earlier.dom_hits,
            dom_misses: self.dom_misses - earlier.dom_misses,
            analysis_hits: self.analysis_hits - earlier.analysis_hits,
            analysis_misses: self.analysis_misses - earlier.analysis_misses,
            cfg_relayouts: self.cfg_relayouts - earlier.cfg_relayouts,
            du_hits: self.du_hits - earlier.du_hits,
            du_misses: self.du_misses - earlier.du_misses,
            du_patches: self.du_patches - earlier.du_patches,
        }
    }
}

/// A revision-keyed memo of analyses for **one** program.
///
/// The cache compares [`Program::revision`] on every access; a mismatch
/// drops every entry (unless the mutating pass called [`retain`] to keep
/// the CFG-shaped ones). A cache must not be shared between different
/// programs — clones included — because revisions of unrelated programs
/// are incomparable.
///
/// [`retain`]: AnalysisCache::retain
///
/// # Example
///
/// ```
/// use pdce_dfa::AnalysisCache;
/// use pdce_ir::parser::parse;
///
/// let mut prog = parse("prog { block s { goto e } block e { halt } }")?;
/// let mut cache = AnalysisCache::new();
/// let a = cache.cfg(&prog);
/// let b = cache.cfg(&prog); // served from cache
/// assert!(std::rc::Rc::ptr_eq(&a, &b));
/// assert_eq!(cache.stats().cfg_hits, 1);
/// prog.touch(); // any mutation invalidates
/// let c = cache.cfg(&prog);
/// assert!(!std::rc::Rc::ptr_eq(&a, &c));
/// # Ok::<(), pdce_ir::ParseError>(())
/// ```
#[derive(Debug, Default)]
pub struct AnalysisCache {
    /// Revision the cached entries are valid for.
    revision: Option<u64>,
    cfg: Option<Rc<CfgView>>,
    doms: Option<Rc<Vec<Option<NodeId>>>>,
    /// The def-use chain graph the sparse solvers propagate over,
    /// revision-cached like the view (DESIGN.md §15).
    du: Option<Rc<DuGraph>>,
    /// Demoted chain graph with the revision it was valid for, kept so
    /// [`AnalysisCache::du`] can splice it ([`DuGraph::patch`]) when the
    /// mutation log proves the delta was statement-local.
    du_stale: Option<(u64, Rc<DuGraph>)>,
    analyses: HashMap<TypeId, Rc<dyn Any>>,
    /// Demoted analysis solutions: the last value of each type together
    /// with the revision it was valid for. Never served as a hit —
    /// consulted only by [`AnalysisCache::analysis_seeded`], which asks
    /// `Program::changes_since` whether the delta back to that revision
    /// is statement-local and, if so, offers the stale value as a
    /// warm-start seed instead of discarding it.
    stale: HashMap<TypeId, (u64, Rc<dyn Any>)>,
    stats: CacheStats,
}

impl AnalysisCache {
    /// Creates an empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache::default()
    }

    /// Hit/miss counters since creation (never reset by invalidation).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops entries that are stale for `prog`'s current revision,
    /// demoting analysis solutions to warm-start seeds.
    ///
    /// The mutation log makes this finer than all-or-nothing: when
    /// `Program::changes_since` proves every intervening mutation was
    /// statement-local, the cached [`CfgView`]'s adjacency, orders, and
    /// dominators are still valid — only the instruction-arena layout
    /// may need a [`CfgView::relayout`]. Structural or unexplained
    /// deltas drop the CFG-shaped entries as before.
    fn sync(&mut self, prog: &Program) {
        let cur = prog.revision();
        if self.revision == Some(cur) {
            return;
        }
        let stmt_local = self
            .revision
            .and_then(|rev| prog.changes_since(rev))
            .is_some_and(|delta| !delta.structural());
        if stmt_local {
            self.refresh_cfg_layout(prog);
        } else {
            self.cfg = None;
            self.doms = None;
        }
        self.demote_analyses();
        self.demote_du();
        self.revision = Some(cur);
    }

    /// Rebuilds the cached view's instruction layout in place when the
    /// program's statement counts drifted from it. Only sound when the
    /// topology is known to be unchanged (statement-local delta or a
    /// [`Preserves::Cfg`] declaration).
    fn refresh_cfg_layout(&mut self, prog: &Program) {
        if let Some(view) = &self.cfg {
            if !view.layout_matches(prog) {
                self.cfg = Some(Rc::new(view.relayout(prog)));
                self.stats.cfg_relayouts += 1;
                cache_metrics::CFG_RELAYOUT.inc();
            }
        }
    }

    /// Moves every fresh analysis entry into the stale map, stamped with
    /// the revision it was valid for. No-op when that revision is
    /// unknown (the entries would be unseedable anyway).
    fn demote_analyses(&mut self) {
        match self.revision {
            Some(rev) => {
                for (key, value) in self.analyses.drain() {
                    self.stale.insert(key, (rev, value));
                }
            }
            None => self.analyses.clear(),
        }
    }

    /// Demotes the fresh chain graph to a patch seed, stamped with the
    /// revision it was valid for (dropped when that is unknown).
    fn demote_du(&mut self) {
        if let (Some(rev), Some(du)) = (self.revision, self.du.take()) {
            self.du_stale = Some((rev, du));
        }
    }

    /// The memoized [`CfgView`] of `prog`.
    pub fn cfg(&mut self, prog: &Program) -> Rc<CfgView> {
        self.sync(prog);
        match &self.cfg {
            Some(view) => {
                debug_assert_eq!(
                    view.num_nodes(),
                    prog.num_blocks(),
                    "cache crossed programs"
                );
                self.stats.cfg_hits += 1;
                cache_metrics::CFG_HIT.inc();
                Rc::clone(view)
            }
            None => {
                self.stats.cfg_misses += 1;
                cache_metrics::CFG_MISS.inc();
                let view = Rc::new(CfgView::new(prog));
                self.cfg = Some(Rc::clone(&view));
                view
            }
        }
    }

    /// The memoized [`DuGraph`] of `prog` — the def-use chain graph the
    /// sparse solver family propagates over.
    ///
    /// On a miss with a demoted previous graph, the mutation log decides
    /// how to rebuild: a provably statement-local delta splices the old
    /// graph's clean-block segments ([`DuGraph::patch`], counted in
    /// [`CacheStats::du_patches`]); structural or unexplained deltas —
    /// or incremental solving disabled via [`incremental_enabled`] —
    /// re-scan cold. Either way the result equals a cold build
    /// bit-for-bit, which the `DuGraph` property test checks under
    /// random mutation sequences.
    pub fn du(&mut self, prog: &Program) -> Rc<DuGraph> {
        self.sync(prog);
        if let Some(du) = &self.du {
            self.stats.du_hits += 1;
            cache_metrics::DU_HIT.inc();
            return Rc::clone(du);
        }
        self.stats.du_misses += 1;
        cache_metrics::DU_MISS.inc();
        let view = self.cfg(prog);
        let patched = if incremental_enabled() {
            self.du_stale.as_ref().and_then(|(rev, prev)| {
                let delta = prog.changes_since(*rev)?;
                if delta.structural() {
                    return None;
                }
                Some(Rc::new(DuGraph::patch(
                    prog,
                    &view,
                    prev,
                    delta.dirty_blocks(),
                )))
            })
        } else {
            None
        };
        let du = match patched {
            Some(du) => {
                self.stats.du_patches += 1;
                cache_metrics::DU_PATCH.inc();
                du
            }
            None => Rc::new(DuGraph::build(prog, &view)),
        };
        self.du_stale = None;
        self.du = Some(Rc::clone(&du));
        du
    }

    /// The memoized immediate-dominator vector of `prog`.
    pub fn dominators(&mut self, prog: &Program) -> Rc<Vec<Option<NodeId>>> {
        self.sync(prog);
        if let Some(doms) = &self.doms {
            self.stats.dom_hits += 1;
            cache_metrics::DOM_HIT.inc();
            return Rc::clone(doms);
        }
        self.stats.dom_misses += 1;
        cache_metrics::DOM_MISS.inc();
        let view = self.cfg(prog);
        let doms = Rc::new(view.immediate_dominators());
        self.doms = Some(Rc::clone(&doms));
        doms
    }

    /// The memoized analysis solution of type `T`, computing it with
    /// `build` on a miss. The type is the key: one slot per `T`.
    pub fn analysis<T, F>(&mut self, prog: &Program, build: F) -> Rc<T>
    where
        T: Any,
        F: FnOnce(&Program, &CfgView) -> T,
    {
        self.sync(prog);
        if let Some(entry) = self.analyses.get(&TypeId::of::<T>()) {
            self.stats.analysis_hits += 1;
            cache_metrics::ANALYSIS_HIT.inc();
            return Rc::clone(entry).downcast::<T>().expect("typed slot");
        }
        self.stats.analysis_misses += 1;
        cache_metrics::ANALYSIS_MISS.inc();
        let view = self.cfg(prog);
        let value: Rc<T> = Rc::new(build(prog, &view));
        self.stale.remove(&TypeId::of::<T>());
        self.analyses
            .insert(TypeId::of::<T>(), Rc::clone(&value) as Rc<dyn Any>);
        value
    }

    /// Like [`AnalysisCache::analysis`], but on a miss offers the
    /// demoted previous solution of type `T` as a warm-start seed when
    /// the program's change log proves every mutation since was
    /// statement-local: `build` receives `Some((prev, delta))` with the
    /// dirty-block delta, or `None` when it must solve cold (no previous
    /// value, structural changes, an unexplained revision move, or
    /// incremental solving disabled via [`incremental_enabled`]).
    ///
    /// A warm rebuild still counts as an `analysis_miss` — the hit/miss
    /// counters describe cache residency; warm vs. cold solve telemetry
    /// lives in `SolverStats` (`warm_solves`/`cold_solves`).
    pub fn analysis_seeded<T, F>(&mut self, prog: &Program, build: F) -> Rc<T>
    where
        T: Any,
        F: FnOnce(&Program, &CfgView, Option<(&T, &ChangeSet)>) -> T,
    {
        self.sync(prog);
        if let Some(entry) = self.analyses.get(&TypeId::of::<T>()) {
            self.stats.analysis_hits += 1;
            cache_metrics::ANALYSIS_HIT.inc();
            return Rc::clone(entry).downcast::<T>().expect("typed slot");
        }
        self.stats.analysis_misses += 1;
        cache_metrics::ANALYSIS_MISS.inc();
        let view = self.cfg(prog);
        let seed = if incremental_enabled() {
            self.stale.get(&TypeId::of::<T>()).and_then(|(rev, value)| {
                let delta = prog.changes_since(*rev)?;
                if delta.structural() {
                    return None;
                }
                value.downcast_ref::<T>().map(|prev| (prev, delta))
            })
        } else {
            None
        };
        let value: Rc<T> = Rc::new(match seed {
            Some((prev, delta)) => build(prog, &view, Some((prev, &delta))),
            None => build(prog, &view, None),
        });
        self.stale.remove(&TypeId::of::<T>());
        self.analyses
            .insert(TypeId::of::<T>(), Rc::clone(&value) as Rc<dyn Any>);
        value
    }

    /// Re-validates entries for the program's *current* revision after a
    /// mutation, keeping what `level` says survived. Call this right
    /// after mutating `prog` when the mutation provably preserved the
    /// corresponding structures (e.g. statement-only edits preserve the
    /// CFG). An overly optimistic level is a correctness bug — the cache
    /// trusts it.
    pub fn retain(&mut self, prog: &Program, level: Preserves) {
        match level {
            Preserves::Nothing => {
                // The graph may have been rewired: previous solutions
                // are not even shape-compatible, so stale seeds go too.
                self.cfg = None;
                self.doms = None;
                self.du = None;
                self.du_stale = None;
                self.analyses.clear();
                self.stale.clear();
                self.revision = Some(prog.revision());
            }
            Preserves::Cfg => {
                // Solutions are invalid but the graph survives; demote
                // them to warm-start seeds for `analysis_seeded`. The
                // instruction layout may still have moved (statement
                // edits), so re-derive it from the surviving topology.
                self.refresh_cfg_layout(prog);
                self.demote_analyses();
                self.demote_du();
                self.revision = Some(prog.revision());
            }
            Preserves::All => {
                self.revision = Some(prog.revision());
            }
        }
    }

    /// Drops everything unconditionally, stale seeds included.
    pub fn invalidate(&mut self) {
        self.revision = None;
        self.cfg = None;
        self.doms = None;
        self.du = None;
        self.du_stale = None;
        self.analyses.clear();
        self.stale.clear();
    }
}

/// Runs `passes` in order repeatedly until a full round leaves the
/// program's revision unchanged (i.e. no pass mutated anything), or
/// until `max_rounds` is hit. Returns the merged outcome and the number
/// of rounds executed (including the final no-change round).
pub fn run_until_stable(
    passes: &[&dyn Pass],
    prog: &mut Program,
    cache: &mut AnalysisCache,
    max_rounds: usize,
) -> (PassOutcome, usize) {
    let mut total = PassOutcome::unchanged();
    let mut rounds = 0;
    while rounds < max_rounds {
        rounds += 1;
        let before = prog.revision();
        for pass in passes {
            let outcome = pass.run(prog, cache);
            total.merge(&outcome);
        }
        if prog.revision() == before {
            break;
        }
    }
    (total, rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn prog() -> Program {
        parse(
            "prog {
               block s { x := 1; nondet a b }
               block a { out(x); goto e }
               block b { goto e }
               block e { halt }
             }",
        )
        .unwrap()
    }

    #[test]
    fn cfg_is_cached_until_mutation() {
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        let a = cache.cfg(&p);
        let b = cache.cfg(&p);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().cfg_hits, 1);
        assert_eq!(cache.stats().cfg_misses, 1);
        p.block_mut(p.entry()).stmts.clear();
        let c = cache.cfg(&p);
        assert!(!Rc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().cfg_misses, 2);
    }

    #[test]
    fn retain_cfg_survives_statement_edit() {
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        let a = cache.cfg(&p);
        p.block_mut(p.entry()).stmts.clear(); // statements only
        cache.retain(&p, Preserves::Cfg);
        let b = cache.cfg(&p);
        // The topology survived without a rebuild; only the instruction
        // layout was re-derived (the statement count changed), so the
        // served view is a relayout of `a`, not a cold `CfgView::new`.
        assert_eq!(cache.stats().cfg_hits, 1);
        assert_eq!(cache.stats().cfg_misses, 1);
        assert_eq!(cache.stats().cfg_relayouts, 1);
        assert_eq!(*b, CfgView::new(&p), "relayout must equal a cold rebuild");
        assert_eq!(a.rpo(), b.rpo());
    }

    #[test]
    fn stmt_local_edits_keep_the_view_without_retain() {
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        let a = cache.cfg(&p);
        let entry = p.entry();
        // `stmts_mut` logs a statement-local delta, so even without a
        // `retain` call the next sync keeps the cached topology.
        p.stmts_mut(entry).push(pdce_ir::Stmt::Skip);
        let b = cache.cfg(&p);
        assert_eq!(cache.stats().cfg_misses, 1, "no cold rebuild");
        assert_eq!(cache.stats().cfg_relayouts, 1);
        assert_eq!(*b, CfgView::new(&p));
        // A layout-neutral round-trip (push then pop) relayouts at most
        // once more and never rebuilds.
        p.stmts_mut(entry).pop();
        let c = cache.cfg(&p);
        assert_eq!(cache.stats().cfg_misses, 1);
        assert_eq!(*c, CfgView::new(&p));
        drop((a, b));
    }

    #[test]
    fn typed_analyses_are_keyed_by_type() {
        #[derive(Debug, PartialEq)]
        struct CountA(usize);
        #[derive(Debug, PartialEq)]
        struct CountB(usize);
        let p = prog();
        let mut cache = AnalysisCache::new();
        let a = cache.analysis::<CountA, _>(&p, |p, _| CountA(p.num_stmts()));
        let b = cache.analysis::<CountB, _>(&p, |p, _| CountB(p.num_blocks()));
        assert_eq!(a.0, 2);
        assert_eq!(b.0, 4);
        let a2 = cache.analysis::<CountA, _>(&p, |_, _| panic!("must hit"));
        assert!(Rc::ptr_eq(&a, &a2));
        assert_eq!(cache.stats().analysis_hits, 1);
        assert_eq!(cache.stats().analysis_misses, 2);
    }

    #[test]
    fn retain_cfg_drops_typed_analyses() {
        #[derive(Debug)]
        struct Marker;
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        cache.analysis::<Marker, _>(&p, |_, _| Marker);
        p.block_mut(p.entry()).stmts.clear();
        cache.retain(&p, Preserves::Cfg);
        cache.analysis::<Marker, _>(&p, |_, _| Marker);
        assert_eq!(cache.stats().analysis_misses, 2);
    }

    #[test]
    fn analysis_seeded_offers_previous_solution_after_stmt_edit() {
        #[derive(Debug)]
        struct Count(usize);
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        let entry = p.entry();
        cache.analysis_seeded::<Count, _>(&p, |p, _, seed| {
            assert!(seed.is_none(), "first build is cold");
            Count(p.num_stmts())
        });
        p.stmts_mut(entry).pop();
        cache.retain(&p, Preserves::Cfg);
        let warm = crate::solve::with_incremental(true, || {
            cache.analysis_seeded::<Count, _>(&p, |p, _, seed| {
                let (prev, delta) = seed.expect("stmt-local delta must offer a seed");
                assert_eq!(prev.0, 2);
                assert!(!delta.structural());
                assert_eq!(delta.dirty_blocks(), &[entry]);
                Count(p.num_stmts())
            })
        });
        assert_eq!(warm.0, 1);
        // Same revision again: a plain hit, no rebuild.
        cache.analysis_seeded::<Count, _>(&p, |_, _, _| panic!("must hit"));
        assert_eq!(cache.stats().analysis_hits, 1);
        assert_eq!(cache.stats().analysis_misses, 2);
    }

    #[test]
    fn analysis_seeded_goes_cold_on_structural_or_disabled() {
        #[derive(Debug)]
        struct Count(usize);
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        cache.analysis_seeded::<Count, _>(&p, |p, _, _| Count(p.num_blocks()));

        // Structural change: no seed.
        let exit = p.exit();
        p.add_block(pdce_ir::Block::new(
            "fresh",
            pdce_ir::Terminator::Goto(exit),
        ))
        .unwrap();
        cache.analysis_seeded::<Count, _>(&p, |p, _, seed| {
            assert!(seed.is_none(), "structural delta must not be seedable");
            Count(p.num_blocks())
        });

        // Statement edit but incremental disabled: no seed either.
        let entry = p.entry();
        p.stmts_mut(entry).pop();
        cache.retain(&p, Preserves::Cfg);
        let cold = crate::solve::with_incremental(false, || {
            cache.analysis_seeded::<Count, _>(&p, |p, _, seed| {
                assert!(seed.is_none(), "disabled incremental must solve cold");
                Count(p.num_blocks())
            })
        });
        assert_eq!(cold.0, 5);
    }

    #[test]
    fn retain_nothing_drops_stale_seeds() {
        #[derive(Debug)]
        struct Count(usize);
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        cache.analysis_seeded::<Count, _>(&p, |p, _, _| Count(p.num_stmts()));
        let entry = p.entry();
        p.stmts_mut(entry).pop();
        cache.retain(&p, Preserves::Nothing);
        let rebuilt = cache.analysis_seeded::<Count, _>(&p, |p, _, seed| {
            assert!(seed.is_none(), "retain(Nothing) must drop seeds");
            Count(p.num_stmts())
        });
        assert_eq!(rebuilt.0, 1);
    }

    #[test]
    fn du_graph_is_cached_and_patched_after_stmt_edit() {
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        let a = cache.du(&p);
        let b = cache.du(&p);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().du_hits, 1);
        assert_eq!(cache.stats().du_misses, 1);
        assert_eq!(cache.stats().du_patches, 0);
        // Statement-local edit: the next request splices the demoted
        // graph instead of re-scanning, and must equal a cold build.
        let entry = p.entry();
        p.stmts_mut(entry).push(pdce_ir::Stmt::Skip);
        let c = crate::solve::with_incremental(true, || cache.du(&p));
        assert_eq!(cache.stats().du_misses, 2);
        assert_eq!(cache.stats().du_patches, 1);
        assert_eq!(*c, DuGraph::build(&p, &CfgView::new(&p)));
    }

    #[test]
    fn du_graph_rebuilds_cold_on_structural_change_or_disabled() {
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        cache.du(&p);
        let exit = p.exit();
        p.add_block(pdce_ir::Block::new(
            "fresh",
            pdce_ir::Terminator::Goto(exit),
        ))
        .unwrap();
        let c = cache.du(&p);
        assert_eq!(cache.stats().du_patches, 0, "structural delta: no patch");
        assert_eq!(*c, DuGraph::build(&p, &CfgView::new(&p)));
        // Statement edit with incremental disabled: cold as well.
        let entry = p.entry();
        p.stmts_mut(entry).pop();
        crate::solve::with_incremental(false, || cache.du(&p));
        assert_eq!(cache.stats().du_patches, 0);
        // retain(Nothing) drops both the fresh graph and the patch seed.
        cache.retain(&p, Preserves::Nothing);
        cache.du(&p);
        assert_eq!(cache.stats().du_patches, 0);
    }

    #[test]
    fn dominators_cached() {
        let p = prog();
        let mut cache = AnalysisCache::new();
        let a = cache.dominators(&p);
        let b = cache.dominators(&p);
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().dom_hits, 1);
        assert_eq!(a[p.entry().index()], Some(p.entry()));
    }

    #[test]
    fn run_until_stable_counts_rounds() {
        struct PopOnce;
        impl Pass for PopOnce {
            fn name(&self) -> &'static str {
                "pop-once"
            }
            fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
                let entry = prog.entry();
                if prog.block(entry).stmts.is_empty() {
                    return PassOutcome::unchanged();
                }
                prog.block_mut(entry).stmts.pop();
                cache.retain(prog, Preserves::Cfg);
                PassOutcome {
                    changed: true,
                    removed: 1,
                    preserves: Preserves::Cfg,
                    ..PassOutcome::default()
                }
            }
        }
        let mut p = prog();
        let mut cache = AnalysisCache::new();
        let (outcome, rounds) = run_until_stable(&[&PopOnce], &mut p, &mut cache, 100);
        assert_eq!(outcome.removed, 1);
        assert!(outcome.changed);
        assert_eq!(rounds, 2, "one working round + one stable round");
    }

    #[test]
    fn outcome_merge_takes_weakest_preservation() {
        let mut a = PassOutcome::unchanged();
        a.merge(&PassOutcome {
            preserves: Preserves::Cfg,
            ..PassOutcome::default()
        });
        assert_eq!(a.preserves, Preserves::Cfg);
        a.merge(&PassOutcome::default());
        assert_eq!(a.preserves, Preserves::Nothing);
    }
}
