//! Worklist solver for block-level bit-vector problems.
//!
//! The solver computes the *greatest* or *least* fixpoint of a gen/kill
//! system over a control-flow graph, in either direction, with either
//! meet. The paper's analyses are all all-paths problems (meet = ∩,
//! greatest fixpoint): dead variables and delayability; the baselines add
//! may-problems (reaching definitions/copies, meet = ∪, least fixpoint).
//!
//! Two scheduling strategies are available (see [`SolverStrategy`]):
//! the original round-robin sweep (the FIFO reference implementation)
//! and a direction-aware priority worklist that only re-evaluates nodes
//! whose inputs may have changed, earliest-in-iteration-order first.
//! Both compute the identical fixpoint — monotone systems over finite
//! lattices have a unique Kleene fixpoint from the optimistic start —
//! which the differential oracle in `tests/` checks bit-for-bit.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::OnceLock;

use pdce_ir::{CfgView, NodeId};

use crate::bitvec::BitVec;
use crate::genkill::GenKill;

/// Scheduling strategy of the fixpoint solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverStrategy {
    /// Full sweeps over the iteration order until one sweep changes
    /// nothing. Every node evaluation counts as one pop of the implicit
    /// whole-order FIFO. Kept as the reference implementation the
    /// priority strategy is differentially tested against.
    Fifo,
    /// Priority worklist keyed by iteration-order index — reverse
    /// postorder for forward problems, postorder for backward ones — so
    /// information crosses the graph in as few re-evaluations as
    /// possible (cf. Krause's "lospre in linear time" scheduling
    /// argument). Uses sparse word-skipping meets.
    #[default]
    Priority,
    /// Sparse propagation over the def-use chain graph: each bit gets
    /// its own worklist task seeded from the nodes that force it, and
    /// the forced value is closed through identity-transfer nodes along
    /// flow edges. Work is O(affected edges) per bit rather than a
    /// dense sweep of every node's full row; the dense strategies
    /// remain the differential oracle (DESIGN.md §15).
    Sparse,
}

impl SolverStrategy {
    /// Parses a strategy name as used by `--solver` and the `SOLVER`
    /// environment variable.
    pub fn parse(s: &str) -> Option<SolverStrategy> {
        match s {
            "fifo" => Some(SolverStrategy::Fifo),
            "priority" => Some(SolverStrategy::Priority),
            "sparse" => Some(SolverStrategy::Sparse),
            _ => None,
        }
    }

    /// The canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            SolverStrategy::Fifo => "fifo",
            SolverStrategy::Priority => "priority",
            SolverStrategy::Sparse => "sparse",
        }
    }
}

thread_local! {
    /// Scoped override installed by [`with_strategy`].
    static STRATEGY: Cell<Option<SolverStrategy>> = const { Cell::new(None) };
}

/// Process-wide strategy from the `SOLVER` environment variable,
/// resolved once (unknown values fall back to the default).
static ENV_STRATEGY: OnceLock<Option<SolverStrategy>> = OnceLock::new();

fn env_strategy() -> Option<SolverStrategy> {
    *ENV_STRATEGY.get_or_init(|| {
        std::env::var("SOLVER")
            .ok()
            .and_then(|v| SolverStrategy::parse(&v))
    })
}

/// The strategy solvers on this thread currently use: the innermost
/// [`with_strategy`] scope if any, else the `SOLVER` environment
/// variable (`fifo` / `priority` / `sparse`), else
/// [`SolverStrategy::Priority`].
pub fn current_strategy() -> SolverStrategy {
    STRATEGY
        .with(|s| s.get())
        .or_else(env_strategy)
        .unwrap_or_default()
}

/// Runs `f` with every solver on this thread using `strategy`,
/// restoring the previous selection afterwards (also on panic). This is
/// how the differential tests pit the strategies against each other
/// in-process.
pub fn with_strategy<R>(strategy: SolverStrategy, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<SolverStrategy>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            STRATEGY.with(|s| s.set(prev));
        }
    }
    let prev = STRATEGY.with(|s| s.replace(Some(strategy)));
    let _restore = Restore(prev);
    f()
}

thread_local! {
    /// Scoped override installed by [`with_incremental`].
    static INCREMENTAL: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Process-wide incremental toggle from the `INCREMENTAL` environment
/// variable, resolved once (unknown values fall back to the default).
static ENV_INCREMENTAL: OnceLock<Option<bool>> = OnceLock::new();

fn env_incremental() -> Option<bool> {
    *ENV_INCREMENTAL.get_or_init(|| {
        std::env::var("INCREMENTAL")
            .ok()
            .and_then(|v| match v.as_str() {
                "on" | "1" | "true" => Some(true),
                "off" | "0" | "false" => Some(false),
                _ => None,
            })
    })
}

/// Whether warm-start (seeded) re-solving is enabled on this thread:
/// the innermost [`with_incremental`] scope if any, else the
/// `INCREMENTAL` environment variable (`on` / `off`), else on.
///
/// When off, every analysis request falls back to a cold solve from the
/// lattice bound — the reference path the warm≡cold differential oracle
/// compares against, selectable via `--no-incremental` on the CLI.
pub fn incremental_enabled() -> bool {
    INCREMENTAL
        .with(|s| s.get())
        .or_else(env_incremental)
        .unwrap_or(true)
}

/// Runs `f` with incremental re-analysis forced on or off on this
/// thread, restoring the previous selection afterwards (also on panic).
/// This is how the differential tests pit warm-start against cold-start
/// in-process.
pub fn with_incremental<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            INCREMENTAL.with(|s| s.set(prev));
        }
    }
    let prev = INCREMENTAL.with(|s| s.replace(Some(enabled)));
    let _restore = Restore(prev);
    f()
}

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Information flows along edges (entry → exit).
    Forward,
    /// Information flows against edges (exit → entry).
    Backward,
}

/// Confluence operator at join points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meet {
    /// All-paths (must) problems; optimistic interior init is all-ones.
    Intersection,
    /// Any-path (may) problems; optimistic interior init is all-zeros.
    Union,
}

/// A block-level bit-vector data-flow problem.
#[derive(Debug, Clone)]
pub struct BitProblem {
    /// Direction of flow.
    pub direction: Direction,
    /// Confluence operator.
    pub meet: Meet,
    /// Bit width of the vectors.
    pub width: usize,
    /// Per-node transfer functions, indexed by node index.
    pub transfer: Vec<GenKill>,
    /// Boundary value: at the entry's entry (forward) or the exit's exit
    /// (backward).
    pub boundary: BitVec,
}

/// Solution of a [`BitProblem`].
///
/// `entry[n]`/`exit[n]` are the values at block entry and exit in
/// *program* orientation, independent of analysis direction.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value at each block's entry.
    pub entry: Vec<BitVec>,
    /// Value at each block's exit.
    pub exit: Vec<BitVec>,
    /// Number of node evaluations performed (for complexity experiments).
    pub evaluations: u64,
    /// Full sweeps over the iteration order until the fixpoint was
    /// certified (the final no-change sweep included).
    pub sweeps: u64,
    /// `u64` word operations spent on bit-vector meets, transfers, and
    /// convergence compares — the paper's bit-vector cost unit.
    pub word_ops: u64,
}

impl Solution {
    /// Value at the entry of `n`.
    pub fn at_entry(&self, n: NodeId) -> &BitVec {
        &self.entry[n.index()]
    }

    /// Value at the exit of `n`.
    pub fn at_exit(&self, n: NodeId) -> &BitVec {
        &self.exit[n.index()]
    }
}

/// Solves `problem` over the graph `view` with a worklist algorithm.
///
/// # Panics
///
/// Panics if `problem.transfer.len()` does not match the node count or
/// widths are inconsistent.
pub fn solve(view: &CfgView, problem: &BitProblem) -> Solution {
    let n = view.num_nodes();
    assert_eq!(problem.transfer.len(), n, "one transfer per node required");
    assert_eq!(problem.boundary.len(), problem.width);
    for t in &problem.transfer {
        assert_eq!(t.width(), problem.width, "transfer width mismatch");
    }
    if current_strategy() == SolverStrategy::Sparse {
        return crate::sparse::solve_sparse(view, problem);
    }
    solve_fn(
        view,
        problem.direction,
        problem.meet,
        problem.width,
        &problem.boundary,
        |node, input, out| problem.transfer[node.index()].apply_into(input, out),
    )
}

/// Generalized solver taking the block transfer as a function.
///
/// [`solve`] uses pre-composed gen/kill block summaries; this entry
/// point lets a client apply per-instruction transfers on every
/// evaluation instead (the ablation benchmarked in `pdce-bench`), or
/// use transfers that are not of gen/kill shape at all. The transfer
/// writes its result into the provided scratch vector (fully
/// overwriting it) so the hot loop reuses one buffer across all
/// evaluations instead of allocating per call.
///
/// # Panics
///
/// Panics if `boundary.len() != width`.
pub fn solve_fn(
    view: &CfgView,
    direction: Direction,
    meet: Meet,
    width: usize,
    boundary: &BitVec,
    mut transfer: impl FnMut(NodeId, &BitVec, &mut BitVec),
) -> Solution {
    let n = view.num_nodes();
    assert_eq!(boundary.len(), width, "boundary width mismatch");
    pdce_trace::fault::fire("solve");
    // The sparse strategy needs gen/kill-shaped transfers and is
    // dispatched in [`solve`] before this generalized entry point; a
    // caller handing us an opaque closure under `sparse` (the
    // per-instruction ablation) runs the priority discipline instead
    // and records its pops as such.
    let strategy = match current_strategy() {
        SolverStrategy::Sparse => SolverStrategy::Priority,
        s => s,
    };
    let trace_span = pdce_trace::span_with(
        "solver",
        "bitvec-solve",
        if pdce_trace::enabled() {
            vec![
                (
                    "direction",
                    match direction {
                        Direction::Forward => "forward",
                        Direction::Backward => "backward",
                    }
                    .into(),
                ),
                (
                    "meet",
                    match meet {
                        Meet::Intersection => "intersection",
                        Meet::Union => "union",
                    }
                    .into(),
                ),
                ("strategy", strategy.name().into()),
                ("width", width.into()),
                ("nodes", n.into()),
            ]
        } else {
            Vec::new()
        },
    );
    // Words per bit vector: the unit of the word-operation counter.
    let words = width.div_ceil(64) as u64;

    let interior_init = match meet {
        Meet::Intersection => BitVec::ones(width),
        Meet::Union => BitVec::zeros(width),
    };

    // `input[n]` is the meet-side value (entry for forward, exit for
    // backward); `output[n]` is the transferred value.
    let mut input = vec![interior_init.clone(); n];
    let mut output = vec![interior_init.clone(); n];
    let boundary_node = match direction {
        Direction::Forward => view.entry(),
        Direction::Backward => view.exit(),
    };
    input[boundary_node.index()] = boundary.clone();

    // Iterate in an order that converges fast: RPO for forward problems,
    // postorder for backward ones — both precomputed slices of the view.
    let order: &[NodeId] = match direction {
        Direction::Forward => view.rpo(),
        Direction::Backward => view.postorder(),
    };

    let mut evaluations: u64 = 0;
    let mut sweeps: u64 = 0;
    let mut word_ops: u64 = 0;
    // Scratch vectors reused across every evaluation: the meet
    // accumulator swaps into `input` (taking the old row as the next
    // round's buffer) and the transfer result swaps into `output`.
    let mut acc = interior_init.clone();
    let mut new_out = interior_init.clone();
    match strategy {
        SolverStrategy::Fifo => {
            // Initial sweep computes outputs; subsequent sweeps propagate.
            let mut changed = true;
            while changed {
                changed = false;
                sweeps += 1;
                for &node in order {
                    evaluations += 1;
                    pdce_trace::budget::charge_pops(1);
                    // Meet over flow-predecessors.
                    if node != boundary_node {
                        let sources: &[NodeId] = match direction {
                            Direction::Forward => view.preds(node),
                            Direction::Backward => view.succs(node),
                        };
                        if !sources.is_empty() {
                            // One copy plus one meet per further source.
                            word_ops += words * sources.len() as u64;
                            acc.copy_from(&output[sources[0].index()]);
                            for &src in &sources[1..] {
                                match meet {
                                    Meet::Intersection => acc.intersect_with(&output[src.index()]),
                                    Meet::Union => acc.union_with(&output[src.index()]),
                                }
                            }
                            std::mem::swap(&mut input[node.index()], &mut acc);
                        }
                    }
                    // Gen/kill transfer (&!kill then |gen) plus the
                    // convergence compare.
                    word_ops += words * 3;
                    transfer(node, &input[node.index()], &mut new_out);
                    if new_out != output[node.index()] {
                        std::mem::swap(&mut output[node.index()], &mut new_out);
                        changed = true;
                    }
                }
            }
        }
        SolverStrategy::Priority => {
            // Position of each node in the iteration order; u32::MAX for
            // nodes outside it (unreachable — never evaluated, exactly
            // like the sweep, so their outputs stay the meet identity).
            let mut order_pos = vec![u32::MAX; n];
            for (i, &node) in order.iter().enumerate() {
                order_pos[node.index()] = i as u32;
            }
            // Min-heap over order positions, seeded with every node;
            // `queued` dedups so a position is in the heap at most once.
            let mut heap: BinaryHeap<Reverse<u32>> = (0..order.len() as u32).map(Reverse).collect();
            let mut queued = BitVec::ones(order.len());
            while let Some(Reverse(pos)) = heap.pop() {
                queued.set(pos as usize, false);
                let node = order[pos as usize];
                evaluations += 1;
                pdce_trace::budget::charge_pops(1);
                if node != boundary_node {
                    let sources: &[NodeId] = match direction {
                        Direction::Forward => view.preds(node),
                        Direction::Backward => view.succs(node),
                    };
                    if !sources.is_empty() {
                        // One copy, then sparse word-skipping meets that
                        // only touch (and only count) non-identity words.
                        word_ops += words;
                        acc.copy_from(&output[sources[0].index()]);
                        for &src in &sources[1..] {
                            word_ops += match meet {
                                Meet::Intersection => acc.intersect_with_skip(&output[src.index()]),
                                Meet::Union => acc.union_with_skip(&output[src.index()]),
                            };
                        }
                        std::mem::swap(&mut input[node.index()], &mut acc);
                    }
                }
                word_ops += words * 3;
                transfer(node, &input[node.index()], &mut new_out);
                if new_out != output[node.index()] {
                    std::mem::swap(&mut output[node.index()], &mut new_out);
                    // Re-queue flow-successors whose meet reads this
                    // node's output.
                    let dependents: &[NodeId] = match direction {
                        Direction::Forward => view.succs(node),
                        Direction::Backward => view.preds(node),
                    };
                    for &d in dependents {
                        let dpos = order_pos[d.index()];
                        if dpos != u32::MAX && !queued.get(dpos as usize) {
                            queued.set(dpos as usize, true);
                            heap.push(Reverse(dpos));
                        }
                    }
                }
            }
        }
        SolverStrategy::Sparse => unreachable!("sparse is mapped to the priority discipline above"),
    }

    // Every evaluation is one worklist pop: explicit for the priority
    // heap, one pop of the implicit whole-order FIFO for the sweep.
    pdce_trace::record_solver(pdce_trace::SolverStats {
        problems: 1,
        sweeps,
        evaluations,
        revisits: evaluations.saturating_sub(order.len() as u64),
        word_ops,
        fifo_pops: match strategy {
            SolverStrategy::Fifo => evaluations,
            _ => 0,
        },
        priority_pops: match strategy {
            SolverStrategy::Priority => evaluations,
            _ => 0,
        },
        cold_solves: 1,
        ..pdce_trace::SolverStats::ZERO
    });
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![
            ("sweeps", sweeps.into()),
            ("evaluations", evaluations.into()),
            ("word_ops", word_ops.into()),
        ]
    } else {
        Vec::new()
    });

    match direction {
        Direction::Forward => Solution {
            entry: input,
            exit: output,
            evaluations,
            sweeps,
            word_ops,
        },
        Direction::Backward => Solution {
            entry: output,
            exit: input,
            evaluations,
            sweeps,
            word_ops,
        },
    }
}

/// The flow-closure of `dirty`: every node reachable from a dirty node
/// along the direction information propagates in (transitive successors
/// for forward problems, transitive predecessors for backward ones),
/// dirty nodes included. Returned as a dense membership mask.
///
/// This is a sound over-approximation of the region a seeded re-solve
/// may have to re-iterate: any node outside it has an input chain that
/// never crosses a dirty node, so its previous fixpoint value is still
/// exact. [`solve_seeded`] itself works on a much sharper, per-bit
/// region derived from the gen/kill delta — the closure remains the
/// outer node-level bound of what can change (useful for property
/// tests and impact estimates).
pub fn affected_closure(view: &CfgView, direction: Direction, dirty: &[NodeId]) -> BitVec {
    let n = view.num_nodes();
    let mut in_set = BitVec::zeros(n);
    let mut stack: Vec<NodeId> = Vec::with_capacity(dirty.len());
    for &d in dirty {
        if !in_set.get(d.index()) {
            in_set.set(d.index(), true);
            stack.push(d);
        }
    }
    while let Some(node) = stack.pop() {
        let next: &[NodeId] = match direction {
            Direction::Forward => view.succs(node),
            Direction::Backward => view.preds(node),
        };
        for &m in next {
            if !in_set.get(m.index()) {
                in_set.set(m.index(), true);
                stack.push(m);
            }
        }
    }
    in_set
}

/// Warm-start solve of `problem`, seeded from a previous fixpoint.
///
/// `prev` must be the solution of `prev_problem` over the same CFG; the
/// result is then bit-identical to a cold [`solve`] of `problem`.
/// `dirty` names the blocks whose statements changed since (it scopes
/// the trace span); correctness does not depend on it, because the
/// solver diffs `prev_problem` against `problem` node by node and works
/// off the *semantic* delta. Structural (CFG) changes are not seedable;
/// callers detect them via `Program::changes_since` and fall back to a
/// cold solve, and the solver itself falls back when the two problems
/// disagree on direction, meet, width, node count, or boundary.
///
/// The re-solve exploits that a gen/kill transfer acts on each bit
/// independently, as one of three functions forming a chain:
/// `const-0 < identity < const-1`. Diffing old against new gen/kill
/// therefore splits every changed bit into a move *toward* the lattice
/// bound the iteration descends from (up for intersection problems,
/// down for union ones) or *away* from it.
///
/// * Moves **away** from the bound only lower the extremal fixpoint, so
///   re-evaluating the changed nodes and chasing actual value changes
///   (plain damped worklist repair) is exact.
/// * Moves **toward** the bound can raise it, and a raise can need
///   mutual support around a cycle — stale values on the back edge
///   would lock the iteration into a non-extremal fixpoint. Those bits
///   are first *elevated*: set to the bound on the rising node and on
///   every node reachable from it through bits the transfers pass
///   unchanged (gen/kill bits stop the propagation, which is what keeps
///   the region small — it is the per-bit refinement of
///   [`affected_closure`]). Elevation restores the invariant that the
///   iteration starts on the extremal side of the new fixpoint, and
///   descending chaotic iteration from there converges to it exactly.
///
/// Nodes with no semantic delta and no elevated bits are never touched:
/// a warm re-solve of an unchanged problem costs zero evaluations, and
/// a damped change re-iterates only its actual impact region instead of
/// the whole flow closure.
///
/// Seeded runs always use priority-heap scheduling regardless of
/// [`current_strategy`] (the fixpoint is scheduling-independent), and
/// record their pops as `seeded_pops`.
///
/// # Panics
///
/// Panics like [`solve`] on transfer/boundary shape mismatches of
/// `problem` itself.
pub fn solve_seeded(
    view: &CfgView,
    problem: &BitProblem,
    prev_problem: &BitProblem,
    prev: &Solution,
    dirty: &[NodeId],
) -> Solution {
    let n = view.num_nodes();
    assert_eq!(problem.transfer.len(), n, "one transfer per node required");
    assert_eq!(problem.boundary.len(), problem.width);
    for t in &problem.transfer {
        assert_eq!(t.width(), problem.width, "transfer width mismatch");
    }
    // A previous solution is only a usable seed when the problem kept
    // its shape; otherwise re-solve from scratch.
    if prev_problem.direction != problem.direction
        || prev_problem.meet != problem.meet
        || prev_problem.width != problem.width
        || prev_problem.transfer.len() != n
        || prev_problem.boundary != problem.boundary
        || prev.entry.len() != n
        || prev.exit.len() != n
    {
        return solve(view, problem);
    }
    let direction = problem.direction;
    let meet = problem.meet;
    let width = problem.width;
    pdce_trace::fault::fire("solve");
    let trace_span = pdce_trace::span_with(
        "solver",
        "bitvec-solve-seeded",
        if pdce_trace::enabled() {
            vec![
                ("width", width.into()),
                ("nodes", n.into()),
                ("dirty", dirty.len().into()),
            ]
        } else {
            Vec::new()
        },
    );
    let words = width.div_ceil(64) as u64;

    // Previous fixpoint mapped to solver orientation: `input` is the
    // meet-side value (entry for forward, exit for backward), `output`
    // the transferred one.
    let (mut input, mut output): (Vec<BitVec>, Vec<BitVec>) = match direction {
        Direction::Forward => (prev.entry.to_vec(), prev.exit.to_vec()),
        Direction::Backward => (prev.exit.to_vec(), prev.entry.to_vec()),
    };
    let boundary_node = match direction {
        Direction::Forward => view.entry(),
        Direction::Backward => view.exit(),
    };
    let order: &[NodeId] = match direction {
        Direction::Forward => view.rpo(),
        Direction::Backward => view.postorder(),
    };
    let mut order_pos = vec![u32::MAX; n];
    for (i, &node) in order.iter().enumerate() {
        order_pos[node.index()] = i as u32;
    }
    // Information flows from a node to its flow-successors; a node's
    // meet reads its flow-predecessors.
    let flow_succs = |node: NodeId| -> &[NodeId] {
        match direction {
            Direction::Forward => view.succs(node),
            Direction::Backward => view.preds(node),
        }
    };

    let mut word_ops: u64 = 0;

    // Per-node semantic delta. On each bit, rank the transfer on the
    // const-0 < identity < const-1 chain and compare old vs new; `gen`
    // wins over `kill` in [`GenKill::apply`], so const-1 is `gen` and
    // const-0 is `kill ∖ gen`.
    let toward_bound = |old: &GenKill, new: &GenKill| -> BitVec {
        // Bits where the new transfer is strictly above the old one:
        // (new const-1 ∧ ¬old const-1) ∪ (new identity ∧ old const-0).
        let mut up = new.gen.clone();
        up.difference_with(&old.gen);
        let mut id_over_zero = old.kill.clone();
        id_over_zero.difference_with(&old.gen);
        id_over_zero.difference_with(&new.gen);
        id_over_zero.difference_with(&new.kill);
        up.union_with(&id_over_zero);
        up
    };
    let mut delta: Vec<BitVec> = Vec::with_capacity(n);
    let mut elevate_seed: Vec<BitVec> = Vec::with_capacity(n);
    for i in 0..n {
        let old = &prev_problem.transfer[i];
        let new = &problem.transfer[i];
        word_ops += words * 4;
        let up = toward_bound(old, new);
        let down = toward_bound(new, old);
        // A move toward the bound can raise the extremal fixpoint and
        // needs elevation; intersection problems descend from ones,
        // union problems ascend from zeros.
        let seed = match meet {
            Meet::Intersection => up.clone(),
            Meet::Union => down.clone(),
        };
        let mut d = up;
        d.union_with(&down);
        delta.push(d);
        elevate_seed.push(seed);
    }

    // Per-bit closure of the rising bits along flow edges. A risen
    // output bit can raise a successor's output only where the
    // successor's transfer is the identity on that bit, so gen/kill
    // bits stop the propagation.
    let mut elevated: Vec<BitVec> = vec![BitVec::zeros(width); n];
    let mut stack: Vec<usize> = Vec::new();
    for i in 0..n {
        if order_pos[i] != u32::MAX && elevate_seed[i].any() {
            elevated[i] = std::mem::replace(&mut elevate_seed[i], BitVec::zeros(0));
            stack.push(i);
        }
    }
    while let Some(v) = stack.pop() {
        for &m in flow_succs(NodeId::from_index(v)) {
            let mi = m.index();
            if order_pos[mi] == u32::MAX {
                continue; // unreachable, never evaluated
            }
            if m == boundary_node {
                continue; // input pinned to the boundary, cannot rise
            }
            let mut add = elevated[v].clone();
            add.difference_with(&problem.transfer[mi].gen);
            add.difference_with(&problem.transfer[mi].kill);
            add.difference_with(&elevated[mi]);
            word_ops += words * 3;
            if add.any() {
                elevated[mi].union_with(&add);
                stack.push(mi);
            }
        }
    }

    // Apply the elevation and enqueue every node whose equation may be
    // violated at the seed: nodes with a semantic delta, nodes whose
    // output the elevation actually moved, and the flow-successors of
    // the latter (their meet input changed).
    let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
    let mut queued = BitVec::zeros(order.len());
    let enqueue = |i: usize, heap: &mut BinaryHeap<Reverse<u32>>, queued: &mut BitVec| {
        let pos = order_pos[i];
        if pos != u32::MAX && !queued.get(pos as usize) {
            queued.set(pos as usize, true);
            heap.push(Reverse(pos));
        }
    };
    for i in 0..n {
        if order_pos[i] == u32::MAX {
            continue;
        }
        if elevated[i].any() {
            word_ops += words * 2;
            let moved = match meet {
                Meet::Intersection => {
                    let moved = !elevated[i].is_subset_of(&output[i]);
                    output[i].union_with(&elevated[i]);
                    moved
                }
                Meet::Union => {
                    let mut hit = elevated[i].clone();
                    hit.intersect_with(&output[i]);
                    let moved = hit.any();
                    output[i].difference_with(&elevated[i]);
                    moved
                }
            };
            if moved {
                enqueue(i, &mut heap, &mut queued);
                for &m in flow_succs(NodeId::from_index(i)) {
                    enqueue(m.index(), &mut heap, &mut queued);
                }
            }
        }
        if delta[i].any() {
            enqueue(i, &mut heap, &mut queued);
        }
    }
    let seeded: u64 = heap.len() as u64;

    // Damped repair: descending (toward-fixpoint) chaotic iteration
    // from the elevated seed, chasing actual value changes only. The
    // meet accumulator and transfer result are scratch vectors reused
    // (via swap) across all pops.
    let mut evaluations: u64 = 0;
    let mut acc = BitVec::zeros(width);
    let mut new_out = BitVec::zeros(width);
    while let Some(Reverse(pos)) = heap.pop() {
        queued.set(pos as usize, false);
        let node = order[pos as usize];
        evaluations += 1;
        pdce_trace::budget::charge_pops(1);
        if node != boundary_node {
            let sources: &[NodeId] = match direction {
                Direction::Forward => view.preds(node),
                Direction::Backward => view.succs(node),
            };
            if !sources.is_empty() {
                word_ops += words;
                acc.copy_from(&output[sources[0].index()]);
                for &src in &sources[1..] {
                    word_ops += match meet {
                        Meet::Intersection => acc.intersect_with_skip(&output[src.index()]),
                        Meet::Union => acc.union_with_skip(&output[src.index()]),
                    };
                }
                std::mem::swap(&mut input[node.index()], &mut acc);
            }
        }
        word_ops += words * 3;
        problem.transfer[node.index()].apply_into(&input[node.index()], &mut new_out);
        if new_out != output[node.index()] {
            std::mem::swap(&mut output[node.index()], &mut new_out);
            for &d in flow_succs(node) {
                enqueue(d.index(), &mut heap, &mut queued);
            }
        }
    }

    pdce_trace::record_solver(pdce_trace::SolverStats {
        problems: 1,
        evaluations,
        revisits: evaluations.saturating_sub(seeded),
        word_ops,
        warm_solves: 1,
        seeded_pops: evaluations,
        ..pdce_trace::SolverStats::ZERO
    });
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![
            ("evaluations", evaluations.into()),
            ("word_ops", word_ops.into()),
        ]
    } else {
        Vec::new()
    });

    match direction {
        Direction::Forward => Solution {
            entry: input,
            exit: output,
            evaluations,
            sweeps: 0,
            word_ops,
        },
        Direction::Backward => Solution {
            entry: output,
            exit: input,
            evaluations,
            sweeps: 0,
            word_ops,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::Program;

    /// Builds a trivial per-node transfer: bit 0 is generated in blocks
    /// whose name is in `gens`, killed in blocks in `kills`.
    fn problem_for(
        prog: &Program,
        direction: Direction,
        meet: Meet,
        gens: &[&str],
        kills: &[&str],
    ) -> BitProblem {
        let width = 1;
        let transfer = prog
            .node_ids()
            .map(|n| {
                let name = prog.block(n).name.as_str();
                let mut gen = BitVec::zeros(width);
                let mut kill = BitVec::zeros(width);
                if gens.contains(&name) {
                    gen.set(0, true);
                }
                if kills.contains(&name) {
                    kill.set(0, true);
                }
                GenKill::new(gen, kill)
            })
            .collect();
        let boundary = match meet {
            Meet::Intersection => BitVec::zeros(width),
            Meet::Union => BitVec::zeros(width),
        };
        BitProblem {
            direction,
            meet,
            width,
            transfer,
            boundary,
        }
    }

    fn diamond() -> Program {
        parse(
            "prog {
               block s { nondet a b }
               block a { goto j }
               block b { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap()
    }

    #[test]
    fn forward_union_reaches_any_path() {
        // "Generated in a": reaches j and e via union.
        let p = diamond();
        let view = CfgView::new(&p);
        let prob = problem_for(&p, Direction::Forward, Meet::Union, &["a"], &[]);
        let sol = solve(&view, &prob);
        let j = p.block_by_name("j").unwrap();
        assert!(sol.at_entry(j).get(0));
        assert!(sol.at_exit(p.exit()).get(0));
        assert!(!sol.at_entry(p.block_by_name("b").unwrap()).get(0));
    }

    #[test]
    fn forward_intersection_requires_all_paths() {
        let p = diamond();
        let view = CfgView::new(&p);
        // Generated only on one arm: does not survive the join under ∩.
        let prob = problem_for(&p, Direction::Forward, Meet::Intersection, &["a"], &[]);
        let sol = solve(&view, &prob);
        let j = p.block_by_name("j").unwrap();
        assert!(!sol.at_entry(j).get(0));
        // Generated on both arms: survives.
        let prob = problem_for(&p, Direction::Forward, Meet::Intersection, &["a", "b"], &[]);
        let sol = solve(&view, &prob);
        assert!(sol.at_entry(j).get(0));
    }

    #[test]
    fn backward_intersection_loop_greatest_fixpoint() {
        // Loop: h <-> body; "generated" at x (after the loop). Under the
        // greatest fixpoint the property holds throughout the loop: on
        // every path to the exit we pass x.
        let p = parse(
            "prog {
               block s { goto h }
               block h { nondet body x }
               block body { goto h }
               block x { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let prob = problem_for(&p, Direction::Backward, Meet::Intersection, &["x"], &[]);
        let sol = solve(&view, &prob);
        let h = p.block_by_name("h").unwrap();
        let body = p.block_by_name("body").unwrap();
        assert!(sol.at_entry(h).get(0));
        assert!(sol.at_entry(body).get(0));
    }

    #[test]
    fn kill_stops_propagation() {
        let p = parse(
            "prog {
               block s { goto a }
               block a { goto k }
               block k { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let prob = problem_for(&p, Direction::Forward, Meet::Union, &["a"], &["k"]);
        let sol = solve(&view, &prob);
        let k = p.block_by_name("k").unwrap();
        assert!(sol.at_entry(k).get(0));
        assert!(!sol.at_exit(k).get(0));
        assert!(!sol.at_entry(p.exit()).get(0));
    }

    #[test]
    fn boundary_overrides_interior_init() {
        let p = diamond();
        let view = CfgView::new(&p);
        // Intersection problem with zero boundary: without boundary
        // handling the all-ones init would claim the property at entry.
        let prob = problem_for(&p, Direction::Forward, Meet::Intersection, &[], &[]);
        let sol = solve(&view, &prob);
        assert!(!sol.at_entry(p.entry()).get(0));
        assert!(!sol.at_exit(p.exit()).get(0));
    }

    #[test]
    fn strategy_parse_and_names_roundtrip() {
        for s in [
            SolverStrategy::Fifo,
            SolverStrategy::Priority,
            SolverStrategy::Sparse,
        ] {
            assert_eq!(SolverStrategy::parse(s.name()), Some(s));
        }
        assert_eq!(SolverStrategy::parse("zap"), None);
    }

    #[test]
    fn with_strategy_scopes_nest_and_restore() {
        let outer = current_strategy();
        with_strategy(SolverStrategy::Fifo, || {
            assert_eq!(current_strategy(), SolverStrategy::Fifo);
            with_strategy(SolverStrategy::Priority, || {
                assert_eq!(current_strategy(), SolverStrategy::Priority);
            });
            assert_eq!(current_strategy(), SolverStrategy::Fifo);
        });
        assert_eq!(current_strategy(), outer);
    }

    #[test]
    fn strategies_reach_identical_fixpoints() {
        // Loopy graph exercising both directions and both meets: the
        // priority worklist must land on the same bit patterns as the
        // reference sweep, node for node.
        let p = parse(
            "prog {
               block s { goto h }
               block h { nondet b1 b2 }
               block b1 { goto h2 }
               block b2 { goto h2 }
               block h2 { nondet h x }
               block x { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        for direction in [Direction::Forward, Direction::Backward] {
            for meet in [Meet::Intersection, Meet::Union] {
                let prob = problem_for(&p, direction, meet, &["b1", "x"], &["b2"]);
                let fifo = with_strategy(SolverStrategy::Fifo, || solve(&view, &prob));
                let prio = with_strategy(SolverStrategy::Priority, || solve(&view, &prob));
                let sparse = with_strategy(SolverStrategy::Sparse, || solve(&view, &prob));
                assert_eq!(fifo.entry, prio.entry, "{direction:?}/{meet:?} entry");
                assert_eq!(fifo.exit, prio.exit, "{direction:?}/{meet:?} exit");
                assert_eq!(
                    fifo.entry, sparse.entry,
                    "{direction:?}/{meet:?} sparse entry"
                );
                assert_eq!(fifo.exit, sparse.exit, "{direction:?}/{meet:?} sparse exit");
                assert!(
                    prio.evaluations <= fifo.evaluations,
                    "priority must not evaluate more than the sweep"
                );
            }
        }
    }

    #[test]
    fn with_incremental_scopes_nest_and_restore() {
        let outer = incremental_enabled();
        with_incremental(false, || {
            assert!(!incremental_enabled());
            with_incremental(true, || assert!(incremental_enabled()));
            assert!(!incremental_enabled());
        });
        assert_eq!(incremental_enabled(), outer);
    }

    #[test]
    fn affected_closure_follows_flow_direction() {
        // s -> h -> x -> e with a back edge x -> h.
        let p = parse(
            "prog {
               block s { goto h }
               block h { goto x }
               block x { nondet h e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let h = p.block_by_name("h").unwrap();
        let fwd = affected_closure(&view, Direction::Forward, &[h]);
        // Forward: h reaches x, e, and itself (via the back edge); not s.
        assert!(!fwd.get(p.block_by_name("s").unwrap().index()));
        assert!(fwd.get(h.index()));
        assert!(fwd.get(p.block_by_name("x").unwrap().index()));
        assert!(fwd.get(p.block_by_name("e").unwrap().index()));
        let bwd = affected_closure(&view, Direction::Backward, &[h]);
        // Backward: h's transitive predecessors are s, x, and h itself.
        assert!(bwd.get(p.block_by_name("s").unwrap().index()));
        assert!(bwd.get(h.index()));
        assert!(bwd.get(p.block_by_name("x").unwrap().index()));
        assert!(!bwd.get(p.block_by_name("e").unwrap().index()));
    }

    #[test]
    fn seeded_solve_matches_cold_solve_after_transfer_change() {
        // Loopy graph; change one node's transfer and re-solve seeded
        // with exactly that node dirty. Exercises all four
        // direction/meet combinations, including the loop case where
        // naive stale-value seeding would converge to a wrong fixpoint.
        let p = parse(
            "prog {
               block s { goto h }
               block h { nondet b1 b2 }
               block b1 { goto h2 }
               block b2 { goto h2 }
               block h2 { nondet h x }
               block x { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let changed = p.block_by_name("b2").unwrap();
        for direction in [Direction::Forward, Direction::Backward] {
            for meet in [Meet::Intersection, Meet::Union] {
                let before = problem_for(&p, direction, meet, &["b1", "x"], &["b2"]);
                let prev = solve(&view, &before);
                // Flip b2 from killing to generating bit 0.
                let mut after = problem_for(&p, direction, meet, &["b1", "b2", "x"], &[]);
                after.boundary = before.boundary.clone();
                let cold = solve(&view, &after);
                let warm = solve_seeded(&view, &after, &before, &prev, &[changed]);
                assert_eq!(cold.entry, warm.entry, "{direction:?}/{meet:?} entry");
                assert_eq!(cold.exit, warm.exit, "{direction:?}/{meet:?} exit");
            }
        }
    }

    #[test]
    fn seeded_solve_with_empty_dirty_set_is_free() {
        let p = diamond();
        let view = CfgView::new(&p);
        let prob = problem_for(&p, Direction::Forward, Meet::Union, &["a"], &[]);
        let prev = solve(&view, &prob);
        let before = pdce_trace::solver_totals();
        let warm = solve_seeded(&view, &prob, &prob, &prev, &[]);
        let delta = pdce_trace::solver_totals().since(&before);
        assert_eq!(warm.entry, prev.entry);
        assert_eq!(warm.exit, prev.exit);
        assert_eq!(warm.evaluations, 0);
        assert_eq!(delta.warm_solves, 1);
        assert_eq!(delta.seeded_pops, 0);
    }

    #[test]
    fn seeded_pops_are_tagged_in_solver_stats() {
        let p = diamond();
        let view = CfgView::new(&p);
        let old = problem_for(&p, Direction::Forward, Meet::Union, &[], &["a"]);
        let prev = solve(&view, &old);
        let mut new = problem_for(&p, Direction::Forward, Meet::Union, &["a"], &[]);
        new.boundary = old.boundary.clone();
        let dirty = [p.block_by_name("a").unwrap()];
        let before = pdce_trace::solver_totals();
        solve_seeded(&view, &new, &old, &prev, &dirty);
        let delta = pdce_trace::solver_totals().since(&before);
        assert_eq!(delta.warm_solves, 1);
        assert_eq!(delta.cold_solves, 0);
        assert!(delta.seeded_pops > 0);
        assert_eq!(delta.fifo_pops, 0);
        assert_eq!(delta.priority_pops, 0);
    }

    #[test]
    fn strategy_pops_are_tagged_in_solver_stats() {
        let p = diamond();
        let view = CfgView::new(&p);
        let prob = problem_for(&p, Direction::Forward, Meet::Union, &["a"], &[]);
        let before = pdce_trace::solver_totals();
        with_strategy(SolverStrategy::Fifo, || solve(&view, &prob));
        let after_fifo = pdce_trace::solver_totals().since(&before);
        assert!(after_fifo.fifo_pops > 0);
        assert_eq!(after_fifo.priority_pops, 0);
        with_strategy(SolverStrategy::Priority, || solve(&view, &prob));
        let after_both = pdce_trace::solver_totals().since(&before);
        assert!(after_both.priority_pops > 0);
        assert_eq!(after_both.fifo_pops, after_fifo.fifo_pops);
        with_strategy(SolverStrategy::Sparse, || solve(&view, &prob));
        let after_sparse = pdce_trace::solver_totals().since(&before);
        assert_eq!(after_sparse.sparse_pops, prob.width as u64);
        assert!(after_sparse.sparse_edge_visits > 0);
        assert_eq!(after_sparse.priority_pops, after_both.priority_pops);
    }
}
