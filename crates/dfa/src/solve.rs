//! Worklist solver for block-level bit-vector problems.
//!
//! The solver computes the *greatest* or *least* fixpoint of a gen/kill
//! system over a control-flow graph, in either direction, with either
//! meet. The paper's analyses are all all-paths problems (meet = ∩,
//! greatest fixpoint): dead variables and delayability; the baselines add
//! may-problems (reaching definitions/copies, meet = ∪, least fixpoint).

use pdce_ir::{CfgView, NodeId};

use crate::bitvec::BitVec;
use crate::genkill::GenKill;

/// Analysis direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Information flows along edges (entry → exit).
    Forward,
    /// Information flows against edges (exit → entry).
    Backward,
}

/// Confluence operator at join points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Meet {
    /// All-paths (must) problems; optimistic interior init is all-ones.
    Intersection,
    /// Any-path (may) problems; optimistic interior init is all-zeros.
    Union,
}

/// A block-level bit-vector data-flow problem.
#[derive(Debug, Clone)]
pub struct BitProblem {
    /// Direction of flow.
    pub direction: Direction,
    /// Confluence operator.
    pub meet: Meet,
    /// Bit width of the vectors.
    pub width: usize,
    /// Per-node transfer functions, indexed by node index.
    pub transfer: Vec<GenKill>,
    /// Boundary value: at the entry's entry (forward) or the exit's exit
    /// (backward).
    pub boundary: BitVec,
}

/// Solution of a [`BitProblem`].
///
/// `entry[n]`/`exit[n]` are the values at block entry and exit in
/// *program* orientation, independent of analysis direction.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Value at each block's entry.
    pub entry: Vec<BitVec>,
    /// Value at each block's exit.
    pub exit: Vec<BitVec>,
    /// Number of node evaluations performed (for complexity experiments).
    pub evaluations: u64,
    /// Full sweeps over the iteration order until the fixpoint was
    /// certified (the final no-change sweep included).
    pub sweeps: u64,
    /// `u64` word operations spent on bit-vector meets, transfers, and
    /// convergence compares — the paper's bit-vector cost unit.
    pub word_ops: u64,
}

impl Solution {
    /// Value at the entry of `n`.
    pub fn at_entry(&self, n: NodeId) -> &BitVec {
        &self.entry[n.index()]
    }

    /// Value at the exit of `n`.
    pub fn at_exit(&self, n: NodeId) -> &BitVec {
        &self.exit[n.index()]
    }
}

/// Solves `problem` over the graph `view` with a worklist algorithm.
///
/// # Panics
///
/// Panics if `problem.transfer.len()` does not match the node count or
/// widths are inconsistent.
pub fn solve(view: &CfgView, problem: &BitProblem) -> Solution {
    let n = view.num_nodes();
    assert_eq!(problem.transfer.len(), n, "one transfer per node required");
    assert_eq!(problem.boundary.len(), problem.width);
    for t in &problem.transfer {
        assert_eq!(t.width(), problem.width, "transfer width mismatch");
    }
    solve_fn(
        view,
        problem.direction,
        problem.meet,
        problem.width,
        &problem.boundary,
        |node, input| problem.transfer[node.index()].apply(input),
    )
}

/// Generalized solver taking the block transfer as a function.
///
/// [`solve`] uses pre-composed gen/kill block summaries; this entry
/// point lets a client apply per-instruction transfers on every
/// evaluation instead (the ablation benchmarked in `pdce-bench`), or
/// use transfers that are not of gen/kill shape at all.
///
/// # Panics
///
/// Panics if `boundary.len() != width`.
pub fn solve_fn(
    view: &CfgView,
    direction: Direction,
    meet: Meet,
    width: usize,
    boundary: &BitVec,
    mut transfer: impl FnMut(NodeId, &BitVec) -> BitVec,
) -> Solution {
    let n = view.num_nodes();
    assert_eq!(boundary.len(), width, "boundary width mismatch");
    let trace_span = pdce_trace::span_with(
        "solver",
        "bitvec-solve",
        if pdce_trace::enabled() {
            vec![
                (
                    "direction",
                    match direction {
                        Direction::Forward => "forward",
                        Direction::Backward => "backward",
                    }
                    .into(),
                ),
                (
                    "meet",
                    match meet {
                        Meet::Intersection => "intersection",
                        Meet::Union => "union",
                    }
                    .into(),
                ),
                ("width", width.into()),
                ("nodes", n.into()),
            ]
        } else {
            Vec::new()
        },
    );
    // Words per bit vector: the unit of the word-operation counter.
    let words = width.div_ceil(64) as u64;

    let interior_init = match meet {
        Meet::Intersection => BitVec::ones(width),
        Meet::Union => BitVec::zeros(width),
    };

    // `input[n]` is the meet-side value (entry for forward, exit for
    // backward); `output[n]` is the transferred value.
    let mut input = vec![interior_init.clone(); n];
    let mut output = vec![interior_init.clone(); n];
    let boundary_node = match direction {
        Direction::Forward => view.entry(),
        Direction::Backward => view.exit(),
    };
    input[boundary_node.index()] = boundary.clone();

    // Iterate in an order that converges fast: RPO for forward problems,
    // postorder for backward ones.
    let order: Vec<NodeId> = match direction {
        Direction::Forward => view.rpo().to_vec(),
        Direction::Backward => view.postorder(),
    };

    let mut evaluations: u64 = 0;
    let mut sweeps: u64 = 0;
    let mut word_ops: u64 = 0;
    // Initial sweep computes outputs; subsequent sweeps propagate.
    let mut changed = true;
    while changed {
        changed = false;
        sweeps += 1;
        for &node in &order {
            evaluations += 1;
            // Meet over flow-predecessors.
            if node != boundary_node {
                let sources: &[NodeId] = match direction {
                    Direction::Forward => view.preds(node),
                    Direction::Backward => view.succs(node),
                };
                if !sources.is_empty() {
                    // One copy plus one meet per further source.
                    word_ops += words * sources.len() as u64;
                    let mut acc = output[sources[0].index()].clone();
                    for &src in &sources[1..] {
                        match meet {
                            Meet::Intersection => acc.intersect_with(&output[src.index()]),
                            Meet::Union => acc.union_with(&output[src.index()]),
                        }
                    }
                    input[node.index()] = acc;
                }
            }
            // Gen/kill transfer (&!kill then |gen) plus the convergence
            // compare.
            word_ops += words * 3;
            let new_out = transfer(node, &input[node.index()]);
            if new_out != output[node.index()] {
                output[node.index()] = new_out;
                changed = true;
            }
        }
    }

    pdce_trace::record_solver(pdce_trace::SolverStats {
        problems: 1,
        sweeps,
        evaluations,
        revisits: evaluations.saturating_sub(n as u64),
        word_ops,
    });
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![
            ("sweeps", sweeps.into()),
            ("evaluations", evaluations.into()),
            ("word_ops", word_ops.into()),
        ]
    } else {
        Vec::new()
    });

    match direction {
        Direction::Forward => Solution {
            entry: input,
            exit: output,
            evaluations,
            sweeps,
            word_ops,
        },
        Direction::Backward => Solution {
            entry: output,
            exit: input,
            evaluations,
            sweeps,
            word_ops,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::Program;

    /// Builds a trivial per-node transfer: bit 0 is generated in blocks
    /// whose name is in `gens`, killed in blocks in `kills`.
    fn problem_for(
        prog: &Program,
        direction: Direction,
        meet: Meet,
        gens: &[&str],
        kills: &[&str],
    ) -> BitProblem {
        let width = 1;
        let transfer = prog
            .node_ids()
            .map(|n| {
                let name = prog.block(n).name.as_str();
                let mut gen = BitVec::zeros(width);
                let mut kill = BitVec::zeros(width);
                if gens.contains(&name) {
                    gen.set(0, true);
                }
                if kills.contains(&name) {
                    kill.set(0, true);
                }
                GenKill::new(gen, kill)
            })
            .collect();
        let boundary = match meet {
            Meet::Intersection => BitVec::zeros(width),
            Meet::Union => BitVec::zeros(width),
        };
        BitProblem {
            direction,
            meet,
            width,
            transfer,
            boundary,
        }
    }

    fn diamond() -> Program {
        parse(
            "prog {
               block s { nondet a b }
               block a { goto j }
               block b { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap()
    }

    #[test]
    fn forward_union_reaches_any_path() {
        // "Generated in a": reaches j and e via union.
        let p = diamond();
        let view = CfgView::new(&p);
        let prob = problem_for(&p, Direction::Forward, Meet::Union, &["a"], &[]);
        let sol = solve(&view, &prob);
        let j = p.block_by_name("j").unwrap();
        assert!(sol.at_entry(j).get(0));
        assert!(sol.at_exit(p.exit()).get(0));
        assert!(!sol.at_entry(p.block_by_name("b").unwrap()).get(0));
    }

    #[test]
    fn forward_intersection_requires_all_paths() {
        let p = diamond();
        let view = CfgView::new(&p);
        // Generated only on one arm: does not survive the join under ∩.
        let prob = problem_for(&p, Direction::Forward, Meet::Intersection, &["a"], &[]);
        let sol = solve(&view, &prob);
        let j = p.block_by_name("j").unwrap();
        assert!(!sol.at_entry(j).get(0));
        // Generated on both arms: survives.
        let prob = problem_for(&p, Direction::Forward, Meet::Intersection, &["a", "b"], &[]);
        let sol = solve(&view, &prob);
        assert!(sol.at_entry(j).get(0));
    }

    #[test]
    fn backward_intersection_loop_greatest_fixpoint() {
        // Loop: h <-> body; "generated" at x (after the loop). Under the
        // greatest fixpoint the property holds throughout the loop: on
        // every path to the exit we pass x.
        let p = parse(
            "prog {
               block s { goto h }
               block h { nondet body x }
               block body { goto h }
               block x { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let prob = problem_for(&p, Direction::Backward, Meet::Intersection, &["x"], &[]);
        let sol = solve(&view, &prob);
        let h = p.block_by_name("h").unwrap();
        let body = p.block_by_name("body").unwrap();
        assert!(sol.at_entry(h).get(0));
        assert!(sol.at_entry(body).get(0));
    }

    #[test]
    fn kill_stops_propagation() {
        let p = parse(
            "prog {
               block s { goto a }
               block a { goto k }
               block k { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&p);
        let prob = problem_for(&p, Direction::Forward, Meet::Union, &["a"], &["k"]);
        let sol = solve(&view, &prob);
        let k = p.block_by_name("k").unwrap();
        assert!(sol.at_entry(k).get(0));
        assert!(!sol.at_exit(k).get(0));
        assert!(!sol.at_entry(p.exit()).get(0));
    }

    #[test]
    fn boundary_overrides_interior_init() {
        let p = diamond();
        let view = CfgView::new(&p);
        // Intersection problem with zero boundary: without boundary
        // handling the all-ones init would claim the property at entry.
        let prob = problem_for(&p, Direction::Forward, Meet::Intersection, &[], &[]);
        let sol = solve(&view, &prob);
        assert!(!sol.at_entry(p.entry()).get(0));
        assert!(!sol.at_exit(p.exit()).get(0));
    }
}
