//! Sparse bit-vector solver over per-bit forced-value closures.
//!
//! The dense strategies in [`crate::solve`] iterate whole bit rows until
//! a sweep (or heap drain) changes nothing. This module exploits the
//! gen/kill shape of every transfer instead: for a fixed bit `b`, each
//! node's transfer is one of three functions — constant 1 (`gen`),
//! constant 0 (`kill` without `gen`), or the identity. Under either meet
//! the fixpoint for bit `b` is then *forced*:
//!
//! * meet = ∩ (greatest fixpoint from all-ones): a bit is 0 exactly on
//!   the closure of the constant-0 nodes (and a 0 boundary bit) through
//!   identity-transfer nodes along flow edges; everything else stays 1.
//! * meet = ∪ (least fixpoint from all-zeros): dually, a bit is 1
//!   exactly on the closure of the constant-1 nodes (and a 1 boundary
//!   bit) through identity nodes.
//!
//! So one uniform marking pass per bit — seed the forced nodes, close
//! through identity nodes — computes the identical fixpoint the dense
//! worklists converge to, touching only the nodes the bit actually
//! reaches: the def-use chain of that pattern/variable projected onto
//! block granularity. Nothing is ever re-popped: the per-bit *task* is
//! popped once (counted in `SolverStats::sparse_pops`) and the chain
//! traversal it performs is counted in `sparse_edge_visits`, the
//! `O(affected edges)` quantity of the formulation (DESIGN.md §15).
//!
//! Dense-equivalence subtleties the marking pass replicates exactly:
//! nodes outside the iteration order (unreachable from entry) are never
//! evaluated, so both their input and output rows keep the meet
//! identity; the boundary node's input is pinned to the boundary value
//! and never overwritten by propagation; and sourceless reachable nodes
//! keep the identity input. The differential oracle in `tests/` checks
//! all of this bit-for-bit against the dense strategies.

use pdce_ir::{CfgView, NodeId};

use crate::bitvec::BitVec;
use crate::solve::{BitProblem, Direction, Meet, Solution};

/// Solves `problem` by per-bit forced-value closure over the def-use
/// chains. Produces the same [`Solution`] values as the dense
/// strategies; `sweeps` is 0 (there are none) and `evaluations` counts
/// output-bit flips.
pub fn solve_sparse(view: &CfgView, problem: &BitProblem) -> Solution {
    let n = view.num_nodes();
    let width = problem.width;
    pdce_trace::fault::fire("solve");
    let trace_span = pdce_trace::span_with(
        "solver",
        "bitvec-solve",
        if pdce_trace::enabled() {
            vec![
                (
                    "direction",
                    match problem.direction {
                        Direction::Forward => "forward",
                        Direction::Backward => "backward",
                    }
                    .into(),
                ),
                (
                    "meet",
                    match problem.meet {
                        Meet::Intersection => "intersection",
                        Meet::Union => "union",
                    }
                    .into(),
                ),
                ("strategy", "sparse".into()),
                ("width", width.into()),
                ("nodes", n.into()),
            ]
        } else {
            Vec::new()
        },
    );

    // The value propagation spreads: 1 under ∪, 0 under ∩. Rows start
    // at the meet identity (= the non-active value everywhere).
    let active = matches!(problem.meet, Meet::Union);
    let interior_init = match problem.meet {
        Meet::Intersection => BitVec::ones(width),
        Meet::Union => BitVec::zeros(width),
    };
    let mut input = vec![interior_init.clone(); n];
    let mut output = vec![interior_init; n];

    let boundary_node = match problem.direction {
        Direction::Forward => view.entry(),
        Direction::Backward => view.exit(),
    };
    input[boundary_node.index()] = problem.boundary.clone();

    let order: &[NodeId] = match problem.direction {
        Direction::Forward => view.rpo(),
        Direction::Backward => view.postorder(),
    };
    let mut in_order = BitVec::zeros(n);
    for &v in order {
        in_order.set(v.index(), true);
    }

    // One seed bucket per bit: the reachable non-boundary nodes whose
    // transfer forces the active value on that bit. `gen` wins over
    // `kill` in `GenKill::apply`, so under ∩ the constant-0 nodes are
    // `kill ∧ ¬gen`; under ∪ the constant-1 nodes are simply `gen`.
    // Built in one pass over the set bits, not a per-bit node scan.
    let mut seeds: Vec<Vec<u32>> = vec![Vec::new(); width];
    for &v in order {
        if v == boundary_node {
            continue;
        }
        let t = &problem.transfer[v.index()];
        match problem.meet {
            Meet::Intersection => {
                for b in t.kill.iter_ones() {
                    if !t.gen.get(b) {
                        seeds[b].push(v.index() as u32);
                    }
                }
            }
            Meet::Union => {
                for b in t.gen.iter_ones() {
                    seeds[b].push(v.index() as u32);
                }
            }
        }
    }

    let boundary_reachable = in_order.get(boundary_node.index());
    let mut evaluations: u64 = 0;
    let mut edge_visits: u64 = 0;
    let mut stack: Vec<NodeId> = Vec::new();
    for (b, bucket) in seeds.iter().enumerate() {
        // One outer-worklist task per bit; the closure below is plain
        // reachability, so nothing inside it is ever popped twice.
        pdce_trace::budget::charge_pops(1);

        for &v in bucket {
            let vi = v as usize;
            if output[vi].get(b) != active {
                output[vi].set(b, active);
                evaluations += 1;
                stack.push(NodeId::from_index(vi));
            }
        }
        if boundary_reachable {
            // The boundary node's input is pinned, so its output bit is
            // fully determined here: gen forces 1, kill forces 0, and
            // the identity passes the boundary bit through.
            let bi = boundary_node.index();
            let t = &problem.transfer[bi];
            let obit = if t.gen.get(b) {
                true
            } else if t.kill.get(b) {
                false
            } else {
                problem.boundary.get(b)
            };
            if obit == active && output[bi].get(b) != active {
                output[bi].set(b, active);
                evaluations += 1;
                stack.push(boundary_node);
            }
        }

        while let Some(v) = stack.pop() {
            let dsts: &[NodeId] = match problem.direction {
                Direction::Forward => view.succs(v),
                Direction::Backward => view.preds(v),
            };
            for &m in dsts {
                edge_visits += 1;
                let mi = m.index();
                // Unreachable nodes are never evaluated by the dense
                // solvers and the boundary input is pinned — skip both.
                if m == boundary_node || !in_order.get(mi) {
                    continue;
                }
                input[mi].set(b, active);
                let t = &problem.transfer[mi];
                if !t.gen.get(b) && !t.kill.get(b) && output[mi].get(b) != active {
                    output[mi].set(b, active);
                    evaluations += 1;
                    stack.push(m);
                }
            }
        }
    }

    pdce_trace::record_solver(pdce_trace::SolverStats {
        problems: 1,
        evaluations,
        // Bit writes and edge tests both cost O(1); the chain traversal
        // count is the honest work unit here.
        word_ops: edge_visits,
        sparse_pops: width as u64,
        sparse_edge_visits: edge_visits,
        cold_solves: 1,
        ..pdce_trace::SolverStats::ZERO
    });
    trace_span.finish_with(if pdce_trace::enabled() {
        vec![
            ("tasks", (width as u64).into()),
            ("evaluations", evaluations.into()),
            ("edge_visits", edge_visits.into()),
        ]
    } else {
        Vec::new()
    });

    match problem.direction {
        Direction::Forward => Solution {
            entry: input,
            exit: output,
            evaluations,
            sweeps: 0,
            word_ops: edge_visits,
        },
        Direction::Backward => Solution {
            entry: output,
            exit: input,
            evaluations,
            sweeps: 0,
            word_ops: edge_visits,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genkill::GenKill;
    use crate::solve::{solve, with_strategy, SolverStrategy};
    use pdce_ir::parser::parse;

    /// Diamond with a back edge, exercised over every direction × meet ×
    /// boundary combination: sparse must match the dense solvers
    /// bit-for-bit.
    #[test]
    fn sparse_matches_dense_on_all_quadrants() {
        let prog = parse(
            "prog {
               block s { nondet a b }
               block a { goto j }
               block b { goto j }
               block j { nondet a e }
               block e { halt }
             }",
        )
        .unwrap();
        let view = CfgView::new(&prog);
        let width = 3;
        let mk = |gen: &[usize], kill: &[usize]| {
            let mut g = BitVec::zeros(width);
            let mut k = BitVec::zeros(width);
            for &b in gen {
                g.set(b, true);
            }
            for &b in kill {
                k.set(b, true);
            }
            GenKill::new(g, k)
        };
        // Indexed by declaration order s, a, b, j, e: a gen, a kill, an
        // identity, a gen-beats-kill node, and a kill at the exit.
        let transfer = vec![
            mk(&[0], &[]),
            mk(&[], &[1]),
            mk(&[], &[]),
            mk(&[2], &[2]),
            mk(&[], &[0]),
        ];
        for direction in [Direction::Forward, Direction::Backward] {
            for meet in [Meet::Intersection, Meet::Union] {
                for boundary in [BitVec::zeros(width), BitVec::ones(width)] {
                    let problem = BitProblem {
                        direction,
                        meet,
                        width,
                        transfer: transfer.clone(),
                        boundary,
                    };
                    let dense = with_strategy(SolverStrategy::Priority, || solve(&view, &problem));
                    let sparse = with_strategy(SolverStrategy::Sparse, || solve(&view, &problem));
                    assert_eq!(dense.entry, sparse.entry, "{direction:?} {meet:?} entry");
                    assert_eq!(dense.exit, sparse.exit, "{direction:?} {meet:?} exit");
                }
            }
        }
    }
}
