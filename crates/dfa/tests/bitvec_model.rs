//! Model-based property tests: `BitVec` against a `Vec<bool>` oracle,
//! driven by the workspace's deterministic seeded generator.

use pdce_dfa::BitVec;
use pdce_rng::Rng;

#[derive(Debug, Clone)]
struct Model {
    bits: Vec<bool>,
}

impl Model {
    fn random(rng: &mut Rng, len: usize) -> Model {
        Model {
            bits: (0..len).map(|_| rng.gen_bool(0.5)).collect(),
        }
    }

    fn to_bitvec(&self) -> BitVec {
        let mut v = BitVec::zeros(self.bits.len());
        for (i, &b) in self.bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }
}

/// Runs `check` on 128 random same-length model pairs (lengths 1..200,
/// covering sub-word, word-boundary, and multi-word vectors).
fn for_pairs(seed: u64, mut check: impl FnMut(&Model, &Model)) {
    let mut rng = Rng::new(seed);
    for _ in 0..128 {
        let len = rng.gen_range(1, 200);
        let a = Model::random(&mut rng, len);
        let b = Model::random(&mut rng, len);
        check(&a, &b);
    }
}

#[test]
fn union_matches_model() {
    for_pairs(0xb17_0001, |a, b| {
        let mut v = a.to_bitvec();
        v.union_with(&b.to_bitvec());
        for i in 0..a.bits.len() {
            assert_eq!(v.get(i), a.bits[i] || b.bits[i]);
        }
    });
}

#[test]
fn intersect_matches_model() {
    for_pairs(0xb17_0002, |a, b| {
        let mut v = a.to_bitvec();
        v.intersect_with(&b.to_bitvec());
        for i in 0..a.bits.len() {
            assert_eq!(v.get(i), a.bits[i] && b.bits[i]);
        }
    });
}

#[test]
fn difference_matches_model() {
    for_pairs(0xb17_0003, |a, b| {
        let mut v = a.to_bitvec();
        v.difference_with(&b.to_bitvec());
        for i in 0..a.bits.len() {
            assert_eq!(v.get(i), a.bits[i] && !b.bits[i]);
        }
    });
}

#[test]
fn negate_matches_model() {
    for_pairs(0xb17_0004, |a, _| {
        let mut v = a.to_bitvec();
        v.negate();
        for i in 0..a.bits.len() {
            assert_eq!(v.get(i), !a.bits[i]);
        }
        assert_eq!(v.count_ones(), a.bits.iter().filter(|b| !**b).count());
    });
}

#[test]
fn iter_ones_matches_model() {
    for_pairs(0xb17_0005, |a, _| {
        let v = a.to_bitvec();
        let expected: Vec<usize> = a
            .bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        assert_eq!(v.iter_ones().collect::<Vec<_>>(), expected);
        assert_eq!(v.count_ones(), v.iter_ones().count());
        assert_eq!(v.none(), v.count_ones() == 0);
    });
}

#[test]
fn subset_matches_model() {
    for_pairs(0xb17_0006, |a, b| {
        let va = a.to_bitvec();
        let vb = b.to_bitvec();
        let model_subset = a.bits.iter().zip(&b.bits).all(|(x, y)| !x || *y);
        assert_eq!(va.is_subset_of(&vb), model_subset);
        // Containment of a ∩ b in both always holds (sanity on the model).
        let mut inter = va.clone();
        inter.intersect_with(&vb);
        assert!(inter.is_subset_of(&va) && inter.is_subset_of(&vb));
    });
}

#[test]
fn changed_flags_are_accurate() {
    for_pairs(0xb17_0007, |a, b| {
        let mut v = a.to_bitvec();
        let changed = v.union_with_changed(&b.to_bitvec());
        assert_eq!(changed, v != a.to_bitvec());
        let mut w = a.to_bitvec();
        let changed = w.intersect_with_changed(&b.to_bitvec());
        assert_eq!(changed, w != a.to_bitvec());
    });
}
