//! Model-based property tests: `BitVec` against a `Vec<bool>` oracle.

use pdce_dfa::BitVec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Model {
    bits: Vec<bool>,
}

impl Model {
    fn to_bitvec(&self) -> BitVec {
        let mut v = BitVec::zeros(self.bits.len());
        for (i, &b) in self.bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }
}

fn model(len: usize) -> impl Strategy<Value = Model> {
    proptest::collection::vec(any::<bool>(), len).prop_map(|bits| Model { bits })
}

fn pair() -> impl Strategy<Value = (Model, Model)> {
    (1usize..200).prop_flat_map(|len| (model(len), model(len)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_matches_model((a, b) in pair()) {
        let mut v = a.to_bitvec();
        v.union_with(&b.to_bitvec());
        for i in 0..a.bits.len() {
            prop_assert_eq!(v.get(i), a.bits[i] || b.bits[i]);
        }
    }

    #[test]
    fn intersect_matches_model((a, b) in pair()) {
        let mut v = a.to_bitvec();
        v.intersect_with(&b.to_bitvec());
        for i in 0..a.bits.len() {
            prop_assert_eq!(v.get(i), a.bits[i] && b.bits[i]);
        }
    }

    #[test]
    fn difference_matches_model((a, b) in pair()) {
        let mut v = a.to_bitvec();
        v.difference_with(&b.to_bitvec());
        for i in 0..a.bits.len() {
            prop_assert_eq!(v.get(i), a.bits[i] && !b.bits[i]);
        }
    }

    #[test]
    fn negate_matches_model(a in (1usize..200).prop_flat_map(model)) {
        let mut v = a.to_bitvec();
        v.negate();
        for i in 0..a.bits.len() {
            prop_assert_eq!(v.get(i), !a.bits[i]);
        }
        prop_assert_eq!(v.count_ones(), a.bits.iter().filter(|b| !**b).count());
    }

    #[test]
    fn iter_ones_matches_model(a in (1usize..200).prop_flat_map(model)) {
        let v = a.to_bitvec();
        let expected: Vec<usize> = a
            .bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i))
            .collect();
        prop_assert_eq!(v.iter_ones().collect::<Vec<_>>(), expected);
        prop_assert_eq!(v.count_ones(), v.iter_ones().count());
        prop_assert_eq!(v.none(), v.count_ones() == 0);
    }

    #[test]
    fn subset_matches_model((a, b) in pair()) {
        let va = a.to_bitvec();
        let vb = b.to_bitvec();
        let model_subset = a
            .bits
            .iter()
            .zip(&b.bits)
            .all(|(x, y)| !x || *y);
        prop_assert_eq!(va.is_subset_of(&vb), model_subset);
    }

    #[test]
    fn changed_flags_are_accurate((a, b) in pair()) {
        let mut v = a.to_bitvec();
        let changed = v.union_with_changed(&b.to_bitvec());
        prop_assert_eq!(changed, v != a.to_bitvec());
        let mut w = a.to_bitvec();
        let changed = w.intersect_with_changed(&b.to_bitvec());
        prop_assert_eq!(changed, w != a.to_bitvec());
    }
}
