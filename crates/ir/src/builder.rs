//! Fluent programmatic construction of programs.
//!
//! The builder complements the [parser](crate::parser) when programs are
//! assembled by code (e.g. the random program generator). Right-hand
//! sides are written as expression source text:
//!
//! ```
//! use pdce_ir::ProgramBuilder;
//!
//! let mut b = ProgramBuilder::new();
//! b.block("s").goto("n1");
//! b.block("n1").assign("y", "a + b")?.nondet(&["n2", "n3"]);
//! b.block("n2").goto("n4");
//! b.block("n3").assign("y", "4")?.goto("n4");
//! b.block("n4").out("y")?.goto("e");
//! b.block("e").halt();
//! let prog = b.finish()?;
//! assert_eq!(prog.num_blocks(), 6);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;

use crate::error::ParseError;
use crate::parser::parse_expr_into;
use crate::program::{Block, NodeId, Program, Terminator};
use crate::stmt::Stmt;
use crate::term::{TermArena, TermId};
use crate::validate::validate;
use crate::var::{Var, VarPool};

#[derive(Debug)]
enum PendingTerm {
    Unset,
    Goto(String),
    Cond {
        cond: TermId,
        then_to: String,
        else_to: String,
    },
    Nondet(Vec<String>),
    Halt,
}

#[derive(Debug)]
struct PendingBlock {
    name: String,
    stmts: Vec<Stmt>,
    term: PendingTerm,
}

/// Incrementally constructs a [`Program`].
///
/// The first declared block becomes the entry; the unique block
/// terminated with [`BlockBuilder::halt`] becomes the exit.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    vars: VarPool,
    terms: TermArena,
    blocks: Vec<PendingBlock>,
    by_name: HashMap<String, usize>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Starts (or re-opens) the block named `name`.
    ///
    /// Re-opening an existing block appends to its statements, which lets
    /// construction interleave with control-flow declarations.
    pub fn block(&mut self, name: &str) -> BlockBuilder<'_> {
        let idx = match self.by_name.get(name) {
            Some(&i) => i,
            None => {
                let i = self.blocks.len();
                self.blocks.push(PendingBlock {
                    name: name.to_owned(),
                    stmts: Vec::new(),
                    term: PendingTerm::Unset,
                });
                self.by_name.insert(name.to_owned(), i);
                i
            }
        };
        BlockBuilder { builder: self, idx }
    }

    /// Interns a variable by name.
    pub fn var(&mut self, name: &str) -> Var {
        self.vars.intern(name)
    }

    /// Parses an expression into this builder's pools.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if `src` is not a valid expression.
    pub fn expr(&mut self, src: &str) -> Result<TermId, ParseError> {
        parse_expr_into(src, &mut self.vars, &mut self.terms)
    }

    /// Finalizes and validates the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if a block lacks a terminator, a jump
    /// target is unknown, there is not exactly one `halt` block, or graph
    /// validation fails.
    pub fn finish(self) -> Result<Program, ParseError> {
        if self.blocks.is_empty() {
            return Err(ParseError::new(0, 0, "builder has no blocks"));
        }
        let resolve = |name: &str| -> Result<NodeId, ParseError> {
            self.by_name
                .get(name)
                .map(|&i| NodeId::from_index(i))
                .ok_or_else(|| ParseError::new(0, 0, format!("unknown block `{name}`")))
        };
        let mut exit = None;
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, pb) in self.blocks.iter().enumerate() {
            let term = match &pb.term {
                PendingTerm::Unset => {
                    return Err(ParseError::new(
                        0,
                        0,
                        format!("block `{}` has no terminator", pb.name),
                    ));
                }
                PendingTerm::Goto(t) => Terminator::Goto(resolve(t)?),
                PendingTerm::Cond {
                    cond,
                    then_to,
                    else_to,
                } => Terminator::Cond {
                    cond: *cond,
                    then_to: resolve(then_to)?,
                    else_to: resolve(else_to)?,
                },
                PendingTerm::Nondet(ts) => {
                    let ids: Result<Vec<NodeId>, ParseError> =
                        ts.iter().map(|t| resolve(t)).collect();
                    Terminator::Nondet(ids?)
                }
                PendingTerm::Halt => {
                    if exit.is_some() {
                        return Err(ParseError::new(0, 0, "multiple `halt` blocks"));
                    }
                    exit = Some(NodeId::from_index(i));
                    Terminator::Halt
                }
            };
            blocks.push(Block {
                name: pb.name.clone(),
                stmts: pb.stmts.clone(),
                term,
                split_of: None,
            });
        }
        let exit = exit.ok_or_else(|| ParseError::new(0, 0, "no `halt` block"))?;
        let prog = Program::from_parts(self.vars, self.terms, blocks, NodeId::from_index(0), exit);
        validate(&prog)?;
        Ok(prog)
    }
}

/// Handle for filling in one block; obtained from [`ProgramBuilder::block`].
#[derive(Debug)]
pub struct BlockBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    idx: usize,
}

impl BlockBuilder<'_> {
    /// Appends `lhs := rhs` where `rhs` is expression source text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if `rhs` is not a valid expression.
    pub fn assign(self, lhs: &str, rhs: &str) -> Result<Self, ParseError> {
        let rhs = self.builder.expr(rhs)?;
        let lhs = self.builder.vars.intern(lhs);
        self.builder.blocks[self.idx]
            .stmts
            .push(Stmt::Assign { lhs, rhs });
        Ok(self)
    }

    /// Appends `out(expr)`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if `expr` is not a valid expression.
    pub fn out(self, expr: &str) -> Result<Self, ParseError> {
        let t = self.builder.expr(expr)?;
        self.builder.blocks[self.idx].stmts.push(Stmt::Out(t));
        Ok(self)
    }

    /// Appends `skip`.
    pub fn skip(self) -> Self {
        self.builder.blocks[self.idx].stmts.push(Stmt::Skip);
        self
    }

    /// Appends an already-interned statement.
    pub fn stmt(self, stmt: Stmt) -> Self {
        self.builder.blocks[self.idx].stmts.push(stmt);
        self
    }

    /// Terminates the block with `goto target`.
    pub fn goto(self, target: &str) {
        self.builder.blocks[self.idx].term = PendingTerm::Goto(target.to_owned());
    }

    /// Terminates the block with `if cond then t else f`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if `cond` is not a valid expression.
    pub fn cond(self, cond: &str, then_to: &str, else_to: &str) -> Result<(), ParseError> {
        let cond = self.builder.expr(cond)?;
        self.builder.blocks[self.idx].term = PendingTerm::Cond {
            cond,
            then_to: then_to.to_owned(),
            else_to: else_to.to_owned(),
        };
        Ok(())
    }

    /// Terminates the block with a nondeterministic branch.
    pub fn nondet(self, targets: &[&str]) {
        self.builder.blocks[self.idx].term =
            PendingTerm::Nondet(targets.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Terminates the block with `halt`, marking it as the exit node.
    pub fn halt(self) {
        self.builder.blocks[self.idx].term = PendingTerm::Halt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::printer::structural_eq;

    #[test]
    fn builder_matches_parser() {
        let mut b = ProgramBuilder::new();
        b.block("s").goto("n1");
        b.block("n1")
            .assign("y", "a + b")
            .unwrap()
            .nondet(&["n2", "n3"]);
        b.block("n2").goto("n4");
        b.block("n3").assign("y", "4").unwrap().goto("n4");
        b.block("n4").out("y").unwrap().goto("e");
        b.block("e").halt();
        let built = b.finish().unwrap();

        let parsed = parse(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        )
        .unwrap();
        assert!(structural_eq(&built, &parsed));
    }

    #[test]
    fn missing_terminator_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.block("s").skip();
        b.block("e").halt();
        let err = b.finish().unwrap_err();
        assert!(err.message.contains("no terminator"));
    }

    #[test]
    fn unknown_target_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.block("s").goto("nowhere");
        b.block("e").halt();
        let err = b.finish().unwrap_err();
        assert!(err.message.contains("unknown block"));
    }

    #[test]
    fn bad_expression_is_an_error() {
        let mut b = ProgramBuilder::new();
        let err = b.block("s").assign("x", "1 +").unwrap_err();
        assert!(err.message.contains("expected expression"));
    }

    #[test]
    fn trailing_expression_garbage_is_an_error() {
        let mut b = ProgramBuilder::new();
        let err = b.block("s").assign("x", "1 2").unwrap_err();
        assert!(err.message.contains("trailing input"));
    }

    #[test]
    fn reopening_blocks_appends() {
        let mut b = ProgramBuilder::new();
        b.block("s").assign("x", "1").unwrap().goto("e");
        b.block("s").assign("y", "2").unwrap().goto("e");
        b.block("e").halt();
        let prog = b.finish().unwrap();
        assert_eq!(prog.block(prog.entry()).stmts.len(), 2);
    }

    #[test]
    fn cond_terminator() {
        let mut b = ProgramBuilder::new();
        b.block("s").cond("x < 3", "t", "e").unwrap();
        b.block("t").goto("e");
        b.block("e").halt();
        let prog = b.finish().unwrap();
        assert_eq!(prog.successors(prog.entry()).len(), 2);
    }
}
