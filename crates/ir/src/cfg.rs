//! Control-flow-graph utilities: cached predecessor/successor lists,
//! orderings, dominators, loop and irreducibility detection.

use crate::program::{NodeId, Program};

/// An immutable snapshot of a program's control-flow structure.
///
/// Analyses take a `CfgView` so predecessors, successors, and orders are
/// computed once per solve. The view is invalidated by any mutation of the
/// program's terminators or block set; rebuild it after transforming.
#[derive(Debug, Clone)]
pub struct CfgView {
    preds: Vec<Vec<NodeId>>,
    succs: Vec<Vec<NodeId>>,
    rpo: Vec<NodeId>,
    rpo_index: Vec<usize>,
    entry: NodeId,
    exit: NodeId,
}

impl CfgView {
    /// Builds the view for `prog`.
    ///
    /// # Example
    ///
    /// ```
    /// use pdce_ir::{parser::parse, CfgView};
    ///
    /// let prog = parse(
    ///     "prog { block s { nondet a b } block a { goto e }
    ///             block b { goto e } block e { halt } }",
    /// )?;
    /// let view = CfgView::new(&prog);
    /// assert_eq!(view.succs(prog.entry()).len(), 2);
    /// assert_eq!(view.preds(prog.exit()).len(), 2);
    /// assert!(view.is_acyclic());
    /// # Ok::<(), pdce_ir::ParseError>(())
    /// ```
    pub fn new(prog: &Program) -> CfgView {
        let n = prog.num_blocks();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for id in prog.node_ids() {
            let ss = prog.successors(id);
            for &m in &ss {
                preds[m.index()].push(id);
            }
            succs[id.index()] = ss;
        }
        // Iterative DFS postorder from the entry.
        let mut post = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unseen, 1 on stack, 2 done
        let mut stack: Vec<(NodeId, usize)> = vec![(prog.entry(), 0)];
        state[prog.entry().index()] = 1;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let ss = &succs[node.index()];
            if *child < ss.len() {
                let next = ss[*child];
                *child += 1;
                if state[next.index()] == 0 {
                    state[next.index()] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[node.index()] = 2;
                post.push(node);
                stack.pop();
            }
        }
        let mut rpo: Vec<NodeId> = post;
        rpo.reverse();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &id) in rpo.iter().enumerate() {
            rpo_index[id.index()] = i;
        }
        CfgView {
            preds,
            succs,
            rpo,
            rpo_index,
            entry: prog.entry(),
            exit: prog.exit(),
        }
    }

    /// Number of nodes covered by the view.
    pub fn num_nodes(&self) -> usize {
        self.succs.len()
    }

    /// The entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Predecessors of `n`.
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.preds[n.index()]
    }

    /// Successors of `n`.
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succs[n.index()]
    }

    /// Reverse postorder over nodes reachable from the entry.
    pub fn rpo(&self) -> &[NodeId] {
        &self.rpo
    }

    /// Position of `n` in reverse postorder (`usize::MAX` if unreachable).
    pub fn rpo_index(&self, n: NodeId) -> usize {
        self.rpo_index[n.index()]
    }

    /// Postorder (reverse of [`CfgView::rpo`]), the natural iteration
    /// order for backward analyses.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut po = self.rpo.clone();
        po.reverse();
        po
    }

    /// All edges `(m, n)` of the graph.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for (i, ss) in self.succs.iter().enumerate() {
            for &m in ss {
                out.push((NodeId::from_index(i), m));
            }
        }
        out
    }

    /// Critical edges: from a node with several successors to a node with
    /// several predecessors (Section 2.1 of the paper).
    pub fn critical_edges(&self) -> Vec<(NodeId, NodeId)> {
        self.edges()
            .into_iter()
            .filter(|&(m, n)| self.succs(m).len() > 1 && self.preds(n).len() > 1)
            .collect()
    }

    /// Immediate dominators, computed with the Cooper–Harvey–Kennedy
    /// iterative algorithm. `idom[entry] == entry`; unreachable nodes map
    /// to `None`.
    pub fn immediate_dominators(&self) -> Vec<Option<NodeId>> {
        let n = self.num_nodes();
        let mut idom: Vec<Option<NodeId>> = vec![None; n];
        idom[self.entry.index()] = Some(self.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &self.rpo {
                if b == self.entry {
                    continue;
                }
                let mut new_idom: Option<NodeId> = None;
                for &p in self.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self.intersect(&idom, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    fn intersect(&self, idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId) -> NodeId {
        while a != b {
            while self.rpo_index(a) > self.rpo_index(b) {
                a = idom[a.index()].expect("dominator chain broken");
            }
            while self.rpo_index(b) > self.rpo_index(a) {
                b = idom[b.index()].expect("dominator chain broken");
            }
        }
        a
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, idom: &[Option<NodeId>], a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Back edges `(tail, head)` where `head` dominates `tail` — the
    /// retreating edges of *natural* loops.
    pub fn natural_back_edges(&self) -> Vec<(NodeId, NodeId)> {
        let idom = self.immediate_dominators();
        self.edges()
            .into_iter()
            .filter(|&(m, n)| self.dominates(&idom, n, m))
            .collect()
    }

    /// Whether the graph is reducible: every retreating edge (w.r.t. a DFS)
    /// is a natural back edge. Detected by checking that removing natural
    /// back edges leaves an acyclic graph.
    pub fn is_reducible(&self) -> bool {
        let back: std::collections::HashSet<(NodeId, NodeId)> =
            self.natural_back_edges().into_iter().collect();
        // Kahn's algorithm over the remaining edges.
        let n = self.num_nodes();
        let mut indeg = vec![0usize; n];
        for (m, t) in self.edges() {
            if !back.contains(&(m, t)) {
                indeg[t.index()] += 1;
            }
        }
        let mut queue: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|x| indeg[x.index()] == 0)
            .collect();
        let mut seen = 0;
        while let Some(x) = queue.pop() {
            seen += 1;
            for &m in self.succs(x) {
                if back.contains(&(x, m)) {
                    continue;
                }
                indeg[m.index()] -= 1;
                if indeg[m.index()] == 0 {
                    queue.push(m);
                }
            }
        }
        seen == n
    }

    /// Whether the graph contains any cycle.
    pub fn is_acyclic(&self) -> bool {
        let n = self.num_nodes();
        let mut indeg = vec![0usize; n];
        for (_, t) in self.edges() {
            indeg[t.index()] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|x| indeg[x.index()] == 0)
            .collect();
        let mut seen = 0;
        while let Some(x) = queue.pop() {
            seen += 1;
            for &m in self.succs(x) {
                indeg[m.index()] -= 1;
                if indeg[m.index()] == 0 {
                    queue.push(m);
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diamond() -> Program {
        parse(
            "prog {
               block s { nondet a b }
               block a { goto j }
               block b { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap()
    }

    #[test]
    fn preds_and_succs() {
        let p = diamond();
        let v = CfgView::new(&p);
        let j = p.block_by_name("j").unwrap();
        let a = p.block_by_name("a").unwrap();
        let b = p.block_by_name("b").unwrap();
        assert_eq!(v.preds(j), &[a, b]);
        assert_eq!(v.succs(p.entry()), &[a, b]);
        assert_eq!(v.preds(p.entry()), &[] as &[NodeId]);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let p = diamond();
        let v = CfgView::new(&p);
        assert_eq!(v.rpo()[0], p.entry());
        let j = p.block_by_name("j").unwrap();
        assert!(v.rpo_index(p.entry()) < v.rpo_index(j));
        assert!(v.rpo_index(j) < v.rpo_index(p.exit()));
        assert_eq!(v.rpo().len(), 5);
    }

    #[test]
    fn dominators_of_diamond() {
        let p = diamond();
        let v = CfgView::new(&p);
        let idom = v.immediate_dominators();
        let j = p.block_by_name("j").unwrap();
        let a = p.block_by_name("a").unwrap();
        assert_eq!(idom[j.index()], Some(p.entry()));
        assert_eq!(idom[a.index()], Some(p.entry()));
        assert!(v.dominates(&idom, p.entry(), j));
        assert!(!v.dominates(&idom, a, j));
        assert!(v.dominates(&idom, j, j));
    }

    #[test]
    fn critical_edge_detection() {
        let p = parse(
            "prog {
               block s { nondet a j }
               block a { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&p);
        let j = p.block_by_name("j").unwrap();
        assert_eq!(v.critical_edges(), vec![(p.entry(), j)]);
    }

    #[test]
    fn loop_and_reducibility_detection() {
        let looped = parse(
            "prog {
               block s { goto h }
               block h { nondet body e }
               block body { goto h }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&looped);
        assert!(!v.is_acyclic());
        assert!(v.is_reducible());
        let h = looped.block_by_name("h").unwrap();
        let body = looped.block_by_name("body").unwrap();
        assert_eq!(v.natural_back_edges(), vec![(body, h)]);

        // Two-entry loop {a, b}: the classic irreducible shape.
        let irred = parse(
            "prog {
               block s { nondet a b }
               block a { nondet b e }
               block b { goto a }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&irred);
        assert!(!v.is_acyclic());
        assert!(!v.is_reducible());
        assert!(v.natural_back_edges().is_empty());
    }

    #[test]
    fn acyclic_detection() {
        let p = diamond();
        assert!(CfgView::new(&p).is_acyclic());
    }
}
