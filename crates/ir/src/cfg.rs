//! Control-flow-graph utilities: a flat CSR (compressed sparse row)
//! snapshot of the graph with cached orderings, plus dominators, loop
//! and irreducibility detection on top of it.
//!
//! [`CfgView`] is the one adjacency structure every analysis layer in
//! the workspace reads: both successor and predecessor edges live in
//! single flat arrays indexed by per-node offset ranges (no per-block
//! `Vec` chasing), the reverse-postorder/postorder numberings and the
//! per-block instruction arena layout are precomputed once, and the
//! critical-edge table is materialized eagerly. Solvers iterate over
//! cache-contiguous edge slabs instead of pointer-hopping through
//! `Vec<Block>`.

use crate::program::{NodeId, Program};

/// An immutable CSR snapshot of a program's control-flow structure.
///
/// Analyses take a `CfgView` so predecessors, successors, orders, and
/// the statement arena layout are computed once per solve. The view is
/// invalidated by any mutation of the program's terminators or block
/// set; statement-only edits keep the topology valid and only require
/// [`CfgView::relayout`]. The revision-keyed `AnalysisCache` in
/// `pdce-dfa` memoizes views (and relayouts them after statement-local
/// deltas reported by the mutation log), so passes rarely rebuild one.
///
/// # Layout
///
/// * successors of node `i` live in `succ_edges[succ_off[i] .. succ_off[i+1]]`,
///   in branch order;
/// * predecessors of `i` live in `pred_edges[pred_off[i] .. pred_off[i+1]]`,
///   ordered by source-node index (parallel edges appear once per
///   occurrence);
/// * instructions (statements plus one terminator pseudo-instruction
///   per block) of node `i` occupy the contiguous index range
///   `instr_off[i] .. instr_off[i+1]` of a single arena numbering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgView {
    entry: NodeId,
    exit: NodeId,
    succ_off: Vec<u32>,
    succ_edges: Vec<NodeId>,
    pred_off: Vec<u32>,
    pred_edges: Vec<NodeId>,
    rpo: Vec<NodeId>,
    post: Vec<NodeId>,
    rpo_index: Vec<u32>,
    instr_off: Vec<u32>,
    instr_po: Vec<u32>,
    critical: Vec<(NodeId, NodeId)>,
}

impl CfgView {
    /// Builds the view for `prog`.
    ///
    /// # Example
    ///
    /// ```
    /// use pdce_ir::{parser::parse, CfgView};
    ///
    /// let prog = parse(
    ///     "prog { block s { nondet a b } block a { goto e }
    ///             block b { goto e } block e { halt } }",
    /// )?;
    /// let view = CfgView::new(&prog);
    /// assert_eq!(view.succs(prog.entry()).len(), 2);
    /// assert_eq!(view.preds(prog.exit()).len(), 2);
    /// assert!(view.is_acyclic());
    /// # Ok::<(), pdce_ir::ParseError>(())
    /// ```
    pub fn new(prog: &Program) -> CfgView {
        let n = prog.num_blocks();

        // Successor CSR, edges in branch order.
        let mut succ_off = Vec::with_capacity(n + 1);
        succ_off.push(0u32);
        let mut num_edges = 0usize;
        for id in prog.node_ids() {
            num_edges += prog.block(id).term.successor_count();
            succ_off.push(num_edges as u32);
        }
        let mut succ_edges = Vec::with_capacity(num_edges);
        for id in prog.node_ids() {
            prog.block(id).term.for_each_successor(|m| {
                succ_edges.push(m);
            });
        }

        // Predecessor CSR: counting pass, then a cursor fill that visits
        // sources in ascending index order (so each predecessor slab is
        // sorted by source, parallel edges kept).
        let mut pred_off = vec![0u32; n + 1];
        for &m in &succ_edges {
            pred_off[m.index() + 1] += 1;
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let mut cursor: Vec<u32> = pred_off[..n].to_vec();
        let mut pred_edges = vec![NodeId::from_index(0); num_edges];
        for id in prog.node_ids() {
            let (lo, hi) = (
                succ_off[id.index()] as usize,
                succ_off[id.index() + 1] as usize,
            );
            for &m in &succ_edges[lo..hi] {
                pred_edges[cursor[m.index()] as usize] = id;
                cursor[m.index()] += 1;
            }
        }

        // Iterative DFS postorder from the entry, walking the CSR succ
        // slabs in branch order.
        let mut post: Vec<NodeId> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unseen, 1 on stack, 2 done
        let mut stack: Vec<(NodeId, usize)> = vec![(prog.entry(), 0)];
        state[prog.entry().index()] = 1;
        while let Some(&mut (node, ref mut child)) = stack.last_mut() {
            let lo = succ_off[node.index()] as usize;
            let hi = succ_off[node.index() + 1] as usize;
            if lo + *child < hi {
                let next = succ_edges[lo + *child];
                *child += 1;
                if state[next.index()] == 0 {
                    state[next.index()] = 1;
                    stack.push((next, 0));
                }
            } else {
                state[node.index()] = 2;
                post.push(node);
                stack.pop();
            }
        }
        let mut rpo = post.clone();
        rpo.reverse();
        let mut rpo_index = vec![u32::MAX; n];
        for (i, &id) in rpo.iter().enumerate() {
            rpo_index[id.index()] = i as u32;
        }

        // Critical edges (Section 2.1): multi-successor source into
        // multi-predecessor target. Sorted and deduped so parallel
        // critical edges (e.g. `nondet x x`) appear once — the order
        // edge splitting inserts synthetic blocks in.
        let mut critical: Vec<(NodeId, NodeId)> = Vec::new();
        for id in prog.node_ids() {
            let i = id.index();
            if succ_off[i + 1] - succ_off[i] <= 1 {
                continue;
            }
            for &m in &succ_edges[succ_off[i] as usize..succ_off[i + 1] as usize] {
                if pred_off[m.index() + 1] - pred_off[m.index()] > 1 {
                    critical.push((id, m));
                }
            }
        }
        critical.sort_unstable();
        critical.dedup();

        let (instr_off, instr_po) = Self::layout(prog, &post);

        CfgView {
            entry: prog.entry(),
            exit: prog.exit(),
            succ_off,
            succ_edges,
            pred_off,
            pred_edges,
            rpo,
            post,
            rpo_index,
            instr_off,
            instr_po,
            critical,
        }
    }

    /// The instruction arena layout: per-block offsets (statements plus
    /// one terminator pseudo-instruction each) and the instruction-graph
    /// postorder numbering.
    ///
    /// The instruction postorder falls out of the block postorder in one
    /// pass: a DFS over the instruction graph walks each block's
    /// statement chain down to the terminator and branches there exactly
    /// like the block DFS, so a block's instructions finish terminator
    /// first, then statements in reverse — immediately after the block's
    /// DFS subtree and immediately before the block itself finishes.
    /// Instructions of unreachable blocks number `u32::MAX`.
    fn layout(prog: &Program, post: &[NodeId]) -> (Vec<u32>, Vec<u32>) {
        let n = prog.num_blocks();
        let mut instr_off = Vec::with_capacity(n + 1);
        instr_off.push(0u32);
        let mut num_instrs = 0usize;
        for id in prog.node_ids() {
            num_instrs += prog.block(id).stmts.len() + 1;
            instr_off.push(num_instrs as u32);
        }
        let mut instr_po = vec![u32::MAX; num_instrs];
        let mut counter = 0u32;
        for &b in post {
            let lo = instr_off[b.index()] as usize;
            let hi = instr_off[b.index() + 1] as usize;
            for k in (lo..hi).rev() {
                instr_po[k] = counter;
                counter += 1;
            }
        }
        (instr_off, instr_po)
    }

    /// Rebuilds only the instruction arena layout for `prog`, reusing
    /// the adjacency and orders of `self`. Valid exactly when `prog`
    /// differs from the program this view was built for by
    /// statement-list edits only (the `Preserves::Cfg` contract).
    pub fn relayout(&self, prog: &Program) -> CfgView {
        debug_assert_eq!(self.num_nodes(), prog.num_blocks(), "topology changed");
        let (instr_off, instr_po) = Self::layout(prog, &self.post);
        CfgView {
            instr_off,
            instr_po,
            ..self.clone()
        }
    }

    /// Whether the instruction layout still matches `prog`'s statement
    /// lists (then [`CfgView::relayout`] would be an exact no-op).
    pub fn layout_matches(&self, prog: &Program) -> bool {
        self.num_nodes() == prog.num_blocks()
            && prog.node_ids().all(|id| {
                let i = id.index();
                (self.instr_off[i + 1] - self.instr_off[i]) as usize
                    == prog.block(id).stmts.len() + 1
            })
    }

    /// Number of nodes covered by the view.
    pub fn num_nodes(&self) -> usize {
        self.succ_off.len() - 1
    }

    /// Number of edges of the graph.
    pub fn num_edges(&self) -> usize {
        self.succ_edges.len()
    }

    /// The entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The exit node.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Predecessors of `n`, ordered by source-node index.
    pub fn preds(&self, n: NodeId) -> &[NodeId] {
        &self.pred_edges[self.pred_off[n.index()] as usize..self.pred_off[n.index() + 1] as usize]
    }

    /// Successors of `n`, in branch order.
    pub fn succs(&self, n: NodeId) -> &[NodeId] {
        &self.succ_edges[self.succ_off[n.index()] as usize..self.succ_off[n.index() + 1] as usize]
    }

    /// Reverse postorder over nodes reachable from the entry.
    pub fn rpo(&self) -> &[NodeId] {
        &self.rpo
    }

    /// Position of `n` in reverse postorder (`usize::MAX` if unreachable).
    pub fn rpo_index(&self, n: NodeId) -> usize {
        match self.rpo_index[n.index()] {
            u32::MAX => usize::MAX,
            i => i as usize,
        }
    }

    /// Postorder (reverse of [`CfgView::rpo`]), the natural iteration
    /// order for backward analyses.
    pub fn postorder(&self) -> &[NodeId] {
        &self.post
    }

    /// All edges `(m, n)` of the graph, grouped by source in branch
    /// order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.num_nodes()).flat_map(move |i| {
            let src = NodeId::from_index(i);
            self.succs(src).iter().map(move |&m| (src, m))
        })
    }

    /// Critical edges: from a node with several successors to a node
    /// with several predecessors (Section 2.1 of the paper). Sorted by
    /// `(source, target)` index and deduplicated.
    pub fn critical_edges(&self) -> &[(NodeId, NodeId)] {
        &self.critical
    }

    /// Total number of instructions in the arena layout: every block
    /// contributes its statements plus one terminator pseudo-
    /// instruction.
    pub fn num_instrs(&self) -> usize {
        *self.instr_off.last().expect("offsets nonempty") as usize
    }

    /// Per-block instruction offsets (`num_nodes() + 1` entries): block
    /// `i`'s instructions occupy `instr_offsets()[i] .. instr_offsets()[i+1]`.
    pub fn instr_offsets(&self) -> &[u32] {
        &self.instr_off
    }

    /// First instruction index of block `n`.
    pub fn first_instr(&self, n: NodeId) -> usize {
        self.instr_off[n.index()] as usize
    }

    /// Arena index range of block `n`'s instructions (statements then
    /// the terminator pseudo-instruction).
    pub fn instr_range(&self, n: NodeId) -> std::ops::Range<usize> {
        self.instr_off[n.index()] as usize..self.instr_off[n.index() + 1] as usize
    }

    /// Postorder index of every instruction in the instruction graph
    /// (statement chains linked through terminators into successor
    /// blocks), walked from the entry block's first instruction.
    /// Instructions of unreachable blocks sort last via `u32::MAX`.
    pub fn instr_postorder(&self) -> &[u32] {
        &self.instr_po
    }

    /// Immediate dominators, computed with the Cooper–Harvey–Kennedy
    /// iterative algorithm. `idom[entry] == entry`; unreachable nodes map
    /// to `None`.
    pub fn immediate_dominators(&self) -> Vec<Option<NodeId>> {
        let n = self.num_nodes();
        let mut idom: Vec<Option<NodeId>> = vec![None; n];
        idom[self.entry.index()] = Some(self.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &self.rpo {
                if b == self.entry {
                    continue;
                }
                let mut new_idom: Option<NodeId> = None;
                for &p in self.preds(b) {
                    if idom[p.index()].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => self.intersect(&idom, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b.index()] != new_idom {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        idom
    }

    fn intersect(&self, idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId) -> NodeId {
        while a != b {
            while self.rpo_index(a) > self.rpo_index(b) {
                a = idom[a.index()].expect("dominator chain broken");
            }
            while self.rpo_index(b) > self.rpo_index(a) {
                b = idom[b.index()].expect("dominator chain broken");
            }
        }
        a
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, idom: &[Option<NodeId>], a: NodeId, b: NodeId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Back edges `(tail, head)` where `head` dominates `tail` — the
    /// retreating edges of *natural* loops.
    pub fn natural_back_edges(&self) -> Vec<(NodeId, NodeId)> {
        let idom = self.immediate_dominators();
        self.edges()
            .filter(|&(m, n)| self.dominates(&idom, n, m))
            .collect()
    }

    /// Whether the graph is reducible: every retreating edge (w.r.t. a DFS)
    /// is a natural back edge. Detected by checking that removing natural
    /// back edges leaves an acyclic graph.
    pub fn is_reducible(&self) -> bool {
        let back: std::collections::HashSet<(NodeId, NodeId)> =
            self.natural_back_edges().into_iter().collect();
        // Kahn's algorithm over the remaining edges.
        let n = self.num_nodes();
        let mut indeg = vec![0usize; n];
        for (m, t) in self.edges() {
            if !back.contains(&(m, t)) {
                indeg[t.index()] += 1;
            }
        }
        let mut queue: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|x| indeg[x.index()] == 0)
            .collect();
        let mut seen = 0;
        while let Some(x) = queue.pop() {
            seen += 1;
            for &m in self.succs(x) {
                if back.contains(&(x, m)) {
                    continue;
                }
                indeg[m.index()] -= 1;
                if indeg[m.index()] == 0 {
                    queue.push(m);
                }
            }
        }
        seen == n
    }

    /// Whether the graph contains any cycle.
    pub fn is_acyclic(&self) -> bool {
        let n = self.num_nodes();
        let mut indeg = vec![0usize; n];
        for &t in &self.succ_edges {
            indeg[t.index()] += 1;
        }
        let mut queue: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|x| indeg[x.index()] == 0)
            .collect();
        let mut seen = 0;
        while let Some(x) = queue.pop() {
            seen += 1;
            for &m in self.succs(x) {
                indeg[m.index()] -= 1;
                if indeg[m.index()] == 0 {
                    queue.push(m);
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diamond() -> Program {
        parse(
            "prog {
               block s { nondet a b }
               block a { goto j }
               block b { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap()
    }

    #[test]
    fn preds_and_succs() {
        let p = diamond();
        let v = CfgView::new(&p);
        let j = p.block_by_name("j").unwrap();
        let a = p.block_by_name("a").unwrap();
        let b = p.block_by_name("b").unwrap();
        assert_eq!(v.preds(j), &[a, b]);
        assert_eq!(v.succs(p.entry()), &[a, b]);
        assert_eq!(v.preds(p.entry()), &[] as &[NodeId]);
        assert_eq!(v.num_edges(), 5);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_order() {
        let p = diamond();
        let v = CfgView::new(&p);
        assert_eq!(v.rpo()[0], p.entry());
        let j = p.block_by_name("j").unwrap();
        assert!(v.rpo_index(p.entry()) < v.rpo_index(j));
        assert!(v.rpo_index(j) < v.rpo_index(p.exit()));
        assert_eq!(v.rpo().len(), 5);
        // The cached postorder is exactly the reversed RPO.
        let mut reversed: Vec<NodeId> = v.rpo().to_vec();
        reversed.reverse();
        assert_eq!(v.postorder(), &reversed[..]);
    }

    #[test]
    fn dominators_of_diamond() {
        let p = diamond();
        let v = CfgView::new(&p);
        let idom = v.immediate_dominators();
        let j = p.block_by_name("j").unwrap();
        let a = p.block_by_name("a").unwrap();
        assert_eq!(idom[j.index()], Some(p.entry()));
        assert_eq!(idom[a.index()], Some(p.entry()));
        assert!(v.dominates(&idom, p.entry(), j));
        assert!(!v.dominates(&idom, a, j));
        assert!(v.dominates(&idom, j, j));
    }

    #[test]
    fn critical_edge_detection() {
        let p = parse(
            "prog {
               block s { nondet a j }
               block a { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&p);
        let j = p.block_by_name("j").unwrap();
        assert_eq!(v.critical_edges(), &[(p.entry(), j)]);
    }

    #[test]
    fn parallel_critical_edges_are_deduplicated() {
        let p = parse(
            "prog {
               block s { nondet j j x }
               block x { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&p);
        let j = p.block_by_name("j").unwrap();
        assert_eq!(v.critical_edges(), &[(p.entry(), j)]);
    }

    #[test]
    fn instr_layout_is_block_contiguous() {
        let p = parse(
            "prog {
               block s { x := 1; y := 2; nondet a b }
               block a { goto j }
               block b { out(x); goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&p);
        // stmts + 1 terminator per block: 3 + 1 + 2 + 1 + 1.
        assert_eq!(v.num_instrs(), 8);
        assert_eq!(v.instr_range(p.entry()), 0..3);
        let b = p.block_by_name("b").unwrap();
        assert_eq!(v.instr_range(b).len(), 2);
        assert_eq!(v.first_instr(b), v.instr_offsets()[b.index()] as usize);
    }

    #[test]
    fn instr_postorder_matches_an_instruction_graph_dfs() {
        let p = parse(
            "prog {
               block s { x := 1; nondet a b }
               block a { y := x; goto j }
               block b { goto j }
               block j { out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&p);
        // Reference: explicit DFS over the instruction graph.
        let num = v.num_instrs();
        let next_of = |i: usize| -> Vec<usize> {
            let b = (0..p.num_blocks())
                .find(|&bi| {
                    v.instr_offsets()[bi] as usize <= i && i < v.instr_offsets()[bi + 1] as usize
                })
                .unwrap();
            let node = NodeId::from_index(b);
            if i + 1 < v.instr_offsets()[b + 1] as usize {
                vec![i + 1]
            } else {
                v.succs(node).iter().map(|&m| v.first_instr(m)).collect()
            }
        };
        let mut po = vec![u32::MAX; num];
        let mut counter = 0u32;
        let mut visited = vec![false; num];
        let mut stack = vec![(v.first_instr(p.entry()), 0usize)];
        visited[v.first_instr(p.entry())] = true;
        while let Some((i, child)) = stack.last_mut() {
            let ns = next_of(*i);
            if *child < ns.len() {
                let nu = ns[*child];
                *child += 1;
                if !visited[nu] {
                    visited[nu] = true;
                    stack.push((nu, 0));
                }
            } else {
                po[*i] = counter;
                counter += 1;
                stack.pop();
            }
        }
        assert_eq!(v.instr_postorder(), &po[..]);
    }

    #[test]
    fn relayout_tracks_statement_edits() {
        let mut p = parse(
            "prog {
               block s { x := 1; y := 2; goto j }
               block j { out(x); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&p);
        assert!(v.layout_matches(&p));
        let s = p.entry();
        p.stmts_mut(s).pop();
        assert!(!v.layout_matches(&p));
        let r = v.relayout(&p);
        assert_eq!(r, CfgView::new(&p), "relayout must equal a cold rebuild");
        assert!(r.layout_matches(&p));
        // Adjacency and orders are untouched.
        assert_eq!(r.rpo(), v.rpo());
        assert_eq!(r.preds(p.exit()), v.preds(p.exit()));
    }

    #[test]
    fn loop_and_reducibility_detection() {
        let looped = parse(
            "prog {
               block s { goto h }
               block h { nondet body e }
               block body { goto h }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&looped);
        assert!(!v.is_acyclic());
        assert!(v.is_reducible());
        let h = looped.block_by_name("h").unwrap();
        let body = looped.block_by_name("body").unwrap();
        assert_eq!(v.natural_back_edges(), vec![(body, h)]);

        // Two-entry loop {a, b}: the classic irreducible shape.
        let irred = parse(
            "prog {
               block s { nondet a b }
               block a { nondet b e }
               block b { goto a }
               block e { halt }
             }",
        )
        .unwrap();
        let v = CfgView::new(&irred);
        assert!(!v.is_acyclic());
        assert!(!v.is_reducible());
        assert!(v.natural_back_edges().is_empty());
    }

    #[test]
    fn acyclic_detection() {
        let p = diamond();
        assert!(CfgView::new(&p).is_acyclic());
    }
}
