//! Graphviz DOT export for flow graphs.

use std::fmt::Write as _;

use crate::printer::{print_stmt, print_term};
use crate::program::{Program, Terminator};

/// Renders the program as a Graphviz `digraph`.
///
/// Each block becomes a rectangular node labelled with its statements;
/// synthetic blocks (from edge splitting) are drawn dashed; conditional
/// edges are labelled `T`/`F`.
pub fn to_dot(prog: &Program, graph_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {graph_name} {{");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for n in prog.node_ids() {
        let b = prog.block(n);
        let mut label = format!("{}\\n", escape(&b.name));
        for s in &b.stmts {
            let _ = write!(label, "{}\\l", escape(&print_stmt(prog, s)));
        }
        let style = if b.is_synthetic() {
            ", style=dashed"
        } else if n == prog.entry() || n == prog.exit() {
            ", style=bold"
        } else {
            ""
        };
        let _ = writeln!(out, "  {} [label=\"{label}\"{style}];", n.index());
    }
    for n in prog.node_ids() {
        match &prog.block(n).term {
            Terminator::Goto(m) => {
                let _ = writeln!(out, "  {} -> {};", n.index(), m.index());
            }
            Terminator::Cond {
                cond,
                then_to,
                else_to,
            } => {
                let c = escape(&print_term(prog, *cond));
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{c}: T\"];",
                    n.index(),
                    then_to.index()
                );
                let _ = writeln!(
                    out,
                    "  {} -> {} [label=\"{c}: F\"];",
                    n.index(),
                    else_to.index()
                );
            }
            Terminator::Nondet(ms) => {
                for m in ms {
                    let _ = writeln!(out, "  {} -> {} [style=dotted];", n.index(), m.index());
                }
            }
            Terminator::Halt => {}
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let p = parse(
            "prog {
               block s { x := a + b; if x < 3 then a1 else b1 }
               block a1 { goto e }
               block b1 { nondet a1 e }
               block e { halt }
             }",
        )
        .unwrap();
        let dot = to_dot(&p, "g");
        assert!(dot.starts_with("digraph g {"));
        assert!(dot.contains("x := a + b"));
        assert!(dot.contains("0 -> 1 [label=\"x < 3: T\"]"));
        assert!(dot.contains("0 -> 2 [label=\"x < 3: F\"]"));
        assert!(dot.contains("2 -> 1 [style=dotted]"));
        assert!(dot.contains("2 -> 3 [style=dotted]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn synthetic_blocks_are_dashed() {
        let mut p = parse("prog { block s { goto e } block e { halt } }").unwrap();
        let entry = p.entry();
        let exit = p.exit();
        p.split_edge(entry, exit);
        let dot = to_dot(&p, "g");
        assert!(dot.contains("style=dashed"));
    }
}
