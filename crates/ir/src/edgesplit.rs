//! Critical-edge splitting (Section 2.1 of the paper).
//!
//! Partial dead code elimination, like partial redundancy elimination, is
//! blocked by *critical edges*: edges from a node with more than one
//! successor to a node with more than one predecessor (Figure 8). The
//! remedy is to insert a synthetic node into every such edge; the paper
//! restricts attention to programs preprocessed this way, and the driver
//! in `pdce-core` calls [`split_critical_edges`] before optimizing.

use crate::cfg::CfgView;
use crate::program::{NodeId, Program};

/// Splits every critical edge of `prog` by inserting a synthetic block,
/// returning the new blocks (named `S_<from>_<to>` after the paper's
/// `S_{m,n}` notation).
///
/// Idempotent: a second call returns an empty vector.
pub fn split_critical_edges(prog: &mut Program) -> Vec<NodeId> {
    let view = CfgView::new(prog);
    // The view's critical-edge table is already sorted and deduplicated:
    // parallel edges (e.g. `nondet x x`) collapse to one entry, and a
    // single synthetic node serves all of them (retargeting rewrites
    // every matching successor).
    let critical = view.critical_edges().to_vec();
    let mut inserted = Vec::with_capacity(critical.len());
    for (from, to) in critical {
        inserted.push(prog.split_edge(from, to));
    }
    inserted
}

/// Whether the program currently contains a critical edge.
pub fn has_critical_edges(prog: &Program) -> bool {
    !CfgView::new(prog).critical_edges().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::validate::validate;

    /// Figure 8(a): edge (1,2) is critical; splitting inserts `S_1_2`.
    #[test]
    fn splits_figure_8() {
        let mut p = parse(
            "prog {
               block s  { goto n1 }
               block n1 { x := a + b; nondet n2 n3 }
               block n2 { out(x); goto e }
               block n3 { x := 5; goto n2 }
               block e  { halt }
             }",
        )
        .unwrap();
        assert!(has_critical_edges(&p));
        let inserted = split_critical_edges(&mut p);
        assert_eq!(inserted.len(), 1);
        let s12 = inserted[0];
        assert_eq!(p.block(s12).name, "S_n1_n2");
        assert!(p.block(s12).is_synthetic());
        assert!(p.block(s12).stmts.is_empty());
        // Wiring: n1 -> S -> n2, n1 -> n3 unchanged.
        let n1 = p.block_by_name("n1").unwrap();
        let n2 = p.block_by_name("n2").unwrap();
        let n3 = p.block_by_name("n3").unwrap();
        assert_eq!(p.successors(n1), vec![s12, n3]);
        assert_eq!(p.successors(s12), vec![n2]);
        assert!(!has_critical_edges(&p));
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn idempotent() {
        let mut p = parse(
            "prog {
               block s  { goto n1 }
               block n1 { nondet n2 n3 }
               block n2 { goto n4 }
               block n3 { goto n4 }
               block n4 { nondet n1 e }
               block e  { halt }
             }",
        )
        .unwrap();
        let first = split_critical_edges(&mut p);
        assert!(!first.is_empty());
        let second = split_critical_edges(&mut p);
        assert!(second.is_empty());
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn no_op_on_clean_graphs() {
        let mut p = parse(
            "prog {
               block s { nondet a b }
               block a { goto j }
               block b { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert!(split_critical_edges(&mut p).is_empty());
    }

    #[test]
    fn splits_self_loop() {
        // A self-loop on a branching node is a critical edge (the node is
        // both a multi-successor source and multi-predecessor target).
        let mut p = parse(
            "prog {
               block s { goto l }
               block l { nondet l e }
               block e { halt }
             }",
        )
        .unwrap();
        let inserted = split_critical_edges(&mut p);
        assert_eq!(inserted.len(), 1);
        let l = p.block_by_name("l").unwrap();
        assert_eq!(p.successors(inserted[0]), vec![l]);
        assert_eq!(validate(&p), Ok(()));
    }
}
