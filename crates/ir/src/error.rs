//! Error types of the IR crate.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing or validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A block name was used twice.
    DuplicateBlock(String),
    /// A terminator targets a block that does not exist.
    UnknownTarget {
        /// Block containing the bad terminator.
        block: String,
        /// The missing target name.
        target: String,
    },
    /// The entry node has predecessors.
    EntryHasPredecessors,
    /// The exit node has successors or is not terminated by `halt`.
    BadExit,
    /// No block carries the `halt` terminator, or more than one does.
    ExitCount(usize),
    /// A node is not reachable from the entry.
    Unreachable(String),
    /// A node cannot reach the exit.
    CannotReachExit(String),
    /// A `nondet` terminator with no targets.
    EmptyNondet(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DuplicateBlock(name) => write!(f, "duplicate block name `{name}`"),
            IrError::UnknownTarget { block, target } => {
                write!(f, "block `{block}` jumps to unknown block `{target}`")
            }
            IrError::EntryHasPredecessors => write!(f, "entry node has predecessors"),
            IrError::BadExit => write!(f, "exit node has successors or lacks `halt`"),
            IrError::ExitCount(n) => write!(f, "expected exactly one `halt` block, found {n}"),
            IrError::Unreachable(name) => {
                write!(f, "block `{name}` is unreachable from the entry")
            }
            IrError::CannotReachExit(name) => {
                write!(f, "block `{name}` cannot reach the exit")
            }
            IrError::EmptyNondet(name) => {
                write!(
                    f,
                    "block `{name}` has a `nondet` terminator with no targets"
                )
            }
        }
    }
}

impl Error for IrError {}

/// A parse error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at the given position.
    pub fn new(line: u32, col: u32, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

impl From<IrError> for ParseError {
    fn from(err: IrError) -> ParseError {
        ParseError::new(0, 0, err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = IrError::DuplicateBlock("b1".into());
        assert_eq!(e.to_string(), "duplicate block name `b1`");
        let p = ParseError::new(3, 7, "expected `:=`");
        assert_eq!(p.to_string(), "parse error at 3:7: expected `:=`");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IrError>();
        assert_send_sync::<ParseError>();
    }
}
