//! A small-step interpreter with observable output traces.
//!
//! The interpreter is the semantic ground truth of the reproduction: a
//! transformation is *semantics preserving* when, for every initial
//! environment and every resolution of nondeterministic branches, the
//! optimized program emits the same output trace as the original
//! (Definition 3.2 of the paper guarantees this for admissible sinkings;
//! eliminations may only reduce run-time effort, never observable output).
//!
//! Arithmetic is total: additions/subtractions/multiplications wrap,
//! division and remainder by zero yield `0`. This mirrors the paper's
//! remark (footnote 3) that eliminating dead code may reduce the potential
//! of run-time errors — with total arithmetic there are none, so trace
//! equality is exactly the right preservation property for tests.
//!
//! Nondeterministic branches are resolved by a [`DecisionOracle`]. The
//! oracle's decisions are recorded in the [`Trace`], so a run of the
//! original program can be *replayed* on the optimized program: PDE
//! preserves the branching structure, hence decision sequences transfer
//! between the two programs and corresponding paths can be compared.

use crate::program::{NodeId, Program, Terminator};
use crate::stmt::Stmt;
use crate::term::{BinOp, TermData, TermId, UnOp};
use crate::var::Var;

/// Resolves nondeterministic branches.
pub trait DecisionOracle {
    /// Chooses a successor index in `0..n_choices` at `node`.
    fn choose(&mut self, node: NodeId, n_choices: usize) -> usize;
}

/// Oracle that always takes the first successor.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstChoice;

impl DecisionOracle for FirstChoice {
    fn choose(&mut self, _node: NodeId, _n: usize) -> usize {
        0
    }
}

/// Deterministic pseudo-random oracle (xorshift64*), seed-reproducible
/// without external dependencies.
#[derive(Debug, Clone)]
pub struct SeededOracle {
    state: u64,
}

impl SeededOracle {
    /// Creates an oracle from a nonzero-normalized seed.
    pub fn new(seed: u64) -> SeededOracle {
        SeededOracle {
            state: seed | 1, // xorshift must not start at 0
        }
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl DecisionOracle for SeededOracle {
    fn choose(&mut self, _node: NodeId, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Oracle replaying a previously recorded decision sequence.
///
/// Decisions beyond the recorded sequence default to `0`, so replays of
/// equal-length runs are exact and longer runs stay deterministic.
#[derive(Debug, Clone)]
pub struct ReplayOracle {
    decisions: Vec<usize>,
    pos: usize,
}

impl ReplayOracle {
    /// Creates a replay oracle from recorded decisions.
    pub fn new(decisions: Vec<usize>) -> ReplayOracle {
        ReplayOracle { decisions, pos: 0 }
    }
}

impl DecisionOracle for ReplayOracle {
    fn choose(&mut self, _node: NodeId, n: usize) -> usize {
        let d = self.decisions.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        d.min(n.saturating_sub(1))
    }
}

/// Variable environment (dense, defaulting to `0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    values: Vec<i64>,
}

impl Env {
    /// Zero-initialized environment for `prog`'s variables.
    pub fn zeroed(prog: &Program) -> Env {
        Env {
            values: vec![0; prog.num_vars()],
        }
    }

    /// Environment with named initial values; unnamed variables are `0`.
    ///
    /// Names not present in the program are ignored (useful when the same
    /// inputs are fed to original and optimized variants whose variable
    /// pools may differ after dead-code removal).
    pub fn with_values(prog: &Program, values: &[(&str, i64)]) -> Env {
        let mut env = Env::zeroed(prog);
        for (name, v) in values {
            if let Some(var) = prog.vars().lookup(name) {
                env.set(var, *v);
            }
        }
        env
    }

    /// Reads a variable.
    pub fn get(&self, v: Var) -> i64 {
        self.values[v.index()]
    }

    /// Writes a variable.
    pub fn set(&mut self, v: Var, value: i64) {
        self.values[v.index()] = value;
    }
}

/// Execution limits.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Maximum number of basic-block visits before the run is cut off.
    ///
    /// The limit counts *blocks*, not statements: corresponding runs of an
    /// original and an optimized program visit the same block sequence, so
    /// cutting both at the same block count keeps their traces comparable.
    pub max_block_visits: u64,
}

impl Default for ExecLimits {
    fn default() -> ExecLimits {
        ExecLimits {
            max_block_visits: 100_000,
        }
    }
}

/// The observable outcome of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Values emitted by `out(t)` statements, in order.
    pub outputs: Vec<i64>,
    /// Sequence of blocks visited.
    pub block_path: Vec<NodeId>,
    /// Decisions taken at `nondet` terminators, in order.
    pub decisions: Vec<usize>,
    /// Number of statements executed (`skip` included).
    pub executed_stmts: u64,
    /// Number of assignment statements executed — the paper's measure of
    /// run-time effort (Definition 3.6 counts assignment occurrences on
    /// paths).
    pub executed_assignments: u64,
    /// Number of operator applications evaluated (unary + binary term
    /// nodes) — the measure partial redundancy elimination improves.
    pub executed_operations: u64,
    /// Whether the run reached the exit node (vs. hitting the limit).
    pub completed: bool,
}

/// Evaluates a term in `env`.
pub fn eval_term(prog: &Program, env: &Env, t: TermId) -> i64 {
    let mut ops = 0;
    eval_term_counting(prog, env, t, &mut ops)
}

/// Evaluates a term, counting operator applications into `ops`.
pub fn eval_term_counting(prog: &Program, env: &Env, t: TermId, ops: &mut u64) -> i64 {
    match prog.terms().data(t) {
        TermData::Const(v) => v,
        TermData::Var(v) => env.get(v),
        TermData::Unary(op, a) => {
            *ops += 1;
            let va = eval_term_counting(prog, env, a, ops);
            match op {
                UnOp::Neg => va.wrapping_neg(),
                UnOp::Not => i64::from(va == 0),
            }
        }
        TermData::Binary(op, a, b) => {
            *ops += 1;
            let va = eval_term_counting(prog, env, a, ops);
            let vb = eval_term_counting(prog, env, b, ops);
            match op {
                BinOp::Add => va.wrapping_add(vb),
                BinOp::Sub => va.wrapping_sub(vb),
                BinOp::Mul => va.wrapping_mul(vb),
                BinOp::Div => {
                    if vb == 0 {
                        0
                    } else {
                        va.wrapping_div(vb)
                    }
                }
                BinOp::Mod => {
                    if vb == 0 {
                        0
                    } else {
                        va.wrapping_rem(vb)
                    }
                }
                BinOp::Lt => i64::from(va < vb),
                BinOp::Le => i64::from(va <= vb),
                BinOp::Gt => i64::from(va > vb),
                BinOp::Ge => i64::from(va >= vb),
                BinOp::Eq => i64::from(va == vb),
                BinOp::Ne => i64::from(va != vb),
                BinOp::And => i64::from(va != 0 && vb != 0),
                BinOp::Or => i64::from(va != 0 || vb != 0),
            }
        }
    }
}

/// Runs `prog` from its entry with the given environment and oracle.
///
/// The environment is mutated in place; the returned [`Trace`] holds the
/// observable behaviour.
pub fn run(
    prog: &Program,
    env: &mut Env,
    oracle: &mut dyn DecisionOracle,
    limits: ExecLimits,
) -> Trace {
    let mut trace = Trace {
        outputs: Vec::new(),
        block_path: Vec::new(),
        decisions: Vec::new(),
        executed_stmts: 0,
        executed_assignments: 0,
        executed_operations: 0,
        completed: false,
    };
    let mut node = prog.entry();
    let mut visits: u64 = 0;
    loop {
        if visits >= limits.max_block_visits {
            return trace;
        }
        visits += 1;
        trace.block_path.push(node);
        let block = prog.block(node);
        for stmt in &block.stmts {
            trace.executed_stmts += 1;
            match *stmt {
                Stmt::Skip => {}
                Stmt::Assign { lhs, rhs } => {
                    trace.executed_assignments += 1;
                    let v = eval_term_counting(prog, env, rhs, &mut trace.executed_operations);
                    env.set(lhs, v);
                }
                Stmt::Out(t) => trace.outputs.push(eval_term_counting(
                    prog,
                    env,
                    t,
                    &mut trace.executed_operations,
                )),
            }
        }
        node = match &block.term {
            Terminator::Goto(n) => *n,
            Terminator::Cond {
                cond,
                then_to,
                else_to,
            } => {
                if eval_term_counting(prog, env, *cond, &mut trace.executed_operations) != 0 {
                    *then_to
                } else {
                    *else_to
                }
            }
            Terminator::Nondet(ns) => {
                let d = oracle.choose(node, ns.len()).min(ns.len() - 1);
                trace.decisions.push(d);
                ns[d]
            }
            Terminator::Halt => {
                trace.completed = true;
                return trace;
            }
        };
    }
}

/// Convenience: run with named inputs and a replayed decision sequence.
pub fn run_with(
    prog: &Program,
    inputs: &[(&str, i64)],
    decisions: Vec<usize>,
    limits: ExecLimits,
) -> Trace {
    let mut env = Env::with_values(prog, inputs);
    let mut oracle = ReplayOracle::new(decisions);
    run(prog, &mut env, &mut oracle, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn straight_line_arithmetic() {
        let p = parse(
            "prog {
               block s { x := a + b * 2; out(x); out(x - 1); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let t = run_with(&p, &[("a", 1), ("b", 3)], vec![], ExecLimits::default());
        assert_eq!(t.outputs, vec![7, 6]);
        assert!(t.completed);
        assert_eq!(t.executed_stmts, 3);
        assert_eq!(t.executed_assignments, 1);
    }

    #[test]
    fn division_and_mod_by_zero_are_total() {
        let p =
            parse("prog { block s { out(a / b); out(a % b); goto e } block e { halt } }").unwrap();
        let t = run_with(&p, &[("a", 5), ("b", 0)], vec![], ExecLimits::default());
        assert_eq!(t.outputs, vec![0, 0]);
    }

    #[test]
    fn wrapping_semantics() {
        let p =
            parse("prog { block s { out(a + 1); out(-a - 1); goto e } block e { halt } }").unwrap();
        let t = run_with(&p, &[("a", i64::MAX)], vec![], ExecLimits::default());
        assert_eq!(t.outputs, vec![i64::MIN, i64::MIN]);
    }

    #[test]
    fn conditional_branching_follows_env() {
        let p = parse(
            "prog {
               block s { if a < 10 then t else f }
               block t { out(1); goto e }
               block f { out(2); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let t = run_with(&p, &[("a", 5)], vec![], ExecLimits::default());
        assert_eq!(t.outputs, vec![1]);
        let t = run_with(&p, &[("a", 50)], vec![], ExecLimits::default());
        assert_eq!(t.outputs, vec![2]);
    }

    #[test]
    fn loop_executes_until_condition_flips() {
        let p = parse(
            "prog {
               block s { i := 0; goto h }
               block h { if i < 4 then body else x }
               block body { out(i); i := i + 1; goto h }
               block x { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let t = run_with(&p, &[], vec![], ExecLimits::default());
        assert_eq!(t.outputs, vec![0, 1, 2, 3]);
        assert_eq!(t.executed_assignments, 5); // i:=0 plus four increments
    }

    #[test]
    fn nondet_records_and_replays_decisions() {
        let p = parse(
            "prog {
               block s { nondet a b }
               block a { out(1); goto e }
               block b { out(2); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let mut env = Env::zeroed(&p);
        let mut oracle = SeededOracle::new(7);
        let t1 = run(&p, &mut env, &mut oracle, ExecLimits::default());
        assert_eq!(t1.decisions.len(), 1);
        // Replaying yields the identical trace.
        let t2 = run_with(&p, &[], t1.decisions.clone(), ExecLimits::default());
        assert_eq!(t1.outputs, t2.outputs);
        assert_eq!(t1.block_path, t2.block_path);
    }

    #[test]
    fn block_visit_limit_cuts_infinite_loops() {
        let p = parse(
            "prog {
               block s { nondet s2 e }
               block s2 { out(1); nondet s2 e }
               block e { halt }
             }",
        )
        .unwrap();
        let mut env = Env::zeroed(&p);
        let mut oracle = FirstChoice;
        let t = run(
            &p,
            &mut env,
            &mut oracle,
            ExecLimits {
                max_block_visits: 10,
            },
        );
        assert!(!t.completed);
        assert_eq!(t.block_path.len(), 10);
    }

    #[test]
    fn replay_oracle_clamps_out_of_range() {
        let mut o = ReplayOracle::new(vec![9]);
        assert_eq!(o.choose(NodeId::from_index(0), 2), 1);
        assert_eq!(o.choose(NodeId::from_index(0), 2), 0); // exhausted → 0
    }

    #[test]
    fn every_operator_semantics() {
        let p = parse(
            "prog { block s {
                out(a + b); out(a - b); out(a * b); out(a / b); out(a % b);
                out(a < b); out(a <= b); out(a > b); out(a >= b);
                out(a == b); out(a != b); out(a && b); out(a || b);
                out(-(a)); out(!a);
                goto e } block e { halt } }",
        )
        .unwrap();
        let t = run_with(&p, &[("a", 7), ("b", 3)], vec![], ExecLimits::default());
        assert_eq!(
            t.outputs,
            vec![10, 4, 21, 2, 1, 0, 0, 1, 1, 0, 1, 1, 1, -7, 0]
        );
        let t = run_with(&p, &[("a", 0), ("b", -3)], vec![], ExecLimits::default());
        assert_eq!(
            t.outputs,
            vec![-3, 3, 0, 0, 0, 0, 0, 1, 1, 0, 1, 0, 1, 0, 1]
        );
    }

    #[test]
    fn operation_counter_counts_operator_nodes() {
        let p = parse(
            "prog { block s { x := a + b * 2; out(x); if x < 9 then t else e }
              block t { goto e } block e { halt } }",
        )
        .unwrap();
        let t = run_with(&p, &[("a", 1), ("b", 1)], vec![], ExecLimits::default());
        // a + b*2 → 2 ops; out(x) → 0; x < 9 → 1 op.
        assert_eq!(t.executed_operations, 3);
    }

    #[test]
    fn with_values_ignores_unknown_names() {
        let p = parse("prog { block s { out(a); goto e } block e { halt } }").unwrap();
        let t = run_with(&p, &[("a", 3), ("ghost", 9)], vec![], ExecLimits::default());
        assert_eq!(t.outputs, vec![3]);
    }
}
