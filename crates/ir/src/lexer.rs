//! Lexer for the textual program language.
//!
//! The surface syntax (see [`crate::parser`]) is a small structured notation
//! for flow graphs:
//!
//! ```text
//! prog {
//!   block s  { goto n1 }
//!   block n1 { y := a + b; if a < b then n2 else n3 }
//!   ...
//!   block e  { halt }
//! }
//! ```

use crate::error::ParseError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier (variable or block name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Keyword (`prog`, `block`, `skip`, `out`, `goto`, `if`, `then`,
    /// `else`, `nondet`, `halt`).
    Keyword(Keyword),
    /// `:=`
    Assign,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// End of input.
    Eof,
}

/// Keywords of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `prog`
    Prog,
    /// `block`
    Block,
    /// `skip`
    Skip,
    /// `out`
    Out,
    /// `goto`
    Goto,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `nondet`
    Nondet,
    /// `halt`
    Halt,
}

impl Keyword {
    fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "prog" => Keyword::Prog,
            "block" => Keyword::Block,
            "skip" => Keyword::Skip,
            "out" => Keyword::Out,
            "goto" => Keyword::Goto,
            "if" => Keyword::If,
            "then" => Keyword::Then,
            "else" => Keyword::Else,
            "nondet" => Keyword::Nondet,
            "halt" => Keyword::Halt,
            _ => return None,
        })
    }
}

/// A token together with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Tokenizes `input`.
///
/// Comments run from `//` to end of line. The final token is always
/// [`Token::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] on unknown characters or malformed literals.
pub fn lex(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            tokens.push(Spanned {
                token: $tok,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => push!(Token::LBrace, 1),
            '}' => push!(Token::RBrace, 1),
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            ';' => push!(Token::Semi, 1),
            '+' => push!(Token::Plus, 1),
            '-' => push!(Token::Minus, 1),
            '*' => push!(Token::Star, 1),
            '/' => push!(Token::Slash, 1),
            '%' => push!(Token::Percent, 1),
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::Assign, 2);
                } else {
                    return Err(ParseError::new(line, col, "expected `:=`"));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::Le, 2);
                } else {
                    push!(Token::Lt, 1);
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::Ge, 2);
                } else {
                    push!(Token::Gt, 1);
                }
            }
            '=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::EqEq, 2);
                } else {
                    return Err(ParseError::new(line, col, "expected `==`"));
                }
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push!(Token::Ne, 2);
                } else {
                    push!(Token::Bang, 1);
                }
            }
            '&' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'&' {
                    push!(Token::AndAnd, 2);
                } else {
                    return Err(ParseError::new(line, col, "expected `&&`"));
                }
            }
            '|' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'|' {
                    push!(Token::OrOr, 2);
                } else {
                    return Err(ParseError::new(line, col, "expected `||`"));
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let value: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(line, col, format!("bad integer `{text}`")))?;
                tokens.push(Spanned {
                    token: Token::Int(value),
                    line,
                    col,
                });
                col += (i - start) as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let text = &input[start..i];
                let token = match Keyword::from_str(text) {
                    Some(kw) => Token::Keyword(kw),
                    None => Token::Ident(text.to_owned()),
                };
                tokens.push(Spanned { token, line, col });
                col += (i - start) as u32;
            }
            other => {
                return Err(ParseError::new(
                    line,
                    col,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            toks("prog block skipx skip"),
            vec![
                Token::Keyword(Keyword::Prog),
                Token::Keyword(Keyword::Block),
                Token::Ident("skipx".into()),
                Token::Keyword(Keyword::Skip),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            toks(":= <= < >= > == != && || ! + - * / %"),
            vec![
                Token::Assign,
                Token::Le,
                Token::Lt,
                Token::Ge,
                Token::Gt,
                Token::EqEq,
                Token::Ne,
                Token::AndAnd,
                Token::OrOr,
                Token::Bang,
                Token::Plus,
                Token::Minus,
                Token::Star,
                Token::Slash,
                Token::Percent,
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(
            toks("42 0"),
            vec![Token::Int(42), Token::Int(0), Token::Eof]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let spanned = lex("a // comment\n  b").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[1].col, 3);
        assert_eq!(spanned[1].token, Token::Ident("b".into()));
    }

    #[test]
    fn rejects_lone_colon() {
        let err = lex("x : y").unwrap_err();
        assert!(err.message.contains(":="));
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 3);
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex("x @ y").is_err());
        assert!(lex("a & b").is_err());
        assert!(lex("a | b").is_err());
        assert!(lex("a = b").is_err());
    }
}
