//! Flow-graph intermediate representation for the PDCE reproduction.
//!
//! This crate implements the program model of Knoop, Rüthing & Steffen,
//! *Partial Dead Code Elimination* (PLDI 1994), Section 2: directed flow
//! graphs `G = (N, E, s, e)` whose nodes are basic blocks of statements.
//! Statements are assignments `x := t`, the empty statement `skip`, and
//! *relevant* statements `out(t)` which force all their operands to be live.
//! Branching is either nondeterministic (as in the paper) or conditional
//! (conditions are treated as relevant uses, cf. the paper's footnote 2).
//!
//! Besides the core data types, the crate provides:
//!
//! * a textual language with a [lexer] and [parser], and a
//!   [pretty-printer](printer) plus [DOT export](dot),
//! * [critical-edge splitting](edgesplit) (Section 2.1 of the paper) and
//!   the inverse [CFG simplification](simplify) cleanup pass,
//! * CFG utilities ([`CfgView`], reverse postorder, dominators, loops),
//! * a deterministic [interpreter](interp) with output traces and executed
//!   statement counters, used to check semantics preservation,
//! * [path enumeration and sampling](paths) together with per-path
//!   assignment-pattern counting, the basis of the paper's `better`
//!   relation (Definition 3.6).
//!
//! # Example
//!
//! ```
//! use pdce_ir::parser::parse;
//!
//! let prog = parse(
//!     "prog {
//!        block s { goto n1 }
//!        block n1 { y := a + b; nondet n2 n3 }
//!        block n2 { y := 4; goto n4 }
//!        block n3 { out(y); goto n4 }
//!        block n4 { out(y); goto e }
//!        block e { halt }
//!      }",
//! )?;
//! assert_eq!(prog.num_blocks(), 6);
//! # Ok::<(), pdce_ir::error::ParseError>(())
//! ```

pub mod builder;
pub mod cfg;
pub mod dot;
pub mod edgesplit;
pub mod error;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod paths;
pub mod pattern;
pub mod printer;
pub mod program;
pub mod simplify;
pub mod stmt;
pub mod term;
pub mod validate;
pub mod var;

pub use builder::ProgramBuilder;
pub use cfg::CfgView;
pub use error::{IrError, ParseError};
pub use pattern::PatternKey;
pub use program::{Block, ChangeSet, NodeId, Program, Terminator};
pub use simplify::{simplify_cfg, SimplifyStats};
pub use stmt::Stmt;
pub use term::{BinOp, TermData, TermId, UnOp};
pub use var::Var;
