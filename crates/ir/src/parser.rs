//! Recursive-descent parser for the textual program language.
//!
//! # Grammar
//!
//! ```text
//! program    := "prog" "{" block+ "}"
//! block      := "block" IDENT "{" (stmt ";")* terminator ";"? "}"
//! stmt       := "skip" | IDENT ":=" expr | "out" "(" expr ")"
//! terminator := "goto" IDENT
//!             | "if" expr "then" IDENT "else" IDENT
//!             | "nondet" IDENT+
//!             | "halt"
//! expr       := or
//! or         := and ("||" and)*
//! and        := cmp ("&&" cmp)*
//! cmp        := add (("<"|"<="|">"|">="|"=="|"!=") add)?
//! add        := mul (("+"|"-") mul)*
//! mul        := unary (("*"|"/"|"%") unary)*
//! unary      := ("-"|"!") unary | atom
//! atom       := INT | IDENT | "(" expr ")"
//! ```
//!
//! The first block is the entry node; the unique `halt` block is the exit.
//! Variables are implicitly declared on first use. The parsed program is
//! [validated](crate::validate) before being returned.

use crate::error::ParseError;
use crate::lexer::{lex, Keyword, Spanned, Token};
use crate::program::{Block, NodeId, Program, Terminator};
use crate::stmt::Stmt;
use crate::term::{BinOp, TermArena, TermData, TermId, UnOp};
use crate::validate::validate;
use crate::var::VarPool;
use std::collections::HashMap;

/// Parses and validates a program.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors, unknown jump targets, or
/// graph-validation failures (see [`crate::validate`]).
///
/// # Example
///
/// ```
/// let prog = pdce_ir::parser::parse(
///     "prog { block s { goto e } block e { halt } }",
/// )?;
/// assert_eq!(prog.num_blocks(), 2);
/// # Ok::<(), pdce_ir::error::ParseError>(())
/// ```
pub fn parse(input: &str) -> Result<Program, ParseError> {
    let prog = parse_unvalidated(input)?;
    validate(&prog).map_err(ParseError::from)?;
    Ok(prog)
}

/// Parses without graph validation (useful for deliberately ill-formed
/// test inputs).
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or unknown jump targets.
pub fn parse_unvalidated(input: &str) -> Result<Program, ParseError> {
    let tokens = lex(input)?;
    Parser::new(tokens).program()
}

/// Parses a standalone expression into the given pools.
///
/// Used by [`crate::builder::ProgramBuilder`] so terms can be written as
/// source text.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or trailing input.
pub fn parse_expr_into(
    src: &str,
    vars: &mut VarPool,
    terms: &mut TermArena,
) -> Result<TermId, ParseError> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(tokens);
    parser.vars = std::mem::take(vars);
    parser.terms = std::mem::take(terms);
    let result = parser.expr();
    let trailing = parser.peek() != &Token::Eof;
    *vars = std::mem::take(&mut parser.vars);
    *terms = std::mem::take(&mut parser.terms);
    let t = result?;
    if trailing {
        return Err(ParseError::new(
            0,
            0,
            format!("trailing input in expression `{src}`"),
        ));
    }
    Ok(t)
}

struct RawBlock {
    name: String,
    stmts: Vec<Stmt>,
    term: RawTerminator,
    line: u32,
    col: u32,
}

enum RawTerminator {
    Goto(String),
    Cond {
        cond: TermId,
        then_to: String,
        else_to: String,
    },
    Nondet(Vec<String>),
    Halt,
}

/// Maximum nesting depth of an expression. Recursive descent spends
/// native stack per level, and a hostile input like `((((…1…))))` must
/// come back as a [`ParseError`], not a stack overflow (which aborts
/// the process and cannot be caught). The cap is far above anything a
/// legitimate program or the printer produces.
const MAX_EXPR_DEPTH: u32 = 256;

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    depth: u32,
    vars: VarPool,
    terms: TermArena,
}

impl Parser {
    fn new(tokens: Vec<Spanned>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
            vars: VarPool::new(),
            terms: TermArena::new(),
        }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn here(&self) -> (u32, u32) {
        let s = &self.tokens[self.pos];
        (s.line, s.col)
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].token.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError::new(line, col, msg)
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_keyword(&mut self, kw: Keyword) -> Result<(), ParseError> {
        match self.peek() {
            Token::Keyword(k) if *k == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw:?}` keyword, found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected {what}, found {other:?}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect_keyword(Keyword::Prog)?;
        self.expect(&Token::LBrace, "`{`")?;
        let mut raw_blocks = Vec::new();
        while matches!(self.peek(), Token::Keyword(Keyword::Block)) {
            raw_blocks.push(self.block()?);
        }
        self.expect(&Token::RBrace, "`}`")?;
        if raw_blocks.is_empty() {
            return Err(self.error("program has no blocks"));
        }

        let mut by_name: HashMap<String, NodeId> = HashMap::new();
        for (i, rb) in raw_blocks.iter().enumerate() {
            if by_name
                .insert(rb.name.clone(), NodeId::from_index(i))
                .is_some()
            {
                return Err(ParseError::new(
                    rb.line,
                    rb.col,
                    format!("duplicate block name `{}`", rb.name),
                ));
            }
        }
        let resolve = |name: &str, rb: &RawBlock| -> Result<NodeId, ParseError> {
            by_name.get(name).copied().ok_or_else(|| {
                ParseError::new(
                    rb.line,
                    rb.col,
                    format!("block `{}` jumps to unknown block `{name}`", rb.name),
                )
            })
        };

        let mut exit = None;
        let mut blocks = Vec::with_capacity(raw_blocks.len());
        for (i, rb) in raw_blocks.iter().enumerate() {
            let term = match &rb.term {
                RawTerminator::Goto(t) => Terminator::Goto(resolve(t, rb)?),
                RawTerminator::Cond {
                    cond,
                    then_to,
                    else_to,
                } => Terminator::Cond {
                    cond: *cond,
                    then_to: resolve(then_to, rb)?,
                    else_to: resolve(else_to, rb)?,
                },
                RawTerminator::Nondet(ts) => {
                    let mut ids = Vec::with_capacity(ts.len());
                    for t in ts {
                        ids.push(resolve(t, rb)?);
                    }
                    Terminator::Nondet(ids)
                }
                RawTerminator::Halt => {
                    if let Some(prev) = exit {
                        let prev: NodeId = prev;
                        return Err(ParseError::new(
                            rb.line,
                            rb.col,
                            format!(
                                "multiple `halt` blocks: `{}` and `{}`",
                                raw_blocks[prev.index()].name,
                                rb.name
                            ),
                        ));
                    }
                    exit = Some(NodeId::from_index(i));
                    Terminator::Halt
                }
            };
            blocks.push(Block {
                name: rb.name.clone(),
                stmts: rb.stmts.clone(),
                term,
                split_of: None,
            });
        }
        let exit = exit.ok_or_else(|| self.error("program has no `halt` block"))?;

        Ok(Program::from_parts(
            std::mem::take(&mut self.vars),
            std::mem::take(&mut self.terms),
            blocks,
            NodeId::from_index(0),
            exit,
        ))
    }

    fn block(&mut self) -> Result<RawBlock, ParseError> {
        let (line, col) = self.here();
        self.expect_keyword(Keyword::Block)?;
        let name = self.ident("block name")?;
        self.expect(&Token::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        let term = loop {
            match self.peek().clone() {
                Token::Keyword(Keyword::Goto) => {
                    self.bump();
                    break RawTerminator::Goto(self.ident("jump target")?);
                }
                Token::Keyword(Keyword::If) => {
                    self.bump();
                    let cond = self.expr()?;
                    self.expect_keyword(Keyword::Then)?;
                    let then_to = self.ident("then target")?;
                    self.expect_keyword(Keyword::Else)?;
                    let else_to = self.ident("else target")?;
                    break RawTerminator::Cond {
                        cond,
                        then_to,
                        else_to,
                    };
                }
                Token::Keyword(Keyword::Nondet) => {
                    self.bump();
                    let mut targets = vec![self.ident("nondet target")?];
                    while let Token::Ident(_) = self.peek() {
                        targets.push(self.ident("nondet target")?);
                    }
                    break RawTerminator::Nondet(targets);
                }
                Token::Keyword(Keyword::Halt) => {
                    self.bump();
                    break RawTerminator::Halt;
                }
                Token::Keyword(Keyword::Skip) => {
                    self.bump();
                    self.expect(&Token::Semi, "`;`")?;
                    stmts.push(Stmt::Skip);
                }
                Token::Keyword(Keyword::Out) => {
                    self.bump();
                    self.expect(&Token::LParen, "`(`")?;
                    let t = self.expr()?;
                    self.expect(&Token::RParen, "`)`")?;
                    self.expect(&Token::Semi, "`;`")?;
                    stmts.push(Stmt::Out(t));
                }
                Token::Ident(name) => {
                    self.bump();
                    self.expect(&Token::Assign, "`:=`")?;
                    let rhs = self.expr()?;
                    self.expect(&Token::Semi, "`;`")?;
                    let lhs = self.vars.intern(&name);
                    stmts.push(Stmt::Assign { lhs, rhs });
                }
                other => {
                    return Err(
                        self.error(format!("expected statement or terminator, found {other:?}"))
                    );
                }
            }
        };
        // Optional trailing semicolon after the terminator.
        if self.peek() == &Token::Semi {
            self.bump();
        }
        self.expect(&Token::RBrace, "`}`")?;
        Ok(RawBlock {
            name,
            stmts,
            term,
            line,
            col,
        })
    }

    /// Charges one level of expression nesting against
    /// [`MAX_EXPR_DEPTH`]; the caller must pair it with `self.depth -= 1`.
    fn enter_expr(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.error("expression too deeply nested"));
        }
        Ok(())
    }

    fn expr(&mut self) -> Result<TermId, ParseError> {
        self.enter_expr()?;
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    fn or_expr(&mut self) -> Result<TermId, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Token::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = self.terms.binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<TermId, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Token::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = self.terms.binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<TermId, ParseError> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            Token::EqEq => BinOp::Eq,
            Token::Ne => BinOp::Ne,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(self.terms.binary(op, lhs, rhs))
    }

    fn add_expr(&mut self) -> Result<TermId, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = self.terms.binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<TermId, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = self.terms.binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    // Chained unary operators (`!!…!x`) recurse without passing
    // through `expr`, so this level charges the depth budget itself.
    fn unary_expr(&mut self) -> Result<TermId, ParseError> {
        self.enter_expr()?;
        let result = self.unary_inner();
        self.depth -= 1;
        result
    }

    fn unary_inner(&mut self) -> Result<TermId, ParseError> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                // `-` immediately followed by an integer literal is a
                // negative constant, so `out(-1)` round-trips as
                // `Const(-1)` rather than `Neg(Const(1))`. A programmatic
                // `Neg(Const(c))` is printed as `-(c)` by the printer,
                // which this fold deliberately does not touch.
                if let Token::Int(v) = *self.peek() {
                    self.bump();
                    return Ok(self.terms.constant(v.wrapping_neg()));
                }
                let inner = self.unary_expr()?;
                Ok(self.terms.unary(UnOp::Neg, inner))
            }
            Token::Bang => {
                self.bump();
                let inner = self.unary_expr()?;
                Ok(self.terms.unary(UnOp::Not, inner))
            }
            _ => self.atom(),
        }
    }

    fn atom(&mut self) -> Result<TermId, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(self.terms.constant(v))
            }
            Token::Ident(name) => {
                self.bump();
                let v = self.vars.intern(&name);
                Ok(self.terms.intern(TermData::Var(v)))
            }
            Token::LParen => {
                self.bump();
                let t = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(t)
            }
            other => Err(self.error(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = "prog {
        block s  { goto n1 }
        block n1 { y := a + b; nondet n2 n3 }
        block n2 { goto n4 }
        block n3 { y := 4; goto n4 }
        block n4 { out(y); goto e }
        block e  { halt }
    }";

    #[test]
    fn parses_figure_one() {
        let p = parse(FIG1).unwrap();
        assert_eq!(p.num_blocks(), 6);
        assert_eq!(p.block(p.entry()).name, "s");
        assert_eq!(p.block(p.exit()).name, "e");
        let n1 = p.block_by_name("n1").unwrap();
        assert_eq!(p.block(n1).stmts.len(), 1);
        assert_eq!(p.successors(n1).len(), 2);
        assert_eq!(p.num_vars(), 3); // y, a, b
    }

    #[test]
    fn parses_conditionals_and_expressions() {
        let p = parse(
            "prog {
               block s { x := (a + b) * 2 - -c; if x <= 10 && !(a == b) then t else f }
               block t { out(x % 3); goto e }
               block f { skip; goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let s = p.entry();
        assert_eq!(p.block(s).stmts.len(), 1);
        assert!(matches!(p.block(s).term, Terminator::Cond { .. }));
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse("prog { block s { x := a + b * c; goto e } block e { halt } }").unwrap();
        let s = p.entry();
        let Stmt::Assign { rhs, .. } = p.block(s).stmts[0] else {
            panic!("expected assignment");
        };
        let TermData::Binary(op, _, r) = p.terms().data(rhs) else {
            panic!("expected binary");
        };
        assert_eq!(op, BinOp::Add);
        assert!(matches!(
            p.terms().data(r),
            TermData::Binary(BinOp::Mul, _, _)
        ));
    }

    #[test]
    fn rejects_unknown_target() {
        let err = parse("prog { block s { goto nowhere } block e { halt } }").unwrap_err();
        assert!(err.message.contains("unknown block"));
    }

    #[test]
    fn rejects_duplicate_blocks() {
        let err =
            parse("prog { block s { goto e } block s { goto e } block e { halt } }").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_multiple_halts() {
        let err =
            parse("prog { block s { nondet a b } block a { halt } block b { halt } }").unwrap_err();
        assert!(err.message.contains("multiple `halt`"));
    }

    #[test]
    fn rejects_missing_halt() {
        let err = parse("prog { block s { goto s } }").unwrap_err();
        assert!(err.message.contains("no `halt`"));
    }

    #[test]
    fn rejects_statement_after_terminator() {
        let err = parse("prog { block s { goto e; x := 1; } block e { halt } }").unwrap_err();
        assert!(err.message.contains("expected `}`"));
    }

    #[test]
    fn trailing_semicolon_after_terminator_ok() {
        assert!(parse("prog { block s { goto e; } block e { halt; } }").is_ok());
    }

    #[test]
    fn deeply_nested_expression_is_an_error_not_an_overflow() {
        let depth = 40_000;
        let expr = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let src = format!("prog {{ block s {{ x := {expr}; goto e }} block e {{ halt }} }}");
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("too deeply nested"), "{}", err.message);
        // Same for chained unary operators, which recurse separately.
        let src = format!(
            "prog {{ block s {{ x := {}1; goto e }} block e {{ halt }} }}",
            "!".repeat(40_000)
        );
        let err = parse(&src).unwrap_err();
        assert!(err.message.contains("too deeply nested"), "{}", err.message);
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let depth = 100;
        let expr = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let src =
            format!("prog {{ block s {{ x := {expr}; out(x); goto e }} block e {{ halt }} }}");
        assert!(parse(&src).is_ok());
    }

    #[test]
    fn validation_runs_on_parse() {
        // `x` is unreachable from the entry.
        let err =
            parse("prog { block s { goto e } block x { goto e } block e { halt } }").unwrap_err();
        assert!(err.message.contains("unreachable"), "{}", err.message);
        // But parse_unvalidated accepts it.
        assert!(parse_unvalidated(
            "prog { block s { goto e } block x { goto e } block e { halt } }"
        )
        .is_ok());
    }
}
