//! Path enumeration and sampling.
//!
//! The paper's `better` relation (Definition 3.6) quantifies over all
//! finite paths `p ∈ P[s, e]`. For acyclic graphs we enumerate those
//! paths exactly; for cyclic graphs we sample finite walks with a seeded
//! oracle. Because optimization keeps the branching structure intact, a
//! node sequence that is a path of the original graph is also a path of
//! the optimized graph, which is what makes per-path comparisons direct.

use crate::cfg::CfgView;
use crate::interp::{DecisionOracle, SeededOracle};
use crate::program::{NodeId, Program, Terminator};

/// Enumerates every path from entry to exit of an acyclic program.
///
/// Returns `None` if the graph is cyclic or the number of paths exceeds
/// `max_paths` (paths are exponential in the worst case).
pub fn enumerate_paths(prog: &Program, max_paths: usize) -> Option<Vec<Vec<NodeId>>> {
    let view = CfgView::new(prog);
    if !view.is_acyclic() {
        return None;
    }
    let mut result = Vec::new();
    let mut current = vec![prog.entry()];
    if !extend(prog, &mut current, &mut result, max_paths) {
        return None;
    }
    Some(result)
}

fn extend(
    prog: &Program,
    current: &mut Vec<NodeId>,
    result: &mut Vec<Vec<NodeId>>,
    max_paths: usize,
) -> bool {
    let last = *current.last().expect("path is nonempty");
    if last == prog.exit() {
        if result.len() >= max_paths {
            return false;
        }
        result.push(current.clone());
        return true;
    }
    for succ in prog.successors(last) {
        current.push(succ);
        let ok = extend(prog, current, result, max_paths);
        current.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Enumerates every entry→exit path in which no node is visited more
/// than `visit_cap` times — exact coverage of all executions with at
/// most `visit_cap - 1` re-entries per loop head. Returns `None` if more
/// than `max_paths` such paths exist.
///
/// For acyclic graphs and any `visit_cap ≥ 1` this coincides with
/// [`enumerate_paths`]. For cyclic graphs it makes per-path comparisons
/// (the paper's Definition 3.6) *exact up to the bound* instead of
/// sampled.
pub fn enumerate_bounded_paths(
    prog: &Program,
    visit_cap: usize,
    max_paths: usize,
) -> Option<Vec<Vec<NodeId>>> {
    let mut result = Vec::new();
    let mut current = vec![prog.entry()];
    let mut visits = vec![0usize; prog.num_blocks()];
    visits[prog.entry().index()] = 1;
    if !extend_bounded(
        prog,
        &mut current,
        &mut visits,
        visit_cap,
        &mut result,
        max_paths,
    ) {
        return None;
    }
    Some(result)
}

fn extend_bounded(
    prog: &Program,
    current: &mut Vec<NodeId>,
    visits: &mut Vec<usize>,
    visit_cap: usize,
    result: &mut Vec<Vec<NodeId>>,
    max_paths: usize,
) -> bool {
    let last = *current.last().expect("path is nonempty");
    if last == prog.exit() {
        if result.len() >= max_paths {
            return false;
        }
        result.push(current.clone());
        return true;
    }
    for succ in prog.successors(last) {
        if visits[succ.index()] >= visit_cap {
            continue;
        }
        visits[succ.index()] += 1;
        current.push(succ);
        let ok = extend_bounded(prog, current, visits, visit_cap, result, max_paths);
        current.pop();
        visits[succ.index()] -= 1;
        if !ok {
            return false;
        }
    }
    true
}

/// One random walk from entry towards exit, cut off after `max_len` nodes.
///
/// Conditional branches are resolved *structurally* (by the oracle, like
/// `nondet`), because path counting is a syntactic notion: Definition 3.6
/// ranges over all graph paths, not only executable ones.
pub fn sample_path(prog: &Program, oracle: &mut dyn DecisionOracle, max_len: usize) -> Vec<NodeId> {
    let mut path = vec![prog.entry()];
    let mut node = prog.entry();
    while node != prog.exit() && path.len() < max_len {
        let succs = prog.successors(node);
        debug_assert!(!succs.is_empty(), "non-exit node without successors");
        let idx = if succs.len() == 1 {
            0
        } else {
            oracle.choose(node, succs.len()).min(succs.len() - 1)
        };
        node = succs[idx];
        path.push(node);
    }
    path
}

/// Samples `count` walks with a seeded oracle (deterministic per seed).
pub fn sample_paths(prog: &Program, seed: u64, count: usize, max_len: usize) -> Vec<Vec<NodeId>> {
    let mut oracle = SeededOracle::new(seed);
    (0..count)
        .map(|_| sample_path(prog, &mut oracle, max_len))
        .collect()
}

/// Checks that `path` is a well-formed node sequence of `prog`: starts at
/// the entry and each step follows an edge. (It need not reach the exit.)
pub fn is_path_of(prog: &Program, path: &[NodeId]) -> bool {
    if path.first() != Some(&prog.entry()) {
        return false;
    }
    path.windows(2)
        .all(|w| w[0].index() < prog.num_blocks() && prog.successors(w[0]).contains(&w[1]))
}

/// Translates a node-sequence path from one program to another via block
/// names, returning `None` if some block or edge is missing.
///
/// Used when the compared programs were built separately (e.g. a
/// hand-written expected result) and node ids do not line up.
pub fn translate_path(from: &Program, to: &Program, path: &[NodeId]) -> Option<Vec<NodeId>> {
    let mapped: Option<Vec<NodeId>> = path
        .iter()
        .map(|&n| to.block_by_name(&from.block(n).name))
        .collect();
    let mapped = mapped?;
    is_path_of(to, &mapped).then_some(mapped)
}

/// Decision sequence (successor indices at branching nodes) that produces
/// `path`; `None` if `path` is not a path of `prog`.
pub fn decisions_of_path(prog: &Program, path: &[NodeId]) -> Option<Vec<usize>> {
    if !is_path_of(prog, path) {
        return None;
    }
    let mut decisions = Vec::new();
    for w in path.windows(2) {
        let block = prog.block(w[0]);
        if let Terminator::Nondet(succs) = &block.term {
            if succs.len() > 1 {
                decisions.push(succs.iter().position(|&m| m == w[1])?);
            }
        }
    }
    Some(decisions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn diamond() -> Program {
        parse(
            "prog {
               block s { nondet a b }
               block a { goto j }
               block b { goto j }
               block j { goto e }
               block e { halt }
             }",
        )
        .unwrap()
    }

    #[test]
    fn enumerates_diamond_paths() {
        let p = diamond();
        let paths = enumerate_paths(&p, 100).unwrap();
        assert_eq!(paths.len(), 2);
        for path in &paths {
            assert_eq!(path.first(), Some(&p.entry()));
            assert_eq!(path.last(), Some(&p.exit()));
            assert!(is_path_of(&p, path));
        }
    }

    #[test]
    fn cyclic_graph_yields_none() {
        let p = parse(
            "prog {
               block s { goto h }
               block h { nondet h e }
               block e { halt }
             }",
        )
        .unwrap();
        assert!(enumerate_paths(&p, 100).is_none());
    }

    #[test]
    fn path_cap_yields_none() {
        let p = diamond();
        assert!(enumerate_paths(&p, 1).is_none());
    }

    #[test]
    fn bounded_enumeration_covers_loop_unrollings() {
        let p = parse(
            "prog {
               block s { goto h }
               block h { nondet body x }
               block body { goto h }
               block x { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        // visit_cap = 1: only the straight-through path.
        let one = enumerate_bounded_paths(&p, 1, 100).unwrap();
        assert_eq!(one.len(), 1);
        // visit_cap = 3: zero, one, or two loop iterations.
        let three = enumerate_bounded_paths(&p, 3, 100).unwrap();
        assert_eq!(three.len(), 3);
        for path in &three {
            assert!(is_path_of(&p, path));
            assert_eq!(path.last(), Some(&p.exit()));
        }
    }

    #[test]
    fn bounded_matches_full_on_acyclic() {
        let p = diamond();
        let full = enumerate_paths(&p, 100).unwrap();
        let bounded = enumerate_bounded_paths(&p, 1, 100).unwrap();
        assert_eq!(full, bounded);
    }

    #[test]
    fn bounded_respects_path_cap() {
        let p = parse(
            "prog {
               block s { goto h }
               block h { nondet body x }
               block body { goto h }
               block x { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert!(enumerate_bounded_paths(&p, 5, 2).is_none());
    }

    #[test]
    fn sampled_walks_are_paths() {
        let p = parse(
            "prog {
               block s { goto h }
               block h { nondet body x }
               block body { goto h }
               block x { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        for path in sample_paths(&p, 42, 20, 50) {
            assert!(is_path_of(&p, path.as_slice()));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = diamond();
        assert_eq!(sample_paths(&p, 5, 10, 10), sample_paths(&p, 5, 10, 10));
    }

    #[test]
    fn decisions_round_trip() {
        let p = diamond();
        let paths = enumerate_paths(&p, 10).unwrap();
        for path in paths {
            let ds = decisions_of_path(&p, &path).unwrap();
            assert_eq!(ds.len(), 1);
            let b = p.successors(p.entry())[ds[0]];
            assert_eq!(path[1], b);
        }
    }

    #[test]
    fn translate_by_names() {
        let p1 = diamond();
        let p2 = diamond();
        let paths = enumerate_paths(&p1, 10).unwrap();
        for path in paths {
            let t = translate_path(&p1, &p2, &path).unwrap();
            assert_eq!(t.len(), path.len());
        }
    }

    #[test]
    fn is_path_of_rejects_non_edges() {
        let p = diamond();
        let a = p.block_by_name("a").unwrap();
        let b = p.block_by_name("b").unwrap();
        assert!(!is_path_of(&p, &[p.entry(), a, b]));
        assert!(!is_path_of(&p, &[a]));
    }
}
