//! Assignment patterns `α ≡ x := t` (Section 2 of the paper).
//!
//! A pattern is identified by its left-hand-side variable and the
//! *structure* of its right-hand-side term. [`PatternKey`] is an
//! arena-independent canonical form, so occurrence counts of the same
//! pattern can be compared across different programs (as the `better`
//! relation of Definition 3.6 requires).

use std::collections::HashMap;
use std::fmt;

use crate::printer::print_term;
use crate::program::{NodeId, Program};
use crate::stmt::Stmt;
use crate::term::TermId;
use crate::var::Var;

/// Canonical, program-independent identity of an assignment pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternKey(String);

impl PatternKey {
    /// Builds the key for `lhs := rhs` in `prog`.
    pub fn of(prog: &Program, lhs: Var, rhs: TermId) -> PatternKey {
        PatternKey(format!(
            "{} := {}",
            prog.vars().name(lhs),
            print_term(prog, rhs)
        ))
    }

    /// Builds the key of an assignment statement; `None` for other
    /// statement kinds.
    pub fn of_stmt(prog: &Program, stmt: &Stmt) -> Option<PatternKey> {
        match *stmt {
            Stmt::Assign { lhs, rhs } => Some(PatternKey::of(prog, lhs, rhs)),
            _ => None,
        }
    }

    /// The canonical rendering, e.g. `"y := a + b"`.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for PatternKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Counts occurrences of every assignment pattern in one block.
pub fn block_pattern_counts(prog: &Program, n: NodeId) -> HashMap<PatternKey, u64> {
    let mut counts = HashMap::new();
    for stmt in &prog.block(n).stmts {
        if let Some(key) = PatternKey::of_stmt(prog, stmt) {
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    counts
}

/// Counts occurrences of every assignment pattern along a node sequence
/// (the `α#(p)` of Definition 3.6).
pub fn path_pattern_counts(prog: &Program, path: &[NodeId]) -> HashMap<PatternKey, u64> {
    let mut counts: HashMap<PatternKey, u64> = HashMap::new();
    for &n in path {
        for stmt in &prog.block(n).stmts {
            if let Some(key) = PatternKey::of_stmt(prog, stmt) {
                *counts.entry(key).or_insert(0) += 1;
            }
        }
    }
    counts
}

/// Whether count map `a` is pointwise ≤ `b` (missing entries count 0).
pub fn counts_dominated(a: &HashMap<PatternKey, u64>, b: &HashMap<PatternKey, u64>) -> bool {
    a.iter()
        .all(|(k, &va)| va <= b.get(k).copied().unwrap_or(0))
}

/// All distinct assignment patterns occurring in the program (`AP`),
/// sorted by canonical key for determinism.
pub fn all_patterns(prog: &Program) -> Vec<PatternKey> {
    let mut set: Vec<PatternKey> = prog
        .node_ids()
        .flat_map(|n| {
            prog.block(n)
                .stmts
                .iter()
                .filter_map(|s| PatternKey::of_stmt(prog, s))
                .collect::<Vec<_>>()
        })
        .collect();
    set.sort();
    set.dedup();
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn keys_are_structural() {
        let p = parse(
            "prog {
               block s { y := a + b; x := a + b; y := a + b; goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let ap = all_patterns(&p);
        assert_eq!(ap.len(), 2);
        assert_eq!(ap[0].as_str(), "x := a + b");
        assert_eq!(ap[1].as_str(), "y := a + b");
    }

    #[test]
    fn block_counts() {
        let p = parse(
            "prog {
               block s { y := a + b; skip; y := a + b; out(y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let counts = block_pattern_counts(&p, p.entry());
        let key = all_patterns(&p).remove(0);
        assert_eq!(counts.get(&key), Some(&2));
    }

    #[test]
    fn path_counts_accumulate_over_nodes() {
        let p = parse(
            "prog {
               block s { y := a + b; goto m }
               block m { y := a + b; goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let path = vec![p.entry(), p.block_by_name("m").unwrap(), p.exit()];
        let counts = path_pattern_counts(&p, &path);
        assert_eq!(counts.values().sum::<u64>(), 2);
    }

    #[test]
    fn domination_is_pointwise() {
        let p1 = parse("prog { block s { y := a; goto e } block e { halt } }").unwrap();
        let p2 =
            parse("prog { block s { y := a; y := a; x := b; goto e } block e { halt } }").unwrap();
        let c1 = path_pattern_counts(&p1, &[p1.entry()]);
        let c2 = path_pattern_counts(&p2, &[p2.entry()]);
        assert!(counts_dominated(&c1, &c2));
        assert!(!counts_dominated(&c2, &c1));
    }

    #[test]
    fn keys_compare_across_programs() {
        let p1 = parse("prog { block s { y := a + b; goto e } block e { halt } }").unwrap();
        let p2 = parse("prog { block z { y := a + b; goto q } block q { halt } }").unwrap();
        let k1 = all_patterns(&p1).remove(0);
        let k2 = all_patterns(&p2).remove(0);
        assert_eq!(k1, k2);
    }
}
