//! Pretty-printer: renders programs back to the textual language.
//!
//! The output of [`print_program`] re-parses to a structurally equal
//! program (round-trip property, tested in the crate's property tests).
//! [`canonical_string`] produces a name-keyed normal form used to compare
//! programs that live in different arenas.

use std::fmt::Write as _;

use crate::program::{NodeId, Program, Terminator};
use crate::stmt::Stmt;
use crate::term::{BinOp, TermData, TermId};

/// Renders a term with minimal parentheses.
pub fn print_term(prog: &Program, t: TermId) -> String {
    let mut out = String::new();
    term_prec(prog, t, 0, &mut out);
    out
}

fn term_prec(prog: &Program, t: TermId, min_prec: u8, out: &mut String) {
    match prog.terms().data(t) {
        TermData::Const(v) => {
            let _ = write!(out, "{v}");
        }
        TermData::Var(v) => out.push_str(prog.vars().name(v)),
        TermData::Unary(op, a) => {
            out.push_str(op.symbol());
            // Unary binds tighter than all binaries; parenthesize binary
            // operands so `-(a+b)` round-trips. A negation of a
            // non-negative literal also needs parentheses — `-(1)` —
            // because the parser folds a bare `-1` into `Const(-1)`.
            let needs = matches!(prog.terms().data(a), TermData::Binary(..))
                || (op == crate::term::UnOp::Neg
                    && matches!(prog.terms().data(a), TermData::Const(c) if c >= 0));
            if needs {
                out.push('(');
            }
            term_prec(prog, a, 6, out);
            if needs {
                out.push(')');
            }
        }
        TermData::Binary(op, a, b) => {
            let prec = op.precedence();
            let needs = prec < min_prec;
            if needs {
                out.push('(');
            }
            // Left-associative operators allow an equal-precedence left
            // child; comparisons are *non-associative* in the grammar
            // (`cmp := add (op add)?`), so both children must bind
            // strictly tighter there.
            let non_assoc = matches!(
                op,
                BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
            );
            let left_min = if non_assoc { prec + 1 } else { prec };
            term_prec(prog, a, left_min, out);
            let _ = write!(out, " {} ", op.symbol());
            term_prec(prog, b, prec + 1, out);
            if needs {
                out.push(')');
            }
        }
    }
}

/// Renders one statement (without trailing `;`).
pub fn print_stmt(prog: &Program, stmt: &Stmt) -> String {
    match *stmt {
        Stmt::Skip => "skip".to_owned(),
        Stmt::Assign { lhs, rhs } => {
            format!("{} := {}", prog.vars().name(lhs), print_term(prog, rhs))
        }
        Stmt::Out(t) => format!("out({})", print_term(prog, t)),
    }
}

/// Renders a terminator.
pub fn print_terminator(prog: &Program, term: &Terminator) -> String {
    let name = |n: NodeId| prog.block(n).name.clone();
    match term {
        Terminator::Goto(n) => format!("goto {}", name(*n)),
        Terminator::Cond {
            cond,
            then_to,
            else_to,
        } => format!(
            "if {} then {} else {}",
            print_term(prog, *cond),
            name(*then_to),
            name(*else_to)
        ),
        Terminator::Nondet(ns) => {
            let targets: Vec<String> = ns.iter().map(|&n| name(n)).collect();
            format!("nondet {}", targets.join(" "))
        }
        Terminator::Halt => "halt".to_owned(),
    }
}

/// Renders a whole program in the textual language (blocks in node order).
pub fn print_program(prog: &Program) -> String {
    let mut out = String::from("prog {\n");
    for n in prog.node_ids() {
        let b = prog.block(n);
        let _ = writeln!(out, "  block {} {{", b.name);
        for s in &b.stmts {
            let _ = writeln!(out, "    {};", print_stmt(prog, s));
        }
        let _ = writeln!(out, "    {}", print_terminator(prog, &b.term));
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

/// A canonical, arena-independent normal form of a program.
///
/// Blocks are listed sorted by name; entry/exit names are recorded
/// explicitly. Two programs are *structurally equal* (same graph over the
/// same block names, same statements up to term structure) iff their
/// canonical strings are equal — regardless of node numbering or arena ids.
pub fn canonical_string(prog: &Program) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(prog.num_blocks());
    for n in prog.node_ids() {
        let b = prog.block(n);
        let stmts: Vec<String> = b.stmts.iter().map(|s| print_stmt(prog, s)).collect();
        lines.push(format!(
            "{}: [{}] {}",
            b.name,
            stmts.join("; "),
            print_terminator(prog, &b.term)
        ));
    }
    lines.sort();
    format!(
        "entry={} exit={}\n{}",
        prog.block(prog.entry()).name,
        prog.block(prog.exit()).name,
        lines.join("\n")
    )
}

/// Structural equality across arenas, via [`canonical_string`].
pub fn structural_eq(a: &Program, b: &Program) -> bool {
    canonical_string(a) == canonical_string(b)
}

/// A unified diff-style description of where two programs differ, for
/// test-failure messages. Empty if structurally equal.
pub fn diff(a: &Program, b: &Program) -> String {
    let ca = canonical_string(a);
    let cb = canonical_string(b);
    if ca == cb {
        return String::new();
    }
    let la: Vec<&str> = ca.lines().collect();
    let lb: Vec<&str> = cb.lines().collect();
    let mut out = String::new();
    for line in &la {
        if !lb.contains(line) {
            let _ = writeln!(out, "- {line}");
        }
    }
    for line in &lb {
        if !la.contains(line) {
            let _ = writeln!(out, "+ {line}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn round_trips_through_parser() {
        let src = "prog {
            block s { x := (a + b) * c; if x < 10 then t else f }
            block t { out(x); goto e }
            block f { y := -(a + 1); skip; nondet t e }
            block e { halt }
        }";
        let p1 = parse(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap();
        assert!(structural_eq(&p1, &p2), "diff:\n{}", diff(&p1, &p2));
    }

    #[test]
    fn minimal_parens() {
        let p =
            parse("prog { block s { x := a + b * c; y := (a + b) * c; goto e } block e { halt } }")
                .unwrap();
        let s = p.entry();
        assert_eq!(print_stmt(&p, &p.block(s).stmts[0]), "x := a + b * c");
        assert_eq!(print_stmt(&p, &p.block(s).stmts[1]), "y := (a + b) * c");
    }

    #[test]
    fn left_associativity_preserved() {
        // a - b - c parses as (a-b)-c; printing must not drop the
        // distinction with a - (b - c).
        let p =
            parse("prog { block s { x := a - b - c; y := a - (b - c); goto e } block e { halt } }")
                .unwrap();
        let s = p.entry();
        assert_eq!(print_stmt(&p, &p.block(s).stmts[0]), "x := a - b - c");
        assert_eq!(print_stmt(&p, &p.block(s).stmts[1]), "y := a - (b - c)");
    }

    #[test]
    fn structural_eq_ignores_block_order() {
        let p1 = parse(
            "prog { block s { nondet a b } block a { goto e } block b { goto e } block e { halt } }",
        )
        .unwrap();
        let p2 = parse(
            "prog { block s { nondet a b } block b { goto e } block a { goto e } block e { halt } }",
        )
        .unwrap();
        assert!(structural_eq(&p1, &p2));
    }

    #[test]
    fn structural_eq_detects_stmt_difference() {
        let p1 = parse("prog { block s { x := 1; goto e } block e { halt } }").unwrap();
        let p2 = parse("prog { block s { x := 2; goto e } block e { halt } }").unwrap();
        assert!(!structural_eq(&p1, &p2));
        let d = diff(&p1, &p2);
        assert!(d.contains("x := 1"));
        assert!(d.contains("x := 2"));
    }
}
