//! The flow graph `G = (N, E, s, e)`: basic blocks, terminators, and the
//! owning [`Program`] container.

use std::fmt;

use crate::error::IrError;
use crate::stmt::Stmt;
use crate::term::{TermArena, TermData, TermId};
use crate::var::{Var, VarPool};

/// Identifier of a basic block (a node of the flow graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a dense index.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index overflow"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(NodeId),
    /// Two-way conditional branch. The condition term is treated as a
    /// *relevant* use (paper footnote 2: branch conditions must be
    /// considered relevant).
    Cond {
        /// Branch condition; nonzero takes `then_to`.
        cond: TermId,
        /// Successor on a truthy condition.
        then_to: NodeId,
        /// Successor on a falsy condition.
        else_to: NodeId,
    },
    /// Nondeterministic branch, exactly as in the paper's program model.
    Nondet(Vec<NodeId>),
    /// Program end; only the exit node carries this.
    Halt,
}

impl Terminator {
    /// Successor nodes in branch order.
    pub fn successors(&self) -> Vec<NodeId> {
        match self {
            Terminator::Goto(n) => vec![*n],
            Terminator::Cond {
                then_to, else_to, ..
            } => vec![*then_to, *else_to],
            Terminator::Nondet(ns) => ns.clone(),
            Terminator::Halt => Vec::new(),
        }
    }

    /// Calls `f` on each successor, in branch order, without allocating.
    /// [`CfgView`](crate::CfgView) construction uses this to fill its
    /// CSR edge array directly.
    pub fn for_each_successor(&self, mut f: impl FnMut(NodeId)) {
        match self {
            Terminator::Goto(n) => f(*n),
            Terminator::Cond {
                then_to, else_to, ..
            } => {
                f(*then_to);
                f(*else_to);
            }
            Terminator::Nondet(ns) => ns.iter().copied().for_each(f),
            Terminator::Halt => {}
        }
    }

    /// Number of successors.
    pub fn successor_count(&self) -> usize {
        match self {
            Terminator::Goto(_) => 1,
            Terminator::Cond { .. } => 2,
            Terminator::Nondet(ns) => ns.len(),
            Terminator::Halt => 0,
        }
    }

    /// The term read by the terminator, if any (only `Cond`).
    pub fn used_term(&self) -> Option<TermId> {
        match self {
            Terminator::Cond { cond, .. } => Some(*cond),
            _ => None,
        }
    }

    /// Rewrites every successor equal to `from` into `to`.
    pub fn retarget(&mut self, from: NodeId, to: NodeId) {
        match self {
            Terminator::Goto(n) => {
                if *n == from {
                    *n = to;
                }
            }
            Terminator::Cond {
                then_to, else_to, ..
            } => {
                if *then_to == from {
                    *then_to = to;
                }
                if *else_to == from {
                    *else_to = to;
                }
            }
            Terminator::Nondet(ns) => {
                for n in ns {
                    if *n == from {
                        *n = to;
                    }
                }
            }
            Terminator::Halt => {}
        }
    }
}

/// Upper bound on retained change-log entries. When the log would grow
/// past this, the older half is discarded in bulk; deltas reaching back
/// past the trimmed prefix then report `None` (analyses fall back to a
/// cold solve), so trimming is a performance trade-off, never a
/// soundness one.
const CHANGE_LOG_CAP: usize = 1024;

/// One logged mutation, classified by what an analysis could observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Change {
    /// Only the statement list of one block changed; the control-flow
    /// shape (terminators, block set, entry/exit) is untouched.
    Stmts(NodeId),
    /// Anything else: terminator rewrites, block or edge additions,
    /// critical-edge splits, graph replacement, or an unclassified
    /// mutation through [`Program::block_mut`] (conservative — the
    /// borrow can reach the terminator).
    Structural,
}

/// The fine-grained delta between two program revisions, assembled by
/// [`Program::changes_since`] from the mutation log.
///
/// Incremental re-analysis consumes it as follows: when
/// [`structural`](ChangeSet::structural) is `false`, every cached
/// data-flow solution over the same CFG can be warm-started by resetting
/// only [`dirty_blocks`](ChangeSet::dirty_blocks) (and their dependence
/// frontier) to the lattice bound; a structural delta invalidates the
/// CFG itself and demands a cold solve.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeSet {
    structural: bool,
    dirty: Vec<NodeId>,
}

impl ChangeSet {
    /// Whether the delta is empty (the program is unchanged).
    pub fn is_empty(&self) -> bool {
        !self.structural && self.dirty.is_empty()
    }

    /// Whether any structural (CFG-shape) mutation occurred.
    pub fn structural(&self) -> bool {
        self.structural
    }

    /// Blocks whose statement lists changed, sorted and deduplicated.
    /// Meaningful only when [`structural`](ChangeSet::structural) is
    /// `false` (a structural delta dirties everything).
    pub fn dirty_blocks(&self) -> &[NodeId] {
        &self.dirty
    }
}

/// A basic block: a named node holding a statement list and a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Human-readable name (unique within a program).
    pub name: String,
    /// Straight-line statements executed in order.
    pub stmts: Vec<Stmt>,
    /// Control transfer at the end of the block.
    pub term: Terminator,
    /// If the block was synthesized by critical-edge splitting, the
    /// original edge `(from, to)` it was inserted into.
    pub split_of: Option<(NodeId, NodeId)>,
}

impl Block {
    /// Creates a block with no statements and the given terminator.
    pub fn new(name: impl Into<String>, term: Terminator) -> Block {
        Block {
            name: name.into(),
            stmts: Vec::new(),
            term,
            split_of: None,
        }
    }

    /// Whether this block was synthesized by edge splitting.
    pub fn is_synthetic(&self) -> bool {
        self.split_of.is_some()
    }
}

/// A whole program: variable pool, term arena, and the flow graph.
///
/// Blocks are stored densely and addressed by [`NodeId`]; transformations
/// mutate blocks in place, so node identity is stable across optimization
/// (which is what makes the paper's per-path comparisons meaningful).
#[derive(Debug, Clone)]
pub struct Program {
    vars: VarPool,
    terms: TermArena,
    blocks: Vec<Block>,
    entry: NodeId,
    exit: NodeId,
    /// Monotonic mutation counter. Every operation that may change the
    /// program (mutable block access, adding blocks or edges, interning
    /// variables or terms, graph replacement) bumps it, so analysis
    /// caches can detect staleness in O(1) without hashing the program.
    revision: u64,
    /// Fine-grained mutation log: for each revision bump, the revision
    /// value *after* the change paired with what kind of change it was.
    /// Consumed by [`Program::changes_since`] for incremental
    /// re-analysis; capped at [`CHANGE_LOG_CAP`] entries.
    log: Vec<(u64, Change)>,
}

impl Program {
    /// Creates a program containing only an entry and an exit block.
    ///
    /// The entry is named `s`, falls through to the exit named `e`,
    /// matching the paper's convention of `skip`-only start and end nodes.
    pub fn new() -> Program {
        let entry = NodeId(0);
        let exit = NodeId(1);
        Program {
            vars: VarPool::new(),
            terms: TermArena::new(),
            blocks: vec![
                Block::new("s", Terminator::Goto(exit)),
                Block::new("e", Terminator::Halt),
            ],
            entry,
            exit,
            revision: 0,
            log: Vec::new(),
        }
    }

    /// Builds a program from parts. Used by the builder and parser.
    pub(crate) fn from_parts(
        vars: VarPool,
        terms: TermArena,
        blocks: Vec<Block>,
        entry: NodeId,
        exit: NodeId,
    ) -> Program {
        Program {
            vars,
            terms,
            blocks,
            entry,
            exit,
            revision: 0,
            log: Vec::new(),
        }
    }

    /// The current mutation revision. Two reads returning the same value
    /// with no interleaved `&mut self` call guarantee the program is
    /// unchanged between them; analysis caches key their entries on it.
    ///
    /// The value is a composite of a mutation counter and the arena
    /// sizes: interning a term or variable that already exists leaves
    /// the revision alone (the arenas are append-only, so a dedup hit
    /// changes nothing an analysis could observe), while a genuinely new
    /// term or variable moves it (cached solutions are sized by the
    /// variable universe and must not survive its growth).
    pub fn revision(&self) -> u64 {
        self.revision + self.terms.len() as u64 + self.vars.len() as u64
    }

    /// Appends a log entry stamped with the post-change revision. Must
    /// be called *after* the revision bump it describes.
    fn record(&mut self, change: Change) {
        if self.log.len() >= CHANGE_LOG_CAP {
            self.log.drain(..CHANGE_LOG_CAP / 2);
        }
        let rev = self.revision();
        self.log.push((rev, change));
    }

    /// The delta between revision `rev` (a value previously returned by
    /// [`Program::revision`]) and the current state, or `None` when the
    /// log cannot account for every intervening revision step — because
    /// the log was trimmed, `rev` belongs to a different program, or a
    /// revision moved without a log entry (interning a genuinely new
    /// variable or term grows the arenas, which the composite revision
    /// observes but the log does not). Callers must treat `None` as
    /// "anything may have changed" and fall back to a cold solve.
    pub fn changes_since(&self, rev: u64) -> Option<ChangeSet> {
        let cur = self.revision();
        if rev == cur {
            return Some(ChangeSet::default());
        }
        if rev > cur {
            return None;
        }
        let needed = usize::try_from(cur - rev).ok()?;
        if needed > self.log.len() {
            return None;
        }
        let suffix = &self.log[self.log.len() - needed..];
        let mut out = ChangeSet::default();
        for (i, (r, change)) in suffix.iter().enumerate() {
            // Contiguity check: each intervening revision must be
            // explained by exactly one log entry.
            if *r != rev + 1 + i as u64 {
                return None;
            }
            match change {
                Change::Stmts(n) => out.dirty.push(*n),
                Change::Structural => out.structural = true,
            }
        }
        out.dirty.sort_unstable();
        out.dirty.dedup();
        Some(out)
    }

    /// Bumps the revision without any structural change. Used by
    /// transformations that mutate through interior block access and
    /// want to be explicit, and by tests. Logged conservatively as a
    /// structural change (the interior mutation is unclassified).
    pub fn touch(&mut self) {
        self.revision += 1;
        self.record(Change::Structural);
    }

    /// The entry node `s`.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The exit node `e`.
    pub fn exit(&self) -> NodeId {
        self.exit
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Total number of statements over all blocks (the paper's `i`).
    pub fn num_stmts(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).sum()
    }

    /// Total number of *assignment* statements.
    pub fn num_assignments(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.stmts)
            .filter(|s| s.is_assignment())
            .count()
    }

    /// Iterates over all node ids in index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.blocks.len() as u32).map(NodeId)
    }

    /// Shared access to a block.
    pub fn block(&self, n: NodeId) -> &Block {
        &self.blocks[n.index()]
    }

    /// Mutable access to a block. Conservatively counts as a mutation
    /// for revision tracking, even if the caller changes nothing, and is
    /// logged as structural because the borrow can reach the terminator.
    /// Transformations that only edit the statement list should prefer
    /// [`Program::stmts_mut`], which logs a block-precise delta that
    /// incremental re-analysis can exploit.
    pub fn block_mut(&mut self, n: NodeId) -> &mut Block {
        self.revision += 1;
        self.record(Change::Structural);
        &mut self.blocks[n.index()]
    }

    /// Mutable access to one block's statement list. Counts as a
    /// mutation like [`Program::block_mut`], but is logged as a
    /// statements-only change of block `n`: the CFG shape is guaranteed
    /// untouched, so cached data-flow solutions can be warm-started with
    /// only `n` (plus its dependence frontier) marked dirty.
    pub fn stmts_mut(&mut self, n: NodeId) -> &mut Vec<Stmt> {
        self.revision += 1;
        self.record(Change::Stmts(n));
        &mut self.blocks[n.index()].stmts
    }

    /// Looks a block up by name.
    pub fn block_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_ids().find(|&n| self.block(n).name == name)
    }

    /// Successors of `n` in branch order.
    pub fn successors(&self, n: NodeId) -> Vec<NodeId> {
        self.block(n).term.successors()
    }

    /// Shared access to the variable pool.
    pub fn vars(&self) -> &VarPool {
        &self.vars
    }

    /// Mutable access to the variable pool. The pool is append-only, so
    /// revision tracking observes its length instead of this borrow.
    pub fn vars_mut(&mut self) -> &mut VarPool {
        &mut self.vars
    }

    /// Shared access to the term arena.
    pub fn terms(&self) -> &TermArena {
        &self.terms
    }

    /// Mutable access to the term arena. The arena is append-only, so
    /// revision tracking observes its length instead of this borrow.
    pub fn terms_mut(&mut self) -> &mut TermArena {
        &mut self.terms
    }

    /// Interns a variable by name.
    pub fn var(&mut self, name: &str) -> Var {
        self.vars.intern(name)
    }

    /// Interns a term.
    pub fn term(&mut self, data: TermData) -> TermId {
        self.terms.intern(data)
    }

    /// Appends a fresh block and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::DuplicateBlock`] if the name is taken.
    pub fn add_block(&mut self, block: Block) -> Result<NodeId, IrError> {
        if self.block_by_name(&block.name).is_some() {
            return Err(IrError::DuplicateBlock(block.name));
        }
        let id = NodeId(u32::try_from(self.blocks.len()).expect("too many blocks"));
        self.revision += 1;
        self.record(Change::Structural);
        self.blocks.push(block);
        Ok(id)
    }

    /// Inserts a synthetic block on the edge `(from, to)` and returns it.
    ///
    /// The new block is named `S_<from>_<to>` (after the paper's
    /// `S_{m,n}` notation), contains no statements, jumps to `to`, and
    /// `from`'s terminator is retargeted. Used by critical-edge splitting.
    ///
    /// # Panics
    ///
    /// Panics if `(from, to)` is not an edge of the graph.
    pub fn split_edge(&mut self, from: NodeId, to: NodeId) -> NodeId {
        assert!(
            self.successors(from).contains(&to),
            "({from}, {to}) is not an edge"
        );
        let mut name = format!("S_{}_{}", self.block(from).name, self.block(to).name);
        // Guard against pathological user-chosen names colliding.
        while self.block_by_name(&name).is_some() {
            name.push('_');
        }
        let mut block = Block::new(name, Terminator::Goto(to));
        block.split_of = Some((from, to));
        let id = NodeId(u32::try_from(self.blocks.len()).expect("too many blocks"));
        self.revision += 1;
        self.record(Change::Structural);
        self.blocks.push(block);
        self.block_mut(from).term.retarget(to, id);
        id
    }

    /// The size `max(#stmts over blocks)` useful for growth statistics.
    pub fn max_block_len(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len()).max().unwrap_or(0)
    }

    /// Replaces the entire block set (used by CFG simplification when
    /// compacting node indices). The variable pool and term arena are
    /// kept — term ids inside `blocks` stay valid.
    pub(crate) fn replace_graph(&mut self, blocks: Vec<Block>, entry: NodeId, exit: NodeId) {
        assert!(entry.index() < blocks.len() && exit.index() < blocks.len());
        self.revision += 1;
        self.record(Change::Structural);
        self.blocks = blocks;
        self.entry = entry;
        self.exit = exit;
    }
}

impl Default for Program {
    fn default() -> Program {
        Program::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_program_has_entry_and_exit() {
        let p = Program::new();
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.block(p.entry()).name, "s");
        assert_eq!(p.block(p.exit()).name, "e");
        assert_eq!(p.successors(p.entry()), vec![p.exit()]);
        assert_eq!(p.successors(p.exit()), vec![]);
    }

    #[test]
    fn cfg_view_predecessors_mirror_successors() {
        let mut p = Program::new();
        let exit = p.exit();
        let b = p
            .add_block(Block::new("n1", Terminator::Goto(exit)))
            .unwrap();
        p.block_mut(p.entry()).term = Terminator::Nondet(vec![b, exit]);
        let view = crate::CfgView::new(&p);
        assert_eq!(view.preds(exit), [p.entry(), b]);
        assert_eq!(view.preds(b), [p.entry()]);
        assert!(view.preds(p.entry()).is_empty());
    }

    #[test]
    fn duplicate_block_names_rejected() {
        let mut p = Program::new();
        let exit = p.exit();
        let err = p.add_block(Block::new("s", Terminator::Goto(exit)));
        assert!(matches!(err, Err(IrError::DuplicateBlock(_))));
    }

    #[test]
    fn split_edge_rewires_terminator() {
        let mut p = Program::new();
        let exit = p.exit();
        let entry = p.entry();
        let s = p.split_edge(entry, exit);
        assert_eq!(p.successors(entry), vec![s]);
        assert_eq!(p.successors(s), vec![exit]);
        assert!(p.block(s).is_synthetic());
        assert_eq!(p.block(s).split_of, Some((entry, exit)));
        assert_eq!(p.block(s).name, "S_s_e");
    }

    #[test]
    fn retarget_rewrites_all_matching_successors() {
        let a = NodeId(5);
        let b = NodeId(7);
        let mut t = Terminator::Nondet(vec![a, b, a]);
        t.retarget(a, b);
        assert_eq!(t.successors(), vec![b, b, b]);
    }

    #[test]
    fn counting_helpers() {
        let mut p = Program::new();
        let exit = p.exit();
        let x = p.var("x");
        let one = p.terms_mut().constant(1);
        let mut blk = Block::new("n1", Terminator::Goto(exit));
        blk.stmts.push(Stmt::Assign { lhs: x, rhs: one });
        blk.stmts.push(Stmt::Skip);
        blk.stmts.push(Stmt::Out(one));
        let b = p.add_block(blk).unwrap();
        p.block_mut(p.entry()).term = Terminator::Goto(b);
        assert_eq!(p.num_stmts(), 3);
        assert_eq!(p.num_assignments(), 1);
        assert_eq!(p.max_block_len(), 3);
        assert_eq!(p.block_by_name("n1"), Some(b));
        assert_eq!(p.block_by_name("nope"), None);
    }

    #[test]
    fn changes_since_reports_statement_edits_per_block() {
        let mut p = Program::new();
        let entry = p.entry();
        let rev = p.revision();
        assert_eq!(p.changes_since(rev), Some(ChangeSet::default()));

        p.stmts_mut(entry).push(Stmt::Skip);
        p.stmts_mut(entry).push(Stmt::Skip);
        let cs = p.changes_since(rev).expect("contiguous log");
        assert!(!cs.structural());
        assert_eq!(cs.dirty_blocks(), &[entry]);
        assert!(!cs.is_empty());
    }

    #[test]
    fn changes_since_flags_structural_edits() {
        let mut p = Program::new();
        let rev = p.revision();
        let exit = p.exit();
        p.add_block(Block::new("n1", Terminator::Goto(exit)))
            .unwrap();
        let cs = p.changes_since(rev).expect("contiguous log");
        assert!(cs.structural());

        let rev2 = p.revision();
        p.block_mut(p.entry()).stmts.push(Stmt::Skip);
        assert!(p.changes_since(rev2).expect("logged").structural());
    }

    #[test]
    fn changes_since_falls_back_on_unlogged_revision_moves() {
        let mut p = Program::new();
        let rev = p.revision();
        // Interning a genuinely new variable moves the composite
        // revision without a log entry: the delta must be unavailable.
        p.var("fresh");
        assert_eq!(p.changes_since(rev), None);
        // Future revisions are never explainable.
        assert_eq!(p.changes_since(p.revision() + 1), None);
    }

    #[test]
    fn change_log_is_capped_and_trims_to_cold_fallback() {
        let mut p = Program::new();
        let entry = p.entry();
        let rev = p.revision();
        for _ in 0..(super::CHANGE_LOG_CAP + 8) {
            p.stmts_mut(entry).push(Stmt::Skip);
        }
        // The trimmed prefix is gone, so the oldest snapshot is cold...
        assert_eq!(p.changes_since(rev), None);
        // ...but recent deltas still resolve.
        let recent = p.revision();
        p.stmts_mut(entry).pop();
        let cs = p.changes_since(recent).expect("recent delta survives");
        assert_eq!(cs.dirty_blocks(), &[entry]);
    }

    #[test]
    fn split_edge_logs_structural_change() {
        let mut p = Program::new();
        let (entry, exit) = (p.entry(), p.exit());
        let rev = p.revision();
        p.split_edge(entry, exit);
        assert!(p.changes_since(rev).expect("logged").structural());
    }
}
