//! CFG simplification: undo the scaffolding optimization leaves behind.
//!
//! Critical-edge splitting inserts synthetic blocks; sinking may leave
//! them (and other blocks) empty. This pass cleans up, preserving
//! semantics and per-path assignment counts:
//!
//! 1. **Forwarding removal** — an empty block with a `goto` terminator
//!    is bypassed (predecessors jump directly to its target).
//! 2. **Chain merging** — a block with a unique successor whose unique
//!    predecessor it is absorbs that successor's statements and
//!    terminator.
//! 3. **Unreachable removal** — blocks no longer reachable from the
//!    entry are deleted (indices are compacted).
//!
//! The entry and exit nodes are never removed. Note that re-running the
//! optimizer after simplification may re-split edges that became
//! critical again; the two passes are intentionally separate phases.

use std::collections::HashMap;

use crate::cfg::CfgView;
use crate::program::{NodeId, Program, Terminator};
use crate::validate::reachable_from;

/// Statistics of one simplification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Empty `goto` blocks bypassed.
    pub forwarded: usize,
    /// Straight-line chains merged.
    pub merged: usize,
    /// Unreachable blocks deleted.
    pub removed: usize,
}

/// Simplifies the control-flow graph of `prog` in place.
///
/// # Example
///
/// ```
/// use pdce_ir::{parser::parse, simplify_cfg};
///
/// let mut prog = parse(
///     "prog { block s { goto fwd } block fwd { goto e } block e { halt } }",
/// )?;
/// let stats = simplify_cfg(&mut prog);
/// assert_eq!(stats.forwarded, 1);
/// assert_eq!(prog.num_blocks(), 2);
/// # Ok::<(), pdce_ir::ParseError>(())
/// ```
pub fn simplify_cfg(prog: &mut Program) -> SimplifyStats {
    let mut stats = SimplifyStats::default();
    loop {
        let forwarded = bypass_forwarders(prog);
        let merged = merge_chains(prog);
        stats.forwarded += forwarded;
        stats.merged += merged;
        if forwarded == 0 && merged == 0 {
            break;
        }
    }
    stats.removed = drop_unreachable(prog);
    stats
}

/// Redirects edges around empty `goto` blocks. Returns how many blocks
/// were bypassed.
fn bypass_forwarders(prog: &mut Program) -> usize {
    let mut count = 0;
    loop {
        let mut changed = false;
        for n in prog.node_ids().collect::<Vec<_>>() {
            if n == prog.entry() || n == prog.exit() {
                continue;
            }
            let block = prog.block(n);
            if !block.stmts.is_empty() {
                continue;
            }
            let Terminator::Goto(target) = block.term else {
                continue;
            };
            if target == n {
                continue; // degenerate self-loop
            }
            // Retarget every predecessor of n to the target — except when
            // that would create a new critical-path semantics change:
            // retargeting is always sound here because n is empty.
            let preds: Vec<NodeId> = prog
                .node_ids()
                .filter(|&m| prog.successors(m).contains(&n))
                .collect();
            if preds.is_empty() {
                continue; // unreachable; dropped later
            }
            for m in preds {
                prog.block_mut(m).term.retarget(n, target);
            }
            count += 1;
            changed = true;
        }
        if !changed {
            return count;
        }
    }
}

/// Merges `a → b` when `b` is `a`'s only successor and `a` is `b`'s only
/// predecessor. Returns the number of merges.
fn merge_chains(prog: &mut Program) -> usize {
    let mut count = 0;
    loop {
        let view = CfgView::new(prog);
        let mut merged_one = false;
        for a in prog.node_ids().collect::<Vec<_>>() {
            let Terminator::Goto(b) = prog.block(a).term else {
                continue;
            };
            if b == a || b == prog.entry() || a == prog.exit() {
                continue;
            }
            if view.preds(b).len() != 1 {
                continue;
            }
            // Keep the designated exit block intact unless `a` can take
            // over its role... simplest: never absorb the exit.
            if b == prog.exit() {
                continue;
            }
            let stmts = std::mem::take(&mut prog.block_mut(b).stmts);
            let term = std::mem::replace(&mut prog.block_mut(b).term, Terminator::Goto(b));
            let a_block = prog.block_mut(a);
            a_block.stmts.extend(stmts);
            a_block.term = term;
            count += 1;
            merged_one = true;
            break; // predecessor lists are stale; recompute
        }
        if !merged_one {
            return count;
        }
    }
}

/// Deletes unreachable blocks and compacts indices.
fn drop_unreachable(prog: &mut Program) -> usize {
    let reachable = reachable_from(prog, prog.entry());
    let dead: Vec<NodeId> = prog
        .node_ids()
        .filter(|&n| !reachable[n.index()] && n != prog.exit())
        .collect();
    if dead.is_empty() {
        return 0;
    }
    // Build the compaction map.
    let mut remap: HashMap<NodeId, NodeId> = HashMap::new();
    let mut kept = Vec::new();
    for n in prog.node_ids() {
        if reachable[n.index()] || n == prog.exit() {
            remap.insert(n, NodeId::from_index(kept.len()));
            kept.push(prog.block(n).clone());
        }
    }
    for block in &mut kept {
        match &mut block.term {
            Terminator::Goto(t) => *t = remap[t],
            Terminator::Cond {
                then_to, else_to, ..
            } => {
                *then_to = remap[then_to];
                *else_to = remap[else_to];
            }
            Terminator::Nondet(ts) => {
                for t in ts {
                    *t = remap[t];
                }
            }
            Terminator::Halt => {}
        }
        if let Some((a, b)) = block.split_of {
            block.split_of = match (remap.get(&a), remap.get(&b)) {
                (Some(&a), Some(&b)) => Some((a, b)),
                _ => None,
            };
        }
    }
    let removed = prog.num_blocks() - kept.len();
    let entry = remap[&prog.entry()];
    let exit = remap[&prog.exit()];
    prog.replace_graph(kept, entry, exit);
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_with, ExecLimits};
    use crate::parser::parse;
    use crate::validate::validate;

    #[test]
    fn bypasses_empty_forwarders() {
        let mut p = parse(
            "prog {
               block s { goto f1 }
               block f1 { goto f2 }
               block f2 { goto target }
               block target { out(1); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let stats = simplify_cfg(&mut p);
        assert!(stats.forwarded >= 2);
        assert!(stats.removed >= 1);
        assert_eq!(validate(&p), Ok(()));
        let t = run_with(&p, &[], vec![], ExecLimits::default());
        assert_eq!(t.outputs, vec![1]);
    }

    #[test]
    fn merges_straight_line_chains() {
        let mut p = parse(
            "prog {
               block s { goto a }
               block a { x := 1; goto b }
               block b { y := x + 1; goto c }
               block c { out(y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let before = run_with(&p, &[], vec![], ExecLimits::default());
        let stats = simplify_cfg(&mut p);
        assert!(stats.merged >= 2);
        assert_eq!(validate(&p), Ok(()));
        let after = run_with(&p, &[], vec![], ExecLimits::default());
        assert_eq!(before.outputs, after.outputs);
        // All three statements now live in one block.
        assert_eq!(p.max_block_len(), 3);
    }

    #[test]
    fn keeps_branch_structure() {
        let src = "prog {
            block s { nondet l r }
            block l { out(1); goto j }
            block r { out(2); goto j }
            block j { goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        simplify_cfg(&mut p);
        assert_eq!(validate(&p), Ok(()));
        // The diamond survives; only j may merge into nothing (it has
        // two predecessors, so it stays).
        assert_eq!(p.successors(p.entry()).len(), 2);
        for d in [vec![0], vec![1]] {
            let t0 = run_with(&parse(src).unwrap(), &[], d.clone(), ExecLimits::default());
            let t1 = run_with(&p, &[], d, ExecLimits::default());
            assert_eq!(t0.outputs, t1.outputs);
        }
    }

    #[test]
    fn cleans_up_after_pde_style_splitting() {
        // Split a critical edge, then "optimize away" the reason for the
        // split; simplify removes the leftover synthetic node.
        let mut p = parse(
            "prog {
               block s { nondet a j }
               block a { goto j }
               block j { out(1); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        crate::edgesplit::split_critical_edges(&mut p);
        assert!(p.block_by_name("S_s_j").is_some());
        let stats = simplify_cfg(&mut p);
        assert!(stats.forwarded >= 1);
        assert!(p.block_by_name("S_s_j").is_none());
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn self_loops_survive() {
        let src = "prog {
            block s { goto l }
            block l { x := x + 1; nondet l d }
            block d { out(x); goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        simplify_cfg(&mut p);
        assert_eq!(validate(&p), Ok(()));
        let l = p.block_by_name("l").unwrap();
        assert!(p.successors(l).contains(&l));
    }

    #[test]
    fn empty_program_collapses_to_two_blocks() {
        let mut p = parse(
            "prog {
               block s { goto a }
               block a { goto b }
               block b { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        simplify_cfg(&mut p);
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(p.num_blocks(), 2);
    }

    #[test]
    fn idempotent() {
        let mut p = parse(
            "prog {
               block s { goto a }
               block a { x := 1; goto b }
               block b { out(x); nondet a2 e2 }
               block a2 { goto b2 }
               block b2 { goto e2 }
               block e2 { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        simplify_cfg(&mut p);
        let first = crate::printer::canonical_string(&p);
        let stats = simplify_cfg(&mut p);
        assert_eq!(stats, SimplifyStats::default());
        assert_eq!(crate::printer::canonical_string(&p), first);
    }
}
