//! Statements: assignments, `skip`, and relevant statements (`out`).
//!
//! This is exactly the statement classification of Section 2 of the paper:
//! assignment statements `v := t`, the empty statement `skip`, and relevant
//! statements `out(t)` that force all their operands to be live.

use crate::term::{TermArena, TermId};
use crate::var::Var;

/// A single statement inside a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// The empty statement.
    Skip,
    /// Assignment `lhs := rhs`.
    Assign {
        /// Left-hand-side variable (written).
        lhs: Var,
        /// Right-hand-side term (read).
        rhs: TermId,
    },
    /// Relevant statement `out(t)`: observable output of `t`'s value.
    Out(TermId),
}

impl Stmt {
    /// The variable this statement modifies, if any (`MOD` of Table 1).
    pub fn modified(&self) -> Option<Var> {
        match *self {
            Stmt::Assign { lhs, .. } => Some(lhs),
            Stmt::Skip | Stmt::Out(_) => None,
        }
    }

    /// The term this statement reads, if any.
    pub fn used_term(&self) -> Option<TermId> {
        match *self {
            Stmt::Assign { rhs, .. } => Some(rhs),
            Stmt::Out(t) => Some(t),
            Stmt::Skip => None,
        }
    }

    /// Whether `v` occurs on the right-hand side (`USED` of Table 1).
    pub fn uses(&self, arena: &TermArena, v: Var) -> bool {
        self.used_term().is_some_and(|t| arena.term_uses(t, v))
    }

    /// Whether `v` is used by a *relevant* statement here (`RELV-USED`).
    pub fn relv_uses(&self, arena: &TermArena, v: Var) -> bool {
        match *self {
            Stmt::Out(t) => arena.term_uses(t, v),
            _ => false,
        }
    }

    /// Whether `v` is a right-hand-side variable of an *assignment*
    /// (`ASS-USED` of Table 1).
    pub fn ass_uses(&self, arena: &TermArena, v: Var) -> bool {
        match *self {
            Stmt::Assign { rhs, .. } => arena.term_uses(rhs, v),
            _ => false,
        }
    }

    /// Whether this statement is an assignment.
    pub fn is_assignment(&self) -> bool {
        matches!(self, Stmt::Assign { .. })
    }

    /// Whether this statement is relevant (observable).
    pub fn is_relevant(&self) -> bool {
        matches!(self, Stmt::Out(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::BinOp;
    use crate::var::VarPool;

    #[test]
    fn classification_predicates() {
        let mut vars = VarPool::new();
        let mut arena = TermArena::new();
        let x = vars.intern("x");
        let a = vars.intern("a");
        let ta = arena.var(a);
        let one = arena.constant(1);
        let rhs = arena.binary(BinOp::Add, ta, one);

        let assign = Stmt::Assign { lhs: x, rhs };
        assert_eq!(assign.modified(), Some(x));
        assert!(assign.uses(&arena, a));
        assert!(!assign.uses(&arena, x));
        assert!(assign.ass_uses(&arena, a));
        assert!(!assign.relv_uses(&arena, a));
        assert!(assign.is_assignment());
        assert!(!assign.is_relevant());

        let out = Stmt::Out(rhs);
        assert_eq!(out.modified(), None);
        assert!(out.uses(&arena, a));
        assert!(out.relv_uses(&arena, a));
        assert!(!out.ass_uses(&arena, a));
        assert!(out.is_relevant());

        let skip = Stmt::Skip;
        assert_eq!(skip.modified(), None);
        assert_eq!(skip.used_term(), None);
        assert!(!skip.uses(&arena, a));
    }
}
