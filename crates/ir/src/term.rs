//! Terms (right-hand-side expressions) and the hash-consing term arena.
//!
//! Terms are interned: structurally equal terms receive the same [`TermId`]
//! within a program. This makes assignment-pattern equality (`x := t`,
//! Section 2 of the paper) an O(1) comparison and gives dense indices for
//! the bit-vector analyses.

use std::collections::HashMap;
use std::fmt;

use crate::var::Var;

/// Binary operators usable in terms.
///
/// Comparison and logical operators evaluate to `0` or `1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Division; division by zero yields `0` (total semantics, see
    /// `interp`).
    Div,
    /// Remainder; remainder by zero yields `0`.
    Mod,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Disequality.
    Ne,
    /// Logical conjunction (operands are truthy iff nonzero).
    And,
    /// Logical disjunction.
    Or,
}

impl BinOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Binding strength used by the pretty-printer; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Unary operators usable in terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnOp {
    /// Wrapping negation.
    Neg,
    /// Logical negation (`!0 == 1`, `!nonzero == 0`).
    Not,
}

impl UnOp {
    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "!",
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Handle to an interned term inside a [`TermArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub(crate) u32);

impl TermId {
    /// Dense index of the term within its arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Structure of a term. Children are [`TermId`]s into the same arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermData {
    /// Integer literal.
    Const(i64),
    /// Variable reference.
    Var(Var),
    /// Unary application.
    Unary(UnOp, TermId),
    /// Binary application.
    Binary(BinOp, TermId, TermId),
}

/// Hash-consing arena of terms.
///
/// Structurally equal terms are interned to the same [`TermId`]. For every
/// term the arena caches its sorted set of occurring variables, which the
/// local-predicate computations (`USED`, `MOD` of an operand, Table 1/2 of
/// the paper) query constantly.
#[derive(Debug, Clone, Default)]
pub struct TermArena {
    data: Vec<TermData>,
    vars_of: Vec<Box<[Var]>>,
    dedup: HashMap<TermData, TermId>,
}

impl TermArena {
    /// Creates an empty arena.
    pub fn new() -> TermArena {
        TermArena::default()
    }

    /// Interns `data`, returning the existing id for structurally equal terms.
    ///
    /// # Panics
    ///
    /// Panics if a child [`TermId`] does not belong to this arena.
    pub fn intern(&mut self, data: TermData) -> TermId {
        if let Some(&id) = self.dedup.get(&data) {
            return id;
        }
        let vars: Box<[Var]> = match data {
            TermData::Const(_) => Box::new([]),
            TermData::Var(v) => Box::new([v]),
            TermData::Unary(_, a) => self.vars_of(a).into(),
            TermData::Binary(_, a, b) => {
                let mut vs: Vec<Var> = self.vars_of(a).to_vec();
                vs.extend_from_slice(self.vars_of(b));
                vs.sort_unstable();
                vs.dedup();
                vs.into_boxed_slice()
            }
        };
        let id = TermId(u32::try_from(self.data.len()).expect("too many terms"));
        self.data.push(data);
        self.vars_of.push(vars);
        self.dedup.insert(data, id);
        id
    }

    /// Convenience: intern an integer constant.
    pub fn constant(&mut self, value: i64) -> TermId {
        self.intern(TermData::Const(value))
    }

    /// Convenience: intern a variable reference.
    pub fn var(&mut self, v: Var) -> TermId {
        self.intern(TermData::Var(v))
    }

    /// Convenience: intern a binary application.
    pub fn binary(&mut self, op: BinOp, a: TermId, b: TermId) -> TermId {
        self.intern(TermData::Binary(op, a, b))
    }

    /// Convenience: intern a unary application.
    pub fn unary(&mut self, op: UnOp, a: TermId) -> TermId {
        self.intern(TermData::Unary(op, a))
    }

    /// Returns the structure of `id`.
    pub fn data(&self, id: TermId) -> TermData {
        self.data[id.index()]
    }

    /// Sorted, deduplicated set of variables occurring in `id`.
    pub fn vars_of(&self, id: TermId) -> &[Var] {
        &self.vars_of[id.index()]
    }

    /// Whether variable `v` occurs in term `id`.
    pub fn term_uses(&self, id: TermId, v: Var) -> bool {
        self.vars_of(id).binary_search(&v).is_ok()
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size (number of operators and atoms) of term `id`.
    pub fn size(&self, id: TermId) -> usize {
        match self.data(id) {
            TermData::Const(_) | TermData::Var(_) => 1,
            TermData::Unary(_, a) => 1 + self.size(a),
            TermData::Binary(_, a, b) => 1 + self.size(a) + self.size(b),
        }
    }

    /// Copies term `id` from arena `other` into `self`, returning the new id.
    pub fn import(&mut self, other: &TermArena, id: TermId) -> TermId {
        match other.data(id) {
            d @ (TermData::Const(_) | TermData::Var(_)) => self.intern(d),
            TermData::Unary(op, a) => {
                let a = self.import(other, a);
                self.intern(TermData::Unary(op, a))
            }
            TermData::Binary(op, a, b) => {
                let a = self.import(other, a);
                let b = self.import(other, b);
                self.intern(TermData::Binary(op, a, b))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::VarPool;

    fn setup() -> (VarPool, TermArena) {
        (VarPool::new(), TermArena::new())
    }

    #[test]
    fn interning_dedups_structurally() {
        let (mut vars, mut arena) = setup();
        let a = vars.intern("a");
        let b = vars.intern("b");
        let ta = arena.var(a);
        let tb = arena.var(b);
        let s1 = arena.binary(BinOp::Add, ta, tb);
        let s2 = arena.binary(BinOp::Add, ta, tb);
        assert_eq!(s1, s2);
        let s3 = arena.binary(BinOp::Add, tb, ta);
        assert_ne!(s1, s3, "a+b and b+a are distinct terms");
    }

    #[test]
    fn vars_of_is_sorted_union() {
        let (mut vars, mut arena) = setup();
        let a = vars.intern("a");
        let b = vars.intern("b");
        let c = vars.intern("c");
        let ta = arena.var(a);
        let tb = arena.var(b);
        let tc = arena.var(c);
        let t1 = arena.binary(BinOp::Mul, tc, tb);
        let t2 = arena.binary(BinOp::Add, t1, ta);
        assert_eq!(arena.vars_of(t2), &[a, b, c]);
        assert!(arena.term_uses(t2, a));
        let konst = arena.constant(7);
        assert!(!arena.term_uses(konst, a));
    }

    #[test]
    fn vars_of_dedups() {
        let (mut vars, mut arena) = setup();
        let x = vars.intern("x");
        let tx = arena.var(x);
        let t = arena.binary(BinOp::Add, tx, tx);
        assert_eq!(arena.vars_of(t), &[x]);
    }

    #[test]
    fn size_counts_nodes() {
        let (mut vars, mut arena) = setup();
        let x = vars.intern("x");
        let tx = arena.var(x);
        let one = arena.constant(1);
        let t = arena.binary(BinOp::Add, tx, one);
        let t2 = arena.unary(UnOp::Neg, t);
        assert_eq!(arena.size(t2), 4);
    }

    #[test]
    fn import_copies_across_arenas() {
        let (mut vars, mut arena) = setup();
        let x = vars.intern("x");
        let tx = arena.var(x);
        let one = arena.constant(1);
        let t = arena.binary(BinOp::Add, tx, one);

        let mut other = TermArena::new();
        let imported = other.import(&arena, t);
        assert_eq!(other.data(imported), {
            let txo = other.var(x);
            let oneo = other.constant(1);
            TermData::Binary(BinOp::Add, txo, oneo)
        });
    }

    #[test]
    fn precedence_ordering() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Lt.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::And.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }
}
