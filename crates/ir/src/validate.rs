//! Well-formedness checks for programs.
//!
//! Section 2 of the paper assumes: a unique start node `s` with no
//! predecessors, a unique end node `e` with no successors, and that every
//! node lies on some path from `s` to `e`. [`validate`] enforces exactly
//! these conditions plus basic structural sanity.

use crate::cfg::CfgView;
use crate::error::IrError;
use crate::program::{NodeId, Program, Terminator};

/// Checks the paper's flow-graph well-formedness conditions.
///
/// # Errors
///
/// Returns the first violated condition as an [`IrError`].
pub fn validate(prog: &Program) -> Result<(), IrError> {
    // Exactly one halt, and it is the designated exit.
    let halts: Vec<NodeId> = prog
        .node_ids()
        .filter(|&n| matches!(prog.block(n).term, Terminator::Halt))
        .collect();
    if halts.len() != 1 {
        return Err(IrError::ExitCount(halts.len()));
    }
    if halts[0] != prog.exit() {
        return Err(IrError::BadExit);
    }

    // Nondet terminators must have at least one target.
    for n in prog.node_ids() {
        if let Terminator::Nondet(targets) = &prog.block(n).term {
            if targets.is_empty() {
                return Err(IrError::EmptyNondet(prog.block(n).name.clone()));
            }
        }
    }

    // Entry has no predecessors.
    let view = CfgView::new(prog);
    if !view.preds(prog.entry()).is_empty() {
        return Err(IrError::EntryHasPredecessors);
    }

    // Every node is reachable from the entry...
    let reachable = reachable_from(prog, prog.entry());
    for n in prog.node_ids() {
        if !reachable[n.index()] {
            return Err(IrError::Unreachable(prog.block(n).name.clone()));
        }
    }

    // ...and can reach the exit.
    let reaches_exit = reaches(&view, prog.exit());
    for n in prog.node_ids() {
        if !reaches_exit[n.index()] {
            return Err(IrError::CannotReachExit(prog.block(n).name.clone()));
        }
    }
    Ok(())
}

/// Forward reachability from `start`, as a dense boolean vector.
pub fn reachable_from(prog: &Program, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; prog.num_blocks()];
    let mut stack = vec![start];
    seen[start.index()] = true;
    while let Some(n) = stack.pop() {
        for m in prog.successors(n) {
            if !seen[m.index()] {
                seen[m.index()] = true;
                stack.push(m);
            }
        }
    }
    seen
}

/// Backward reachability: which nodes can reach `target`, walking the
/// predecessor slabs of `view`.
pub fn reaches(view: &CfgView, target: NodeId) -> Vec<bool> {
    let mut seen = vec![false; view.num_nodes()];
    let mut stack = vec![target];
    seen[target.index()] = true;
    while let Some(n) = stack.pop() {
        for &m in view.preds(n) {
            if !seen[m.index()] {
                seen[m.index()] = true;
                stack.push(m);
            }
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unvalidated;

    #[test]
    fn accepts_well_formed_program() {
        let p = parse_unvalidated(
            "prog {
               block s { nondet a b }
               block a { goto e }
               block b { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn rejects_entry_with_predecessors() {
        let p = parse_unvalidated("prog { block s { nondet s e } block e { halt } }").unwrap();
        assert_eq!(validate(&p), Err(IrError::EntryHasPredecessors));
    }

    #[test]
    fn rejects_node_that_cannot_reach_exit() {
        let p = parse_unvalidated(
            "prog {
               block s { nondet trap e }
               block trap { goto trap2 }
               block trap2 { goto trap }
               block e { halt }
             }",
        )
        .unwrap();
        assert!(matches!(validate(&p), Err(IrError::CannotReachExit(_))));
    }

    #[test]
    fn rejects_unreachable_node() {
        let p = parse_unvalidated(
            "prog {
               block s { goto e }
               block island { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(validate(&p), Err(IrError::Unreachable("island".into())));
    }

    #[test]
    fn reachability_helpers() {
        let p = parse_unvalidated(
            "prog {
               block s { nondet a e }
               block a { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let r = reachable_from(&p, p.block_by_name("a").unwrap());
        assert!(!r[p.entry().index()]);
        assert!(r[p.exit().index()]);
    }
}
