//! Program variables and the per-program variable pool.

use std::collections::HashMap;
use std::fmt;

/// A program variable, represented as a dense index into a [`VarPool`].
///
/// Dense indices let analyses use bit-vectors over variables directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Returns the dense index of this variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a variable from a dense index.
    ///
    /// Meaningful only together with the [`VarPool`] that assigned the index.
    pub fn from_index(index: usize) -> Var {
        Var(u32::try_from(index).expect("variable index overflow"))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Interner mapping variable names to dense [`Var`] indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarPool {
    names: Vec<String>,
    index: HashMap<String, Var>,
}

impl VarPool {
    /// Creates an empty pool.
    pub fn new() -> VarPool {
        VarPool::default()
    }

    /// Interns `name`, returning the existing variable if already present.
    pub fn intern(&mut self, name: &str) -> Var {
        if let Some(&v) = self.index.get(name) {
            return v;
        }
        let v = Var(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), v);
        v
    }

    /// Looks up a variable by name without interning.
    pub fn lookup(&self, name: &str) -> Option<Var> {
        self.index.get(name).copied()
    }

    /// Returns the name of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this pool.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Number of distinct variables interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variable has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all variables in index order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len()).map(|i| Var(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut pool = VarPool::new();
        let a = pool.intern("a");
        let b = pool.intern("b");
        assert_ne!(a, b);
        assert_eq!(pool.intern("a"), a);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.name(a), "a");
        assert_eq!(pool.lookup("b"), Some(b));
        assert_eq!(pool.lookup("zz"), None);
    }

    #[test]
    fn iter_yields_in_index_order() {
        let mut pool = VarPool::new();
        let vars: Vec<Var> = ["x", "y", "z"].iter().map(|n| pool.intern(n)).collect();
        assert_eq!(pool.iter().collect::<Vec<_>>(), vars);
    }

    #[test]
    fn indices_are_dense() {
        let mut pool = VarPool::new();
        for i in 0..100 {
            let v = pool.intern(&format!("v{i}"));
            assert_eq!(v.index(), i);
            assert_eq!(Var::from_index(i), v);
        }
    }
}
