//! Property tests: random term trees survive print → parse unchanged,
//! and the parser/lexer never panic on arbitrary input.

use pdce_ir::printer::print_stmt;
use pdce_ir::{parser, Program, Stmt, TermData};
use proptest::prelude::*;

/// A recipe for building a random term in a fresh program.
#[derive(Debug, Clone)]
enum TermRecipe {
    Const(i64),
    Var(u8),
    Unary(pdce_ir::UnOp, Box<TermRecipe>),
    Binary(pdce_ir::BinOp, Box<TermRecipe>, Box<TermRecipe>),
}

fn recipe() -> impl Strategy<Value = TermRecipe> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(TermRecipe::Const),
        (0u8..5).prop_map(TermRecipe::Var),
    ];
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            (unop(), inner.clone()).prop_map(|(op, a)| TermRecipe::Unary(op, Box::new(a))),
            (binop(), inner.clone(), inner)
                .prop_map(|(op, a, b)| TermRecipe::Binary(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn unop() -> impl Strategy<Value = pdce_ir::UnOp> {
    prop_oneof![Just(pdce_ir::UnOp::Neg), Just(pdce_ir::UnOp::Not)]
}

fn binop() -> impl Strategy<Value = pdce_ir::BinOp> {
    use pdce_ir::BinOp::*;
    prop_oneof![
        Just(Add),
        Just(Sub),
        Just(Mul),
        Just(Div),
        Just(Mod),
        Just(Lt),
        Just(Le),
        Just(Gt),
        Just(Ge),
        Just(Eq),
        Just(Ne),
        Just(And),
        Just(Or),
    ]
}

fn build(prog: &mut Program, r: &TermRecipe) -> pdce_ir::TermId {
    match r {
        TermRecipe::Const(c) => prog.terms_mut().constant(*c),
        TermRecipe::Var(i) => {
            let v = prog.var(&format!("v{i}"));
            prog.terms_mut().var(v)
        }
        TermRecipe::Unary(op, a) => {
            let a = build(prog, a);
            prog.terms_mut().unary(*op, a)
        }
        TermRecipe::Binary(op, a, b) => {
            let a = build(prog, a);
            let b = build(prog, b);
            prog.terms_mut().binary(*op, a, b)
        }
    }
}

fn terms_equal(pa: &Program, ta: pdce_ir::TermId, pb: &Program, tb: pdce_ir::TermId) -> bool {
    match (pa.terms().data(ta), pb.terms().data(tb)) {
        (TermData::Const(x), TermData::Const(y)) => x == y,
        (TermData::Var(x), TermData::Var(y)) => pa.vars().name(x) == pb.vars().name(y),
        (TermData::Unary(opa, a), TermData::Unary(opb, b)) => {
            opa == opb && terms_equal(pa, a, pb, b)
        }
        (TermData::Binary(opa, a1, a2), TermData::Binary(opb, b1, b2)) => {
            opa == opb && terms_equal(pa, a1, pb, b1) && terms_equal(pa, a2, pb, b2)
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The printer's minimal parenthesization must reparse to the same
    /// tree (precedence and associativity handled exactly).
    #[test]
    fn printed_terms_reparse_identically(r in recipe()) {
        let mut prog = Program::new();
        let t = build(&mut prog, &r);
        let x = prog.var("roundtrip_lhs");
        let stmt = Stmt::Assign { lhs: x, rhs: t };
        let printed = print_stmt(&prog, &stmt);

        let src = format!(
            "prog {{ block s {{ {printed}; goto e }} block e {{ halt }} }}"
        );
        let reparsed = parser::parse(&src).unwrap();
        let Stmt::Assign { rhs, .. } = reparsed.block(reparsed.entry()).stmts[0] else {
            panic!("expected assignment");
        };
        prop_assert!(
            terms_equal(&prog, t, &reparsed, rhs),
            "printed `{printed}` reparsed differently"
        );
    }

    /// Parsing arbitrary garbage never panics.
    #[test]
    fn parser_never_panics(input in "\\PC{0,120}") {
        let _ = parser::parse(&input);
    }

    /// Lexing arbitrary ASCII never panics.
    #[test]
    fn lexer_never_panics(input in "[ -~]{0,200}") {
        let _ = pdce_ir::lexer::lex(&input);
    }
}
