//! Property tests: random term trees survive print → parse unchanged,
//! and the parser/lexer never panic on arbitrary input. Driven by the
//! workspace's deterministic seeded generator (`pdce-rng`).

use pdce_ir::printer::print_stmt;
use pdce_ir::{parser, Program, Stmt, TermData};
use pdce_rng::Rng;

/// A recipe for building a random term in a fresh program.
#[derive(Debug, Clone)]
enum TermRecipe {
    Const(i64),
    Var(u8),
    Unary(pdce_ir::UnOp, Box<TermRecipe>),
    Binary(pdce_ir::BinOp, Box<TermRecipe>, Box<TermRecipe>),
}

fn gen_recipe(rng: &mut Rng, depth: usize) -> TermRecipe {
    let leaf = depth == 0 || rng.gen_bool(0.3);
    if leaf {
        if rng.gen_bool(0.5) {
            TermRecipe::Const(rng.gen_range_i64(-50, 50))
        } else {
            TermRecipe::Var(rng.gen_range(0, 5) as u8)
        }
    } else if rng.gen_bool(0.25) {
        let op = *rng.choose(&[pdce_ir::UnOp::Neg, pdce_ir::UnOp::Not]);
        TermRecipe::Unary(op, Box::new(gen_recipe(rng, depth - 1)))
    } else {
        use pdce_ir::BinOp::*;
        let op = *rng.choose(&[Add, Sub, Mul, Div, Mod, Lt, Le, Gt, Ge, Eq, Ne, And, Or]);
        TermRecipe::Binary(
            op,
            Box::new(gen_recipe(rng, depth - 1)),
            Box::new(gen_recipe(rng, depth - 1)),
        )
    }
}

fn build(prog: &mut Program, r: &TermRecipe) -> pdce_ir::TermId {
    match r {
        TermRecipe::Const(c) => prog.terms_mut().constant(*c),
        TermRecipe::Var(i) => {
            let v = prog.var(&format!("v{i}"));
            prog.terms_mut().var(v)
        }
        TermRecipe::Unary(op, a) => {
            let a = build(prog, a);
            prog.terms_mut().unary(*op, a)
        }
        TermRecipe::Binary(op, a, b) => {
            let a = build(prog, a);
            let b = build(prog, b);
            prog.terms_mut().binary(*op, a, b)
        }
    }
}

fn terms_equal(pa: &Program, ta: pdce_ir::TermId, pb: &Program, tb: pdce_ir::TermId) -> bool {
    match (pa.terms().data(ta), pb.terms().data(tb)) {
        (TermData::Const(x), TermData::Const(y)) => x == y,
        (TermData::Var(x), TermData::Var(y)) => pa.vars().name(x) == pb.vars().name(y),
        (TermData::Unary(opa, a), TermData::Unary(opb, b)) => {
            opa == opb && terms_equal(pa, a, pb, b)
        }
        (TermData::Binary(opa, a1, a2), TermData::Binary(opb, b1, b2)) => {
            opa == opb && terms_equal(pa, a1, pb, b1) && terms_equal(pa, a2, pb, b2)
        }
        _ => false,
    }
}

/// The printer's minimal parenthesization must reparse to the same tree
/// (precedence and associativity handled exactly).
#[test]
fn printed_terms_reparse_identically() {
    let mut rng = Rng::new(0x7e52_0001);
    for _ in 0..256 {
        let r = gen_recipe(&mut rng, 5);
        let mut prog = Program::new();
        let t = build(&mut prog, &r);
        let x = prog.var("roundtrip_lhs");
        let stmt = Stmt::Assign { lhs: x, rhs: t };
        let printed = print_stmt(&prog, &stmt);

        let src = format!("prog {{ block s {{ {printed}; goto e }} block e {{ halt }} }}");
        let reparsed = parser::parse(&src).unwrap();
        let Stmt::Assign { rhs, .. } = reparsed.block(reparsed.entry()).stmts[0] else {
            panic!("expected assignment");
        };
        assert!(
            terms_equal(&prog, t, &reparsed, rhs),
            "printed `{printed}` reparsed differently"
        );
    }
}

/// Random printable garbage, with a bias towards the language's own
/// tokens so the parser gets past the lexer often enough to matter.
fn garbage(rng: &mut Rng, max_len: usize) -> String {
    const TOKENS: &[&str] = &[
        "prog", "block", "goto", "halt", "out", "nondet", "if", "then", "else", "skip", ":=", "{",
        "}", "(", ")", ";", "+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||",
        "!", "x", "y", "v0", "s", "e", "12", "-3",
    ];
    let len = rng.gen_range(0, max_len + 1);
    let mut out = String::new();
    for _ in 0..len {
        if rng.gen_bool(0.5) {
            let tok = *rng.choose(TOKENS);
            out.push_str(tok);
        } else {
            // Arbitrary printable ASCII (and occasional multi-byte).
            let c = if rng.gen_bool(0.9) {
                char::from(rng.gen_range(0x20, 0x7f) as u8)
            } else {
                *rng.choose(&['λ', 'ß', '∀', '🦀'])
            };
            out.push(c);
        }
        if rng.gen_bool(0.3) {
            out.push(' ');
        }
    }
    out
}

/// Parsing arbitrary garbage never panics.
#[test]
fn parser_never_panics() {
    let mut rng = Rng::new(0x7e52_0002);
    for _ in 0..512 {
        let input = garbage(&mut rng, 60);
        let _ = parser::parse(&input);
    }
}

/// Lexing arbitrary ASCII never panics.
#[test]
fn lexer_never_panics() {
    let mut rng = Rng::new(0x7e52_0003);
    for _ in 0..512 {
        let len = rng.gen_range(0, 201);
        let input: String = (0..len)
            .map(|_| char::from(rng.gen_range(0x20, 0x7f) as u8))
            .collect();
        let _ = pdce_ir::lexer::lex(&input);
    }
}
