//! Candidate expressions and their local predicates.
//!
//! Lazy code motion operates on *computations*: non-atomic terms
//! occurring as an assignment right-hand side, an `out` argument, or a
//! branch condition. For each candidate expression and block we compute
//! the classical local predicates:
//!
//! * `ANTLOC` — computed in the block before any operand modification,
//! * `COMP`   — computed in the block after the last operand
//!   modification (locally available at the exit),
//! * `TRANSP` — no operand modified in the block.

use std::collections::HashMap;

use pdce_dfa::BitVec;
use pdce_ir::{Program, TermData, TermId};

/// Dense table of candidate expressions.
#[derive(Debug, Clone)]
pub struct ExprTable {
    exprs: Vec<TermId>,
    index: HashMap<TermId, usize>,
}

impl ExprTable {
    /// Collects every non-atomic computed term of `prog`.
    pub fn build(prog: &Program) -> ExprTable {
        let mut exprs = Vec::new();
        let mut index = HashMap::new();
        let mut add = |t: TermId, prog: &Program| {
            if matches!(
                prog.terms().data(t),
                TermData::Unary(..) | TermData::Binary(..)
            ) && !index.contains_key(&t)
            {
                index.insert(t, exprs.len());
                exprs.push(t);
            }
        };
        for n in prog.node_ids() {
            for stmt in &prog.block(n).stmts {
                if let Some(t) = stmt.used_term() {
                    add(t, prog);
                }
            }
            if let Some(c) = prog.block(n).term.used_term() {
                add(c, prog);
            }
        }
        ExprTable { exprs, index }
    }

    /// Number of candidate expressions.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Whether there are no candidates.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// The term at `index`.
    pub fn expr(&self, index: usize) -> TermId {
        self.exprs[index]
    }

    /// Index of term `t` if it is a candidate.
    pub fn index_of(&self, t: TermId) -> Option<usize> {
        self.index.get(&t).copied()
    }
}

/// Per-block local predicates for every candidate expression.
#[derive(Debug, Clone)]
pub struct ExprLocal {
    /// `ANTLOC_n` per block.
    pub antloc: Vec<BitVec>,
    /// `COMP_n` per block.
    pub comp: Vec<BitVec>,
    /// `TRANSP_n` per block.
    pub transp: Vec<BitVec>,
}

impl ExprLocal {
    /// Computes the predicates for all blocks.
    pub fn compute(prog: &Program, table: &ExprTable) -> ExprLocal {
        let width = table.len();
        let nblocks = prog.num_blocks();
        let mut antloc = vec![BitVec::zeros(width); nblocks];
        let mut comp = vec![BitVec::zeros(width); nblocks];
        let mut transp = vec![BitVec::ones(width); nblocks];

        for n in prog.node_ids() {
            let block = prog.block(n);
            // Forward scan: ANTLOC and TRANSP.
            let mut clean = BitVec::ones(width); // no operand modified yet
            for stmt in &block.stmts {
                if let Some(t) = stmt.used_term() {
                    if let Some(i) = table.index_of(t) {
                        if clean.get(i) {
                            antloc[n.index()].set(i, true);
                        }
                    }
                }
                if let Some(m) = stmt.modified() {
                    for i in 0..width {
                        if prog.terms().term_uses(table.expr(i), m) {
                            clean.set(i, false);
                            transp[n.index()].set(i, false);
                        }
                    }
                }
            }
            // Conditions are computed after all statements.
            if let Some(c) = prog.block(n).term.used_term() {
                if let Some(i) = table.index_of(c) {
                    if clean.get(i) {
                        antloc[n.index()].set(i, true);
                    }
                    // Computed at the very end: always locally available.
                    comp[n.index()].set(i, true);
                }
            }
            // Backward scan: COMP.
            let mut clean = BitVec::ones(width); // no operand modified after
            for stmt in block.stmts.iter().rev() {
                if let Some(t) = stmt.used_term() {
                    if let Some(i) = table.index_of(t) {
                        if clean.get(i) {
                            comp[n.index()].set(i, true);
                        }
                    }
                }
                if let Some(m) = stmt.modified() {
                    for i in 0..width {
                        if prog.terms().term_uses(table.expr(i), m) {
                            clean.set(i, false);
                        }
                    }
                }
            }
        }
        ExprLocal {
            antloc,
            comp,
            transp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;
    use pdce_ir::Stmt;

    #[test]
    fn collects_only_composite_terms() {
        let p = parse(
            "prog { block s { x := a + b; y := a; out(x * y); if y < 1 then t else e } block t { goto e } block e { halt } }",
        )
        .unwrap();
        let t = ExprTable::build(&p);
        // a+b, x*y, y<1 — but not bare `a`.
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn local_predicates_on_mixed_block() {
        // Block: y := a+b; a := 1; z := a+b
        let p = parse(
            "prog { block s { y := a + b; a := 1; z := a + b; out(z + y); goto e } block e { halt } }",
        )
        .unwrap();
        let t = ExprTable::build(&p);
        let l = ExprLocal::compute(&p, &t);
        let ab = {
            let Stmt::Assign { rhs, .. } = p.block(p.entry()).stmts[0] else {
                unreachable!()
            };
            t.index_of(rhs).unwrap()
        };
        let s = p.entry().index();
        assert!(l.antloc[s].get(ab), "first a+b precedes the mod of a");
        assert!(l.comp[s].get(ab), "second a+b follows the mod of a");
        assert!(!l.transp[s].get(ab), "a := 1 kills transparency");
    }

    #[test]
    fn transparent_block_neither_computes_nor_kills() {
        let p = parse(
            "prog {
               block s { x := a + b; goto m }
               block m { c := 1; goto f }
               block f { out(a + b); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let t = ExprTable::build(&p);
        let l = ExprLocal::compute(&p, &t);
        let m = p.block_by_name("m").unwrap().index();
        let ab = 0;
        assert!(!l.antloc[m].get(ab));
        assert!(!l.comp[m].get(ab));
        assert!(l.transp[m].get(ab));
    }

    #[test]
    fn condition_is_locally_available_at_exit() {
        let p = parse(
            "prog {
               block s { if a + b < 3 then t else e }
               block t { goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let t = ExprTable::build(&p);
        let l = ExprLocal::compute(&p, &t);
        let cidx = t
            .index_of(p.block(p.entry()).term.used_term().unwrap())
            .unwrap();
        let s = p.entry().index();
        assert!(l.antloc[s].get(cidx));
        assert!(l.comp[s].get(cidx));
    }
}
