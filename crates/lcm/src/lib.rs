//! Lazy code motion (partial redundancy elimination) — the dual
//! transformation the PDCE paper builds on conceptually.
//!
//! PRE hoists *computations* against the control flow to make their
//! results as universally available as possible; PDCE sinks *assignments*
//! with the flow to make them as specifically needed as possible
//! (Section 1 of the paper). This crate provides the classical lazy code
//! motion of Knoop/Rüthing/Steffen '92 in the Drechsler–Stadel block
//! formulation, used here to
//!
//! * reproduce the Related-Work claim around Figure 6 (naive sinking
//!   into a loop cannot be repaired by a subsequent PRE for safety
//!   reasons), and
//! * exercise the `pdce-dfa` framework with a second full client.

pub mod exprs;
pub mod passes;
pub mod transform;

pub use exprs::{ExprLocal, ExprTable};
pub use passes::LcmPass;
pub use transform::{lazy_code_motion, lazy_code_motion_cached, LcmCriticalEdgeError, LcmStats};
