//! [`Pass`] adapter for lazy code motion, so PRE composes in the
//! workspace-wide pass pipeline alongside `pde`/`pfe` and the baselines.

use pdce_dfa::{AnalysisCache, Pass, PassOutcome, Preserves};
use pdce_ir::edgesplit::{has_critical_edges, split_critical_edges};
use pdce_ir::Program;

use crate::transform::lazy_code_motion_cached;

/// Lazy code motion (Knoop/Rüthing/Steffen '92, Drechsler–Stadel block
/// form). Splits critical edges first when necessary — the only
/// CFG-shape change; the motion itself only edits statement lists and
/// rewrites terms in place.
pub struct LcmPass;

impl Pass for LcmPass {
    fn name(&self) -> &'static str {
        "lcm"
    }

    fn run(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PassOutcome {
        let mut out = PassOutcome::unchanged();
        if has_critical_edges(prog) {
            split_critical_edges(prog);
            out.merge(&PassOutcome {
                changed: true,
                preserves: Preserves::Nothing,
                ..PassOutcome::default()
            });
        }
        let before = prog.revision();
        let stats = lazy_code_motion_cached(prog, cache).expect("critical edges were just split");
        if prog.revision() != before {
            cache.retain(prog, Preserves::Cfg);
            out.merge(&PassOutcome {
                changed: true,
                inserted: stats.insertions,
                removed: stats.deletions,
                rewritten: stats.canonicalized,
                preserves: Preserves::Cfg,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    #[test]
    fn lcm_pass_moves_the_redundant_computation() {
        let mut p = parse(
            "prog {
               block s { x := a + b; goto m }
               block m { y := a + b; out(x + y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        let out = LcmPass.run(&mut p, &mut AnalysisCache::new());
        assert!(out.changed);
        assert!(out.removed >= 1, "the re-computation reads the temporary");
        let again = LcmPass.run(&mut p, &mut AnalysisCache::new());
        assert!(!again.changed, "lcm is idempotent here");
    }
}
