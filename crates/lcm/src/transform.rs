//! The lazy-code-motion transformation (Knoop/Rüthing/Steffen '92, in
//! the block-level formulation of Drechsler & Stadel '93).
//!
//! Four analyses per candidate expression (bit-vector, all-paths):
//!
//! ```text
//! ANTIN_n  = ANTLOC_n ∨ (TRANSP_n ∧ ANTOUT_n)       (backward; ANTOUT_e = ∅)
//! AVOUT_n  = COMP_n ∨ (TRANSP_n ∧ AVIN_n)           (forward;  AVIN_s  = ∅)
//! EARLIEST_(m,n) = ANTIN_n ∧ ¬AVOUT_m ∧ (¬TRANSP_m ∨ ¬ANTOUT_m)
//! LATER_(m,n)    = EARLIEST_(m,n) ∨ (LATERIN_m ∧ ¬COMP_m)
//! LATERIN_n      = ∧_{(m,n)∈E} LATER_(m,n)
//! INSERT_(m,n)   = LATER_(m,n) ∧ ¬LATERIN_n
//! DELETE_n       = ANTLOC_n ∧ ¬LATERIN_n
//! ```
//!
//! The entry node is handled with a pseudo-edge `(⊥, s)` whose `LATER`
//! value is `ANTIN_s` (`AVOUT_⊥ = TRANSP_⊥ = ∅`).
//!
//! The rewrite follows the classical temporary discipline (Morel &
//! Renvoise): expressions with any insertion or deletion become *active*
//! and get a fresh temporary `h`. `INSERT` edges receive `h := t`;
//! deleted (up-exposed) computations read `h` directly; every *kept*
//! computation of an active expression is canonicalized to
//! `h := t; use h`, so `h` is defined on every path that may reach a
//! deleted computation (this is the invariant the LCM correctness proof
//! relies on — kept computations play the role of `COMP` availability).

use std::error::Error;
use std::fmt;

use pdce_dfa::{solve, AnalysisCache, BitProblem, BitVec, Direction, GenKill, Meet};
use pdce_ir::edgesplit::has_critical_edges;
use pdce_ir::{NodeId, Program, Stmt, TermData, Terminator, Var};

use crate::exprs::{ExprLocal, ExprTable};

/// Statistics of one LCM run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LcmStats {
    /// Number of candidate expressions considered.
    pub expressions: usize,
    /// `h := t` initializations inserted on edges.
    pub insertions: u64,
    /// Up-exposed computations rewritten to read the temporary.
    pub deletions: u64,
    /// Kept computations canonicalized to `h := t; use h`.
    pub canonicalized: u64,
}

/// LCM requires split critical edges, like the sinking transformation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LcmCriticalEdgeError;

impl fmt::Display for LcmCriticalEdgeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lazy code motion requires critical edges to be split first"
        )
    }
}

impl Error for LcmCriticalEdgeError {}

/// Runs lazy code motion on `prog`.
///
/// # Errors
///
/// Returns [`LcmCriticalEdgeError`] if the program has critical edges.
///
/// # Example
///
/// ```
/// use pdce_ir::parser::parse;
/// use pdce_lcm::lazy_code_motion;
///
/// // A loop-invariant computation is hoisted to the preheader.
/// let mut prog = parse(
///     "prog { block pre { goto h }
///             block h { x := a + b; out(x); nondet hs post }
///             block hs { goto h } block post { goto e }
///             block e { halt } }",
/// )?;
/// let stats = lazy_code_motion(&mut prog)?;
/// assert_eq!(stats.insertions, 1);
/// assert_eq!(stats.deletions, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lazy_code_motion(prog: &mut Program) -> Result<LcmStats, LcmCriticalEdgeError> {
    lazy_code_motion_cached(prog, &mut AnalysisCache::new())
}

/// Like [`lazy_code_motion`], but reads the CFG from `cache`'s memoized
/// [`CfgView`] instead of rebuilding the adjacency per call.
pub fn lazy_code_motion_cached(
    prog: &mut Program,
    cache: &mut AnalysisCache,
) -> Result<LcmStats, LcmCriticalEdgeError> {
    if has_critical_edges(prog) {
        return Err(LcmCriticalEdgeError);
    }
    let table = ExprTable::build(prog);
    let mut stats = LcmStats {
        expressions: table.len(),
        ..LcmStats::default()
    };
    if table.is_empty() {
        return Ok(stats);
    }
    let width = table.len();
    let view = cache.cfg(prog);
    let local = ExprLocal::compute(prog, &table);

    // Anticipability (down-safety), backward.
    let ant = solve(
        &view,
        &BitProblem {
            direction: Direction::Backward,
            meet: Meet::Intersection,
            width,
            transfer: genkill(&local.antloc, &local.transp),
            boundary: BitVec::zeros(width),
        },
    );
    // Availability (up-safety), forward.
    let avail = solve(
        &view,
        &BitProblem {
            direction: Direction::Forward,
            meet: Meet::Intersection,
            width,
            transfer: genkill(&local.comp, &local.transp),
            boundary: BitVec::zeros(width),
        },
    );

    // Edge set with a pseudo entry edge (usize::MAX marks ⊥).
    let mut edges: Vec<(usize, NodeId)> = vec![(usize::MAX, prog.entry())];
    for n in prog.node_ids() {
        for m in view.succs(n) {
            edges.push((n.index(), *m));
        }
    }

    // EARLIEST per edge.
    let earliest: Vec<BitVec> = edges
        .iter()
        .map(|&(m, n)| {
            let mut e = ant.at_entry(n).clone();
            match m {
                usize::MAX => e, // ⊥: nothing available, nothing transparent
                m => {
                    let mut not_avout = avail.exit[m].clone();
                    not_avout.negate();
                    e.intersect_with(&not_avout);
                    // ¬TRANSP_m ∨ ¬ANTOUT_m
                    let mut tr_and_ant = local.transp[m].clone();
                    tr_and_ant.intersect_with(&ant.exit[m]);
                    tr_and_ant.negate();
                    e.intersect_with(&tr_and_ant);
                    e
                }
            }
        })
        .collect();

    // LATER / LATERIN greatest fixpoint.
    let nblocks = prog.num_blocks();
    let mut laterin = vec![BitVec::ones(width); nblocks];
    let mut later: Vec<BitVec> = vec![BitVec::ones(width); edges.len()];
    let mut changed = true;
    while changed {
        changed = false;
        for (ei, &(m, _n)) in edges.iter().enumerate() {
            let mut new_later = earliest[ei].clone();
            if m != usize::MAX {
                let mut flow = laterin[m].clone();
                let mut not_comp = local.comp[m].clone();
                not_comp.negate();
                flow.intersect_with(&not_comp);
                new_later.union_with(&flow);
            }
            if new_later != later[ei] {
                later[ei] = new_later;
                changed = true;
            }
        }
        for n in prog.node_ids() {
            let mut acc = BitVec::ones(width);
            for (ei, &(_, tgt)) in edges.iter().enumerate() {
                if tgt == n {
                    acc.intersect_with(&later[ei]);
                }
            }
            if acc != laterin[n.index()] {
                laterin[n.index()] = acc;
                changed = true;
            }
        }
    }

    // INSERT edges and DELETE blocks.
    let insert: Vec<BitVec> = edges
        .iter()
        .enumerate()
        .map(|(ei, &(_, n))| {
            let mut ins = later[ei].clone();
            let mut not_laterin = laterin[n.index()].clone();
            not_laterin.negate();
            ins.intersect_with(&not_laterin);
            ins
        })
        .collect();
    let delete: Vec<BitVec> = prog
        .node_ids()
        .map(|n| {
            let mut del = local.antloc[n.index()].clone();
            let mut not_laterin = laterin[n.index()].clone();
            not_laterin.negate();
            del.intersect_with(&not_laterin);
            del
        })
        .collect();

    // Active expressions get a fresh temporary.
    let mut active = BitVec::zeros(width);
    for ins in &insert {
        active.union_with(ins);
    }
    for del in &delete {
        active.union_with(del);
    }
    if active.none() {
        return Ok(stats);
    }
    let temps: Vec<Option<Var>> = (0..width)
        .map(|i| active.get(i).then(|| fresh_temp(prog, i)))
        .collect();

    // Gather edge insertions per block boundary.
    let mut entry_ins: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    let mut exit_ins: Vec<Vec<usize>> = vec![Vec::new(); nblocks];
    for (ei, &(m, n)) in edges.iter().enumerate() {
        for i in insert[ei].iter_ones() {
            stats.insertions += 1;
            if m == usize::MAX {
                entry_ins[n.index()].push(i);
            } else if view.succs(NodeId::from_index(m)).len() == 1 {
                exit_ins[m].push(i);
            } else {
                debug_assert_eq!(view.preds(n).len(), 1, "critical edge survived splitting");
                entry_ins[n.index()].push(i);
            }
        }
    }

    // Rewrite every block.
    for n in prog.node_ids().collect::<Vec<_>>() {
        rewrite_block(
            prog,
            n,
            &table,
            &temps,
            &active,
            &delete[n.index()],
            &entry_ins[n.index()],
            &exit_ins[n.index()],
            &mut stats,
        );
    }
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn rewrite_block(
    prog: &mut Program,
    n: NodeId,
    table: &ExprTable,
    temps: &[Option<Var>],
    active: &BitVec,
    delete: &BitVec,
    entry_ins: &[usize],
    exit_ins: &[usize],
    stats: &mut LcmStats,
) {
    let width = table.len();
    // delete_pending[i]: the next up-exposed computation of i reads h
    // directly instead of recomputing.
    let mut delete_pending = delete.clone();

    let old = prog.block(n).stmts.clone();
    let mut new_stmts: Vec<Stmt> = Vec::with_capacity(old.len() + entry_ins.len() + 2);
    let make_init = |i: usize| -> Stmt {
        Stmt::Assign {
            lhs: temps[i].expect("active expression has a temp"),
            rhs: table.expr(i),
        }
    };
    for &i in entry_ins {
        new_stmts.push(make_init(i));
    }

    for stmt in old {
        let candidate = stmt.used_term().and_then(|t| table.index_of(t));
        match candidate {
            Some(i) if active.get(i) => {
                let h = temps[i].expect("active expression has a temp");
                let hterm = prog.term(TermData::Var(h));
                if delete_pending.get(i) {
                    delete_pending.set(i, false);
                    stats.deletions += 1;
                } else {
                    new_stmts.push(make_init(i));
                    stats.canonicalized += 1;
                }
                new_stmts.push(match stmt {
                    Stmt::Assign { lhs, .. } => Stmt::Assign { lhs, rhs: hterm },
                    Stmt::Out(_) => Stmt::Out(hterm),
                    Stmt::Skip => unreachable!("skip has no used term"),
                });
            }
            _ => new_stmts.push(stmt),
        }
        // Operand modifications invalidate pending deletions (ANTLOC
        // occurrences always precede the first modification, so this is
        // belt and braces).
        if let Some(m) = stmt.modified() {
            for i in 0..width {
                if delete_pending.get(i) && prog.terms().term_uses(table.expr(i), m) {
                    delete_pending.set(i, false);
                }
            }
        }
    }

    // The branch condition is the final computation of the block.
    if let Some(c) = prog.block(n).term.used_term() {
        if let Some(i) = table.index_of(c) {
            if active.get(i) {
                let h = temps[i].expect("active expression has a temp");
                let hterm = prog.term(TermData::Var(h));
                if delete_pending.get(i) {
                    delete_pending.set(i, false);
                    stats.deletions += 1;
                } else {
                    new_stmts.push(make_init(i));
                    stats.canonicalized += 1;
                }
                if let Terminator::Cond { cond, .. } = &mut prog.block_mut(n).term {
                    *cond = hterm;
                }
            }
        }
    }

    for &i in exit_ins {
        new_stmts.push(make_init(i));
    }
    // Write back only when the list actually differs, so a stable
    // program keeps its revision (and analysis caches) intact.
    if new_stmts != prog.block(n).stmts {
        *prog.stmts_mut(n) = new_stmts;
    }
}

fn genkill(gen: &[BitVec], transp: &[BitVec]) -> Vec<GenKill> {
    gen.iter()
        .zip(transp)
        .map(|(g, t)| {
            let mut kill = t.clone();
            kill.negate();
            GenKill::new(g.clone(), kill)
        })
        .collect()
}

fn fresh_temp(prog: &mut Program, i: usize) -> Var {
    let mut name = format!("h{i}");
    while prog.vars().lookup(&name).is_some() {
        name.push('_');
    }
    prog.var(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::interp::{run_with, ExecLimits};
    use pdce_ir::parser::parse;

    fn occurrences(p: &Program, needle: &str) -> usize {
        pdce_ir::printer::print_program(p).matches(needle).count()
    }

    fn check_semantics(src: &str, optimized: &Program, inputs: &[(&str, i64)]) {
        let orig = parse(src).unwrap();
        for decisions in [vec![0, 1, 0, 1, 1, 0], vec![1, 0, 1, 0, 0, 1], vec![0; 6]] {
            let t0 = run_with(&orig, inputs, decisions.clone(), ExecLimits::default());
            let t1 = run_with(optimized, inputs, decisions, ExecLimits::default());
            assert_eq!(t0.outputs, t1.outputs, "semantics changed");
        }
    }

    #[test]
    fn hoists_partially_redundant_computation() {
        // a+b computed on one arm and after the join: LCM inserts on the
        // empty arm so the join reuses the temp.
        let src = "prog {
            block s { nondet l r }
            block l { x := a + b; out(x); goto j }
            block r { skip; goto j }
            block j { y := a + b; out(y); goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        let stats = lazy_code_motion(&mut p).unwrap();
        assert_eq!(stats.insertions, 1, "one init on the r arm");
        assert_eq!(stats.deletions, 1, "the join recomputation goes");
        assert_eq!(stats.canonicalized, 1, "the l computation defines h");
        // Each path now computes a+b exactly once.
        check_semantics(src, &p, &[("a", 2), ("b", 3)]);
    }

    #[test]
    fn hoists_loop_invariant_computation() {
        let src = "prog {
            block pre { goto h }
            block h { x := a + b; out(x); nondet hs post }
            block hs { goto h }
            block post { goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        let stats = lazy_code_motion(&mut p).unwrap();
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.deletions, 1);
        // The computation now sits in `pre`, not in the loop.
        let pre = p.block_by_name("pre").unwrap();
        assert_eq!(p.block(pre).stmts.len(), 1);
        assert_eq!(occurrences(&p, "a + b"), 1);
        check_semantics(src, &p, &[("a", 4), ("b", 5)]);
    }

    #[test]
    fn safety_blocks_hoisting_past_optional_path() {
        // a+b only computed on one side of a branch inside the loop:
        // not down-safe at the loop entry, must not be hoisted there.
        let src = "prog {
            block pre { goto h }
            block h { nondet uses skips }
            block uses { x := a + b; out(x); goto latch }
            block skips { out(0); goto latch }
            block latch { nondet hs post }
            block hs { goto h }
            block post { goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        lazy_code_motion(&mut p).unwrap();
        let pre = p.block_by_name("pre").unwrap();
        let h = p.block_by_name("h").unwrap();
        assert!(p.block(pre).stmts.is_empty(), "unsafe hoist into pre");
        assert!(p.block(h).stmts.is_empty(), "unsafe hoist into h");
        check_semantics(src, &p, &[("a", 1), ("b", 2)]);
    }

    #[test]
    fn rejects_critical_edges() {
        let mut p = parse(
            "prog {
               block s { nondet a j }
               block a { goto j }
               block j { out(x + y); goto e }
               block e { halt }
             }",
        )
        .unwrap();
        assert_eq!(lazy_code_motion(&mut p), Err(LcmCriticalEdgeError));
    }

    #[test]
    fn straight_line_redundancy_untouched_by_design() {
        // Within one block the second computation is not up-exposed;
        // block-level LCM leaves it for local value numbering.
        let src = "prog {
            block s { x := a + b; y := a + b; out(x + y); goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        let stats = lazy_code_motion(&mut p).unwrap();
        assert_eq!(stats.insertions, 0);
        assert_eq!(stats.deletions, 0);
        check_semantics(src, &p, &[("a", 7), ("b", 1)]);
    }

    #[test]
    fn cross_block_full_redundancy_collapses() {
        let src = "prog {
            block s { x := a + b; out(x); goto j }
            block j { y := a + b; out(y); goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        let stats = lazy_code_motion(&mut p).unwrap();
        assert_eq!(stats.deletions, 1, "j's recomputation reads the temp");
        assert_eq!(stats.canonicalized, 1, "s's computation defines the temp");
        assert_eq!(stats.insertions, 0, "no edge insertion needed");
        assert_eq!(occurrences(&p, "a + b"), 1);
        check_semantics(src, &p, &[("a", 7), ("b", 1)]);
    }

    #[test]
    fn no_candidates_is_a_no_op() {
        let src = "prog { block s { x := a; out(x); goto e } block e { halt } }";
        let mut p = parse(src).unwrap();
        let stats = lazy_code_motion(&mut p).unwrap();
        assert_eq!(stats, LcmStats::default());
    }

    #[test]
    fn condition_expressions_participate() {
        let src = "prog {
            block s { x := a + b; if a + b < 99 then t else f }
            block t { out(1); goto e }
            block f { out(2); goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        lazy_code_motion(&mut p).unwrap();
        check_semantics(src, &p, &[("a", 50), ("b", 50)]);
        check_semantics(src, &p, &[("a", 1), ("b", 1)]);
    }

    /// The PRE guarantee, measured: dynamic operator applications never
    /// increase, and drop when redundancy is eliminated.
    #[test]
    fn operation_counts_never_increase() {
        let src = "prog {
            block pre { goto h }
            block h { x := a + b; out(x); nondet hs post }
            block hs { goto h }
            block post { goto e }
            block e { halt }
        }";
        let orig = parse(src).unwrap();
        let mut opt = parse(src).unwrap();
        lazy_code_motion(&mut opt).unwrap();
        // Loop three times then exit.
        let d = vec![0, 0, 0, 1];
        let t0 = run_with(
            &orig,
            &[("a", 1), ("b", 2)],
            d.clone(),
            ExecLimits::default(),
        );
        let t1 = run_with(&opt, &[("a", 1), ("b", 2)], d, ExecLimits::default());
        assert_eq!(t0.outputs, t1.outputs);
        assert!(
            t1.executed_operations < t0.executed_operations,
            "hoisting must reduce loop recomputation: {} vs {}",
            t1.executed_operations,
            t0.executed_operations
        );
    }

    #[test]
    fn temp_names_avoid_collisions() {
        let src = "prog {
            block s { h0 := 1; x := a + b; out(x + h0); goto j }
            block j { y := a + b; out(y); goto e }
            block e { halt }
        }";
        let mut p = parse(src).unwrap();
        let stats = lazy_code_motion(&mut p).unwrap();
        assert!(stats.deletions >= 1);
        check_semantics(src, &p, &[("a", 3), ("b", 4)]);
    }
}
