//! Optional counting global allocator (`--features alloc-metrics`).
//!
//! The counters always exist so instrumentation can read them
//! unconditionally; they only move once a binary installs
//! [`CountingAlloc`] as its `#[global_allocator]`, which the root `pdce`
//! crate does when built with the `alloc-metrics` feature. Without the
//! feature the snapshots stay at zero and per-pass allocation deltas
//! render as empty series.

use std::sync::atomic::{AtomicU64, Ordering};

static BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

/// Cumulative allocation totals since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    pub bytes: u64,
    pub allocs: u64,
}

impl AllocSnapshot {
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            bytes: self.bytes.saturating_sub(earlier.bytes),
            allocs: self.allocs.saturating_sub(earlier.allocs),
        }
    }
}

/// Read the cumulative allocation counters. All zeros unless a
/// [`CountingAlloc`] is installed as the global allocator.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        bytes: BYTES.load(Ordering::Relaxed),
        allocs: ALLOCS.load(Ordering::Relaxed),
    }
}

/// Whether any allocation has been counted (i.e. the counting allocator
/// is actually installed and live).
pub fn active() -> bool {
    ALLOCS.load(Ordering::Relaxed) != 0
}

/// `System`-backed allocator that counts allocations and bytes requested.
/// Deallocations are forwarded untouched: the counters are cumulative
/// totals (work done), not live-heap gauges, which keeps them monotone and
/// delta-friendly like every other counter in the registry.
#[cfg(feature = "alloc-metrics")]
pub struct CountingAlloc;

#[cfg(feature = "alloc-metrics")]
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = unsafe { std::alloc::System.alloc(layout) };
        if !p.is_null() {
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { std::alloc::System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            let grown = new_size.saturating_sub(layout.size());
            BYTES.fetch_add(grown as u64, Ordering::Relaxed);
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta_is_monotone() {
        let before = snapshot();
        let after = snapshot();
        let d = after.since(&before);
        // Without the allocator installed both snapshots are equal; with it
        // installed the delta is non-negative either way.
        assert!(d.bytes <= after.bytes);
        assert!(d.allocs <= after.allocs);
    }
}
