//! Run-scoped structured JSONL event log.
//!
//! Each run of the CLI can emit a stream of structured events — one JSON
//! object per line — that attributes work to a run id, file, pass, and
//! resilience rung. The log is assembled on the main thread in argument
//! file order after the `pdce-par` pool has finished, so its bytes are
//! independent of `--jobs` and thread interleaving. To keep that true, no
//! wall-clock fields belong in events; ordering is carried by the explicit
//! `seq` field (a logical clock).

use std::fmt::Write as _;

/// One event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    U64(u64),
    I64(i64),
    Str(String),
    Bool(bool),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U64(v)
    }
}

impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I64(v)
    }
}

impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U64(v as u64)
    }
}

impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::Bool(v)
    }
}

impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::Str(v.to_string())
    }
}

impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::Str(v)
    }
}

/// One structured event: an event kind plus ordered key/value fields.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: &'static str,
    pub fields: Vec<(&'static str, Field)>,
}

impl Event {
    pub fn new(kind: &'static str) -> Self {
        Event {
            kind,
            fields: Vec::new(),
        }
    }

    pub fn field(mut self, key: &'static str, value: impl Into<Field>) -> Self {
        self.fields.push((key, value.into()));
        self
    }
}

/// Buffered event log for one run. Events are appended in logical order
/// and serialized with a stable field order, so two runs over the same
/// inputs produce byte-identical logs.
#[derive(Debug, Clone)]
pub struct EventLog {
    run_id: String,
    events: Vec<Event>,
}

impl EventLog {
    pub fn new(run_id: String) -> Self {
        EventLog {
            run_id,
            events: Vec::new(),
        }
    }

    pub fn run_id(&self) -> &str {
        &self.run_id
    }

    pub fn record(&mut self, event: Event) {
        self.events.push(event);
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialize the log: one JSON object per line, fields in insertion
    /// order, prefixed by the run id, event kind, and logical sequence.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, e) in self.events.iter().enumerate() {
            write!(
                out,
                "{{\"run\":\"{}\",\"seq\":{},\"event\":\"{}\"",
                escape(&self.run_id),
                seq,
                escape(e.kind)
            )
            .unwrap();
            for (k, v) in &e.fields {
                match v {
                    Field::U64(n) => write!(out, ",\"{}\":{}", escape(k), n).unwrap(),
                    Field::I64(n) => write!(out, ",\"{}\":{}", escape(k), n).unwrap(),
                    Field::Bool(b) => write!(out, ",\"{}\":{}", escape(k), b).unwrap(),
                    Field::Str(s) => write!(out, ",\"{}\":\"{}\"", escape(k), escape(s)).unwrap(),
                }
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Deterministic run id: FNV-1a over the given parts (typically the
/// command line minus flags whose value varies run-to-run, such as
/// `--jobs`). Hashing inputs instead of sampling a clock keeps the id —
/// and therefore the whole log — reproducible.
pub fn run_id<'a>(parts: impl IntoIterator<Item = &'a str>) -> String {
    let mut hash: u64 = 0xcbf29ce484222325;
    for part in parts {
        for b in part.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash ^= 0xff;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    format!("{hash:016x}")
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let mut log = EventLog::new(run_id(["opt", "a.pdce"]));
        log.record(Event::new("run").field("files", 2u64).field("mode", "pde"));
        log.record(
            Event::new("file")
                .field("file", "weird\"name\n")
                .field("index", 0u64)
                .field("ok", true),
        );
        let text = log.to_jsonl();
        let again = log.to_jsonl();
        assert_eq!(text, again);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[0].contains("\"event\":\"run\""));
        assert!(lines[1].contains("\"file\":\"weird\\\"name\\n\""));
        assert!(lines[1].contains("\"ok\":true"));
    }

    #[test]
    fn run_id_is_deterministic_and_input_sensitive() {
        assert_eq!(run_id(["a", "b"]), run_id(["a", "b"]));
        assert_ne!(run_id(["a", "b"]), run_id(["ab"]));
        assert_eq!(run_id(["a", "b"]).len(), 16);
    }
}
