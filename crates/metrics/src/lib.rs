//! Always-on metrics plane for the PDCE workspace.
//!
//! The crate provides a process-global registry of counters, gauges, and
//! log2-bucketed histograms. Registration takes a short-lived lock once per
//! series; every update after that is a handful of relaxed atomic
//! read-modify-writes on shared `AtomicU64`s, so the hot path is lock-free
//! and safe to hit from every worker of the `pdce-par` pool concurrently.
//! Because updates commute, the registry's totals are independent of thread
//! interleaving: a snapshot taken after a batch run is byte-stable for any
//! `--jobs` value as long as the recorded values themselves are
//! deterministic. Families whose samples are wall-clock measurements are
//! registered with [`Stability::Timing`] and excluded from the deterministic
//! rendering used by stability checks.
//!
//! Exposition is snapshot-based: [`Registry::snapshot`] captures every
//! series, [`Snapshot::since`] subtracts an earlier snapshot to scope a run,
//! and the result renders as Prometheus text exposition
//! ([`Snapshot::prometheus`]), a human table ([`Snapshot::human_table`]), or
//! is queried directly for quantiles ([`HistogramSnapshot::quantile`]).

pub mod alloc;
pub mod events;

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Global recording gate. Metrics are always-on by default; the overhead
/// A/B in `pdce report` flips this off for its baseline series so the cost
/// of the instrumentation itself can be measured in-process.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether metric updates are currently recorded.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn recording on or off process-wide. Intended for A/B measurement;
/// the registry itself stays registered and readable either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Run `f` with recording suppressed, restoring the previous state after.
/// The gate is process-global, so this is meant for single-workload A/B
/// harnesses, not for scoping individual threads.
pub fn suppressed<T>(f: impl FnOnce() -> T) -> T {
    let was = enabled();
    set_enabled(false);
    let out = f();
    set_enabled(was);
    out
}

/// Whether a family's samples are reproducible across runs and `--jobs`
/// values. Timing families (wall-clock or allocator measurements) are
/// excluded from [`Snapshot::prometheus_deterministic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    Deterministic,
    Timing,
}

impl Stability {
    fn label(self) -> &'static str {
        match self {
            Stability::Deterministic => "deterministic",
            Stability::Timing => "timing",
        }
    }
}

/// Monotone counter. Updates are relaxed atomic adds.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    pub fn add(&self, n: u64) {
        if n != 0 && enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-writer-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    pub fn add(&self, d: i64) {
        if d != 0 && enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets. Bucket 0 holds the value 0; bucket `i >= 1`
/// holds values `v` with `bit_length(v) == i`, i.e. `2^(i-1) <= v < 2^i`.
/// The last bucket additionally absorbs everything wider, so every u64 has
/// a home and `observe` is a single `leading_zeros` plus one atomic add.
pub const BUCKETS: usize = 64;

/// Index of the log2 bucket for `v`.
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper edge of bucket `i` (`0` for bucket 0, `2^i - 1` above).
/// Quantile estimates report this edge, so they are conservative (an upper
/// bound) and — crucially — a pure function of the bucket counts, which
/// keeps them bit-identical for any merge order or `--jobs` value.
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Log2-bucketed histogram: 64 atomic buckets plus count and sum.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a histogram's buckets; plain data, mergeable and
/// subtractable, with quantile estimation off the bucket edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Bucket-wise addition. Addition commutes, so merging per-thread
    /// snapshots yields the same result for every shard order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Bucket-wise subtraction of an earlier snapshot of the same series.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
        }
    }

    /// Upper-edge estimate of quantile `q` in [0, 1]: the inclusive upper
    /// edge of the bucket containing the `ceil(q * count)`-th sample.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_edge(i);
            }
        }
        bucket_upper_edge(BUCKETS - 1)
    }

    /// Upper edge of the highest non-empty bucket (an upper bound on the
    /// largest observed sample).
    pub fn max_estimate(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&b| b > 0)
            .map(bucket_upper_edge)
            .unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Series {
    labels: Vec<(&'static str, String)>,
    metric: Metric,
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    stability: Stability,
    series: Vec<Series>,
}

/// Named collection of metric families. Registration (and snapshotting)
/// takes a mutex; the handles it returns are shared atomics, so recording
/// never locks. Instrumentation sites cache their handle in a `LazyLock`
/// and pay the lock exactly once per process.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub const fn new() -> Self {
        Registry {
            families: Mutex::new(Vec::new()),
        }
    }

    // One parameter per registration fact plus the three kind adapters;
    // splitting those into a trait would triple the code for three
    // call sites.
    #[allow(clippy::too_many_arguments)]
    fn register<T>(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        stability: Stability,
        labels: &[(&'static str, &str)],
        make: impl FnOnce() -> Arc<T>,
        wrap: impl Fn(Arc<T>) -> Metric,
        unwrap: impl Fn(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut families = self.families.lock().unwrap();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert_eq!(
                    f.kind, kind,
                    "metric family {name} re-registered with a different kind"
                );
                f
            }
            None => {
                families.push(Family {
                    name,
                    help,
                    kind,
                    stability,
                    series: Vec::new(),
                });
                families.last_mut().unwrap()
            }
        };
        if let Some(existing) = family.series.iter().find(|s| {
            s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        }) {
            return unwrap(&existing.metric).expect("metric series kind mismatch");
        }
        let metric = make();
        family.series.push(Series {
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
            metric: wrap(Arc::clone(&metric)),
        });
        metric
    }

    /// Register (or look up) a counter series.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        stability: Stability,
        labels: &[(&'static str, &str)],
    ) -> Arc<Counter> {
        self.register(
            name,
            help,
            Kind::Counter,
            stability,
            labels,
            || Arc::new(Counter::new()),
            Metric::Counter,
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Register (or look up) a gauge series.
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        stability: Stability,
        labels: &[(&'static str, &str)],
    ) -> Arc<Gauge> {
        self.register(
            name,
            help,
            Kind::Gauge,
            stability,
            labels,
            || Arc::new(Gauge::new()),
            Metric::Gauge,
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Register (or look up) a histogram series.
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        stability: Stability,
        labels: &[(&'static str, &str)],
    ) -> Arc<Histogram> {
        self.register(
            name,
            help,
            Kind::Histogram,
            stability,
            labels,
            || Arc::new(Histogram::new()),
            Metric::Histogram,
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Capture every registered series. Series are sorted by
    /// (family name, label values) so the snapshot order — and therefore
    /// every rendering — is independent of registration order across
    /// threads.
    pub fn snapshot(&self) -> Snapshot {
        let families = self.families.lock().unwrap();
        let mut series = Vec::new();
        for f in families.iter() {
            for s in &f.series {
                series.push(SeriesSnapshot {
                    name: f.name,
                    help: f.help,
                    kind: f.kind,
                    stability: f.stability,
                    labels: s.labels.iter().map(|(k, v)| (*k, v.clone())).collect(),
                    value: match &s.metric {
                        Metric::Counter(c) => Value::Counter(c.get()),
                        Metric::Gauge(g) => Value::Gauge(g.get()),
                        Metric::Histogram(h) => Value::Histogram(h.snapshot()),
                    },
                });
            }
        }
        series.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));
        Snapshot { series }
    }
}

/// The process-global registry every instrumented layer records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// One series' value at snapshot time. The histogram variant inlines
/// its 64 buckets — snapshots are cold-path plain data, and keeping
/// them boxless keeps `since`/`merge` allocation-free.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// One series at snapshot time.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    pub name: &'static str,
    pub help: &'static str,
    kind: Kind,
    pub stability: Stability,
    pub labels: Vec<(&'static str, String)>,
    pub value: Value,
}

impl SeriesSnapshot {
    fn label_string(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{{{}}}", inner.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Deterministically ordered, plain-data capture of the registry.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    pub series: Vec<SeriesSnapshot>,
}

impl Snapshot {
    /// Subtract an earlier snapshot series-wise to scope the capture to a
    /// run. Series missing from `earlier` pass through unchanged; gauges
    /// keep their latest value (they are not cumulative).
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let series = self
            .series
            .iter()
            .map(|s| {
                let before = earlier
                    .series
                    .iter()
                    .find(|e| e.name == s.name && e.labels == s.labels);
                let value = match (&s.value, before.map(|b| &b.value)) {
                    (Value::Counter(now), Some(Value::Counter(then))) => {
                        Value::Counter(now.saturating_sub(*then))
                    }
                    (Value::Histogram(now), Some(Value::Histogram(then))) => {
                        Value::Histogram(now.since(then))
                    }
                    (v, _) => v.clone(),
                };
                SeriesSnapshot { value, ..s.clone() }
            })
            .collect();
        Snapshot { series }
    }

    /// Look up a counter's value by family name and exact label set.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.find(name, labels).and_then(|s| match &s.value {
            Value::Counter(v) => Some(*v),
            _ => None,
        })
    }

    /// Look up a histogram snapshot by family name and exact label set.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.find(name, labels).and_then(|s| match &s.value {
            Value::Histogram(h) => Some(h),
            _ => None,
        })
    }

    fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| {
            s.name == name
                && s.labels.len() == labels.len()
                && s.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|(a, b)| a.0 == b.0 && a.1 == b.1)
        })
    }

    /// Sum of a counter family across all label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.series
            .iter()
            .filter(|s| s.name == name)
            .filter_map(|s| match &s.value {
                Value::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Prometheus text exposition of every series. Families carry a
    /// non-standard `# STABILITY` comment so consumers (and the byte-
    /// stability check) can tell reproducible series from timing series.
    pub fn prometheus(&self) -> String {
        self.render(|_| true)
    }

    /// Prometheus text exposition restricted to deterministic families.
    /// This rendering is byte-stable across runs and `--jobs` values.
    pub fn prometheus_deterministic(&self) -> String {
        self.render(|s| s.stability == Stability::Deterministic)
    }

    fn render(&self, keep: impl Fn(&SeriesSnapshot) -> bool) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for s in self.series.iter().filter(|s| keep(s)) {
            if last_family != Some(s.name) {
                writeln!(out, "# HELP {} {}", s.name, s.help).unwrap();
                writeln!(out, "# TYPE {} {}", s.name, s.kind.label()).unwrap();
                writeln!(out, "# STABILITY {} {}", s.name, s.stability.label()).unwrap();
                last_family = Some(s.name);
            }
            let labels = s.label_string();
            match &s.value {
                Value::Counter(v) => writeln!(out, "{}{} {}", s.name, labels, v).unwrap(),
                Value::Gauge(v) => writeln!(out, "{}{} {}", s.name, labels, v).unwrap(),
                Value::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &b) in h.buckets.iter().enumerate() {
                        if b == 0 && i != 0 {
                            continue;
                        }
                        cum += b;
                        writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            with_label(&s.labels, "le", &bucket_upper_edge(i).to_string()),
                            cum
                        )
                        .unwrap();
                    }
                    writeln!(
                        out,
                        "{}_bucket{} {}",
                        s.name,
                        with_label(&s.labels, "le", "+Inf"),
                        h.count
                    )
                    .unwrap();
                    writeln!(out, "{}_sum{} {}", s.name, labels, h.sum).unwrap();
                    writeln!(out, "{}_count{} {}", s.name, labels, h.count).unwrap();
                }
            }
        }
        out
    }

    /// Compact human rendering appended to `--stats` by `--metrics`.
    pub fn human_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("metrics:\n");
        for s in &self.series {
            let skip = match &s.value {
                Value::Counter(0) => true,
                Value::Histogram(h) => h.count == 0,
                _ => false,
            };
            if skip {
                continue;
            }
            match &s.value {
                Value::Counter(v) => {
                    writeln!(out, "  {}{} = {}", s.name, s.label_string(), v).unwrap()
                }
                Value::Gauge(v) => {
                    writeln!(out, "  {}{} = {}", s.name, s.label_string(), v).unwrap()
                }
                Value::Histogram(h) => writeln!(
                    out,
                    "  {}{} count={} p50<={} p90<={} p99<={} max<={}",
                    s.name,
                    s.label_string(),
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.90),
                    h.quantile(0.99),
                    h.max_estimate(),
                )
                .unwrap(),
            }
        }
        out
    }
}

fn with_label(labels: &[(&'static str, String)], key: &str, value: &str) -> String {
    let mut inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    inner.push(format!("{key}=\"{value}\""));
    format!("{{{}}}", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_log2_with_zero_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_edge(0), 0);
        assert_eq!(bucket_upper_edge(10), 1023);
    }

    #[test]
    fn quantiles_are_upper_edges() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 5, 9, 17, 900, 1000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.quantile(0.5), 7); // 4th sample (value 5) -> bucket 3
        assert_eq!(snap.quantile(1.0), 1023);
        assert_eq!(snap.max_estimate(), 1023);
    }

    #[test]
    fn merge_is_commutative_and_since_subtracts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 100);
        assert_eq!(ab.since(&a.snapshot()), b.snapshot());
    }

    #[test]
    fn registry_snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        let c2 = r.counter("z_total", "z", Stability::Deterministic, &[("k", "b")]);
        let c1 = r.counter("z_total", "z", Stability::Deterministic, &[("k", "a")]);
        let h = r.histogram("a_ns", "a", Stability::Timing, &[]);
        c1.add(1);
        c2.add(2);
        h.observe(1000);
        let snap = r.snapshot();
        let names: Vec<_> = snap
            .series
            .iter()
            .map(|s| (s.name, s.labels.clone()))
            .collect();
        assert_eq!(names[0].0, "a_ns");
        assert_eq!(names[1].1[0].1, "a");
        assert_eq!(names[2].1[0].1, "b");
        assert_eq!(snap.counter("z_total", &[("k", "b")]), Some(2));
        assert_eq!(snap.counter_total("z_total"), 3);
        let det = snap.prometheus_deterministic();
        assert!(det.contains("z_total{k=\"a\"} 1"));
        assert!(!det.contains("a_ns"));
        let full = snap.prometheus();
        assert!(full.contains("# STABILITY a_ns timing"));
        assert!(full.contains("a_ns_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn reregistration_returns_same_series() {
        let r = Registry::new();
        let a = r.counter("dup_total", "d", Stability::Deterministic, &[]);
        let b = r.counter("dup_total", "d", Stability::Deterministic, &[]);
        a.add(3);
        b.add(4);
        assert_eq!(r.snapshot().counter("dup_total", &[]), Some(7));
    }
}
