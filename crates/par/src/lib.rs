//! Zero-dependency batch parallelism for independent programs.
//!
//! The PDCE workloads that matter at scale — multi-file `pdce opt`,
//! progen fleets, the bench scaling sweep — are embarrassingly parallel
//! across *programs* while each program's optimization stays
//! single-threaded (the solvers' telemetry is thread-local). This crate
//! provides the one primitive that exploits this: [`map_indexed`], a
//! scoped thread pool built on [`std::thread::scope`] in which workers
//! claim items from an atomic counter and results are reassembled **in
//! item order**, never in completion order.
//!
//! Determinism contract: for a pure `f`, `map_indexed(jobs, items, f)`
//! returns the same vector for every `jobs` value — the differential
//! oracle in `tests/` compares sequential against `--jobs 4` output
//! byte for byte. Per-worker side channels (trace collectors, solver
//! counters) must be captured inside `f` and carried in its return
//! value, to be merged by the caller in index order (see
//! `pdce_trace::merge_collected`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

pub mod supervised;

pub use supervised::{supervised_map, ItemOutcome, SupervisorOptions};

/// Registry handles for pool telemetry: items processed, and the
/// queue-wait histogram — how long each item sat between batch start and
/// a worker claiming it. Queue wait is the `--jobs` lever the future
/// serving loop tunes against, and a wall-clock measurement, so the
/// family is registered as timing (excluded from byte-stability checks).
mod pool_metrics {
    use pdce_metrics::{global, Counter, Histogram, Stability};
    use std::sync::{Arc, LazyLock};

    pub static ITEMS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_par_items_total",
            "Work items processed by the batch pool",
            Stability::Deterministic,
            &[],
        )
    });
    pub static QUEUE_WAIT: LazyLock<Arc<Histogram>> = LazyLock::new(|| {
        global().histogram(
            "pdce_par_queue_wait_ns",
            "Nanoseconds between batch start and a worker claiming the item",
            Stability::Timing,
            &[],
        )
    });
}

/// A sensible default worker count: the machine's available
/// parallelism, or 1 if that cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A work item that panicked on a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemPanic {
    /// Index of the item in the input slice.
    pub index: usize,
    /// Rendered panic message.
    pub message: String,
}

impl std::fmt::Display for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for ItemPanic {}

/// Applies `f` to every item on a pool of `jobs` scoped workers,
/// sandboxing each item: a panicking item becomes
/// `Err(`[`ItemPanic`]`)` in its slot while every sibling item — on
/// the same worker and on others — still runs to completion. Results
/// come back in item order.
///
/// `jobs` is clamped to `1..=items.len()`; with one job (or one item)
/// no threads are spawned and `f` runs inline, so the sequential path
/// is exactly the parallel path with a trivial schedule. Workers claim
/// the next unclaimed index from a shared atomic counter, so schedules
/// adapt to item cost without any work-size guessing.
pub fn try_map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<Result<R, ItemPanic>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let catch_item = |i: usize, t: &T| -> Result<R, ItemPanic> {
        pdce_trace::sandbox::catch(|| f(i, t)).map_err(|e| ItemPanic {
            index: i,
            message: e.to_string(),
        })
    };
    let jobs = jobs.max(1).min(items.len().max(1));
    let batch_start = Instant::now();
    let claim = |i: usize| {
        pool_metrics::ITEMS.inc();
        pool_metrics::QUEUE_WAIT.observe(batch_start.elapsed().as_nanos() as u64);
        i
    };
    if jobs == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| catch_item(claim(i), t))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, Result<R, ItemPanic>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, catch_item(claim(i), &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Unreachable: every item is sandboxed, so workers
                // cannot die mid-batch. Kept as a defensive resume.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut slots: Vec<Option<Result<R, ItemPanic>>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} claimed twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|r| r.expect("every index is claimed exactly once"))
        .collect()
}

/// [`try_map_indexed`] for infallible `f`: returns the bare results.
///
/// # Panics
///
/// If `f` panicked on any item, the lowest-index panic is re-raised on
/// the caller — but only **after the whole batch has drained**, so a
/// poisoned item never aborts its siblings' work mid-flight.
pub fn map_indexed<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in try_map_indexed(jobs, items, f) {
        match r {
            Ok(v) => out.push(v),
            Err(e) => std::panic::panic_any(e.to_string()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn results_are_in_item_order_for_any_job_count() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * x).collect();
        for jobs in [0, 1, 2, 3, 8, 200] {
            let got = map_indexed(jobs, &items, |i, &x| {
                assert_eq!(i, x);
                x * x
            });
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = map_indexed(4, &[] as &[u32], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn multiple_workers_actually_run() {
        // With enough slow-ish items, more than one thread claims work.
        let items: Vec<u32> = (0..64).collect();
        let seen = Mutex::new(HashSet::new());
        map_indexed(4, &items, |_, &x| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(1));
            x
        });
        assert!(seen.lock().unwrap().len() > 1);
    }

    #[test]
    fn single_job_runs_inline() {
        let main_thread = std::thread::current().id();
        map_indexed(1, &[1, 2, 3], |_, &x| {
            assert_eq!(std::thread::current().id(), main_thread);
            x
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(2, &[1u32, 2, 3, 4], |_, &x| {
                if x == 3 {
                    panic!("boom on {x}");
                }
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn panicking_item_does_not_abort_siblings() {
        use std::sync::atomic::AtomicUsize;
        // One poisoned item in a large batch: every other item must
        // still be processed, on every job count.
        let items: Vec<u32> = (0..64).collect();
        for jobs in [1, 2, 4, 8] {
            let processed = AtomicUsize::new(0);
            let results = try_map_indexed(jobs, &items, |_, &x| {
                if x == 7 {
                    panic!("poisoned item {x}");
                }
                processed.fetch_add(1, Ordering::Relaxed);
                x * 2
            });
            assert_eq!(
                processed.load(Ordering::Relaxed),
                items.len() - 1,
                "jobs={jobs}"
            );
            for (i, r) in results.iter().enumerate() {
                if i == 7 {
                    let e = r.as_ref().unwrap_err();
                    assert_eq!(e.index, 7);
                    assert!(e.message.contains("poisoned item 7"), "got: {}", e.message);
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(items[i] * 2));
                }
            }
        }
    }

    #[test]
    fn map_indexed_drains_before_propagating() {
        use std::sync::atomic::AtomicUsize;
        let items: Vec<u32> = (0..32).collect();
        let processed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map_indexed(4, &items, |_, &x| {
                if x == 0 {
                    panic!("first item dies");
                }
                processed.fetch_add(1, Ordering::Relaxed);
                x
            })
        }));
        assert!(result.is_err());
        // The earliest item panicked, yet the rest of the batch ran.
        assert_eq!(processed.load(Ordering::Relaxed), items.len() - 1);
        let msg = result
            .unwrap_err()
            .downcast::<String>()
            .expect("panic payload is the rendered ItemPanic");
        assert!(msg.contains("work item 0 panicked"), "got: {msg}");
        assert!(msg.contains("first item dies"), "got: {msg}");
    }

    #[test]
    fn multiple_panics_report_lowest_index() {
        let result = std::panic::catch_unwind(|| {
            map_indexed(2, &[0u32, 1, 2, 3, 4, 5], |i, _| {
                if i == 2 || i == 5 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("work item 2 panicked"), "got: {msg}");
    }
}
