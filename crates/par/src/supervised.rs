//! Watchdog-supervised dispatch: deadlines that hold even when a
//! worker wedges inside a solver.
//!
//! [`crate::try_map_indexed`] sandboxes *panics*, but a worker stuck in
//! a non-terminating (or fault-stalled) solve never returns to the
//! sandbox at all — and scoped threads would pin the whole batch to the
//! lifetime of its slowest hostage. This module runs workers on
//! *detached* threads under a supervisor that enforces two deadlines
//! per item:
//!
//! - **Soft**: the item's cooperative cancellation token
//!   ([`pdce_trace::budget::CancelToken`]) is raised; every budget
//!   checkpoint in the solvers turns that into a typed unwind, so a
//!   cooperating worker frees itself within one checkpoint interval.
//! - **Hard**: the worker is presumed wedged (sleeping in foreign code,
//!   ignoring cancellation). Its item is marked
//!   [`ItemOutcome::Wedged`], a replacement worker is spawned so the
//!   rest of the batch keeps full parallelism, and whatever the
//!   hostage thread eventually produces is discarded — each slot is
//!   decided exactly once.
//!
//! Results still come back in item order, and with no deadlines
//! configured the call degenerates to the scoped pool.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use pdce_trace::budget::{install_cancel, CancelToken};

use crate::ItemPanic;

mod watchdog_metrics {
    use pdce_metrics::{global, Counter, Stability};
    use std::sync::{Arc, LazyLock};

    pub static CANCELLED: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_par_soft_cancels_total",
            "Items whose cooperative cancellation flag was raised by the watchdog",
            Stability::Timing,
            &[],
        )
    });
    pub static WEDGED: LazyLock<Arc<Counter>> = LazyLock::new(|| {
        global().counter(
            "pdce_par_wedged_items_total",
            "Items abandoned at the hard watchdog deadline (worker replaced)",
            Stability::Timing,
            &[],
        )
    });
}

/// Watchdog configuration for one supervised batch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SupervisorOptions {
    /// Worker threads (clamped to `1..=items.len()`).
    pub jobs: usize,
    /// Per-item wall deadline after which the item's cancellation
    /// token is raised. `None` disables the soft phase.
    pub soft_deadline: Option<Duration>,
    /// Per-item wall deadline after which the worker is abandoned and
    /// replaced. `None` disables the hard phase (the supervisor then
    /// waits for cancellation to work).
    pub hard_deadline: Option<Duration>,
}

/// One item's fate under supervision.
#[derive(Debug)]
pub enum ItemOutcome<R> {
    Done(R),
    /// The item panicked (or tripped a budget) and was sandboxed.
    Panicked(ItemPanic),
    /// The worker ignored cancellation past the hard deadline; the
    /// item was abandoned and the worker replaced.
    Wedged,
}

/// A worker's registration while its item is in flight.
struct InFlight {
    start: Instant,
    token: CancelToken,
    cancelled: bool,
}

/// Shared state between the supervisor and its (detached) workers.
struct Shared<T, R, F> {
    items: Vec<T>,
    f: F,
    next: AtomicUsize,
    inflight: Mutex<HashMap<usize, InFlight>>,
    /// Indices the supervisor gave up on; their hostage workers exit
    /// instead of claiming more (a replacement already took over).
    abandoned: Mutex<HashSet<usize>>,
    tx: mpsc::Sender<(usize, Result<R, ItemPanic>)>,
}

/// Applies `f` to every item under watchdog supervision (see the
/// module docs). Results are in item order; a panicking item comes
/// back as [`ItemOutcome::Panicked`], one that outlives the hard
/// deadline as [`ItemOutcome::Wedged`] — the batch always completes.
///
/// With neither deadline set this is [`crate::try_map_indexed`] with
/// its scoped (non-leaking) pool; deadlines require detached workers,
/// since a wedged scoped thread would block the scope forever.
pub fn supervised_map<T, R, F>(opts: SupervisorOptions, items: Vec<T>, f: F) -> Vec<ItemOutcome<R>>
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    if opts.soft_deadline.is_none() && opts.hard_deadline.is_none() {
        return crate::try_map_indexed(opts.jobs, &items, f)
            .into_iter()
            .map(|r| match r {
                Ok(v) => ItemOutcome::Done(v),
                Err(p) => ItemOutcome::Panicked(p),
            })
            .collect();
    }
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let jobs = opts.jobs.max(1).min(total);
    let (tx, rx) = mpsc::channel();
    let shared = Arc::new(Shared {
        items,
        f,
        next: AtomicUsize::new(0),
        inflight: Mutex::new(HashMap::new()),
        abandoned: Mutex::new(HashSet::new()),
        tx,
    });
    for _ in 0..jobs {
        spawn_worker(Arc::clone(&shared));
    }
    let mut slots: Vec<Option<ItemOutcome<R>>> = (0..total).map(|_| None).collect();
    let mut pending = total;
    while pending > 0 {
        let timeout = next_event_in(&shared.inflight, &opts);
        match rx.recv_timeout(timeout) {
            Ok((i, result)) => {
                if slots[i].is_none() {
                    slots[i] = Some(match result {
                        Ok(v) => ItemOutcome::Done(v),
                        Err(p) => ItemOutcome::Panicked(p),
                    });
                    pending -= 1;
                }
                // A filled slot means the worker raced the hard
                // deadline and lost: the late result is discarded.
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                pending -= enforce_deadlines(&shared, &opts, &mut slots);
            }
            // Unreachable while the supervisor holds `shared` (and its
            // sender); kept as a defensive drain.
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot is decided exactly once"))
        .collect()
}

/// How long the supervisor may sleep before the nearest soft/hard
/// deadline among in-flight items (bounded so new registrations are
/// noticed promptly).
fn next_event_in(inflight: &Mutex<HashMap<usize, InFlight>>, opts: &SupervisorOptions) -> Duration {
    const IDLE_POLL: Duration = Duration::from_millis(25);
    let now = Instant::now();
    let mut nearest: Option<Duration> = None;
    let inflight = inflight.lock().expect("inflight lock");
    for entry in inflight.values() {
        let elapsed = now.saturating_duration_since(entry.start);
        let mut consider = |deadline: Option<Duration>| {
            if let Some(d) = deadline {
                let left = d.saturating_sub(elapsed);
                nearest = Some(nearest.map_or(left, |n: Duration| n.min(left)));
            }
        };
        if !entry.cancelled {
            consider(opts.soft_deadline);
        }
        consider(opts.hard_deadline);
    }
    nearest.map_or(IDLE_POLL, |n| n.clamp(Duration::from_millis(1), IDLE_POLL))
}

/// Raises cancellation at soft deadlines and abandons workers at hard
/// deadlines, spawning replacements. Returns how many slots were
/// decided (as wedged).
fn enforce_deadlines<T, R, F>(
    shared: &Arc<Shared<T, R, F>>,
    opts: &SupervisorOptions,
    slots: &mut [Option<ItemOutcome<R>>],
) -> usize
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    let now = Instant::now();
    let mut wedged: Vec<usize> = Vec::new();
    {
        let mut inflight = shared.inflight.lock().expect("inflight lock");
        for (&i, entry) in inflight.iter_mut() {
            let elapsed = now.saturating_duration_since(entry.start);
            if let Some(soft) = opts.soft_deadline {
                if !entry.cancelled && elapsed >= soft {
                    entry.token.cancel();
                    entry.cancelled = true;
                    watchdog_metrics::CANCELLED.inc();
                }
            }
            if let Some(hard) = opts.hard_deadline {
                if elapsed >= hard {
                    wedged.push(i);
                }
            }
        }
        if !wedged.is_empty() {
            let mut abandoned = shared.abandoned.lock().expect("abandoned lock");
            for &i in &wedged {
                inflight.remove(&i);
                abandoned.insert(i);
            }
        }
    }
    let mut decided = 0;
    for i in wedged {
        if slots[i].is_none() {
            slots[i] = Some(ItemOutcome::Wedged);
            decided += 1;
            watchdog_metrics::WEDGED.inc();
            // The hostage thread is lost to its sleep; restore the
            // batch's parallelism with a fresh worker.
            spawn_worker(Arc::clone(shared));
        }
    }
    decided
}

fn spawn_worker<T, R, F>(shared: Arc<Shared<T, R, F>>)
where
    T: Send + Sync + 'static,
    R: Send + 'static,
    F: Fn(usize, &T) -> R + Send + Sync + 'static,
{
    std::thread::spawn(move || loop {
        let i = shared.next.fetch_add(1, Ordering::Relaxed);
        if i >= shared.items.len() {
            break;
        }
        let token = CancelToken::new();
        shared.inflight.lock().expect("inflight lock").insert(
            i,
            InFlight {
                start: Instant::now(),
                token: token.clone(),
                cancelled: false,
            },
        );
        let result = {
            let _cancel = install_cancel(token);
            pdce_trace::sandbox::catch(|| (shared.f)(i, &shared.items[i])).map_err(|e| ItemPanic {
                index: i,
                message: e.to_string(),
            })
        };
        shared.inflight.lock().expect("inflight lock").remove(&i);
        // If the supervisor already gave up on this item, a
        // replacement worker owns the claim loop now — deliver
        // nothing and retire this thread.
        if shared.abandoned.lock().expect("abandoned lock").remove(&i) {
            break;
        }
        if shared.tx.send((i, result)).is_err() {
            break;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(jobs: usize, soft_ms: u64, hard_ms: u64) -> SupervisorOptions {
        SupervisorOptions {
            jobs,
            soft_deadline: Some(Duration::from_millis(soft_ms)),
            hard_deadline: Some(Duration::from_millis(hard_ms)),
        }
    }

    #[test]
    fn well_behaved_batches_complete_in_order() {
        let items: Vec<u32> = (0..40).collect();
        let out = supervised_map(opts(4, 5_000, 10_000), items, |i, &x| {
            assert_eq!(i as u32, x);
            x * 3
        });
        assert_eq!(out.len(), 40);
        for (i, o) in out.iter().enumerate() {
            match o {
                ItemOutcome::Done(v) => assert_eq!(*v, i as u32 * 3),
                other => panic!("item {i}: {other:?}"),
            }
        }
    }

    #[test]
    fn panics_are_sandboxed_per_item() {
        let out = supervised_map(opts(2, 5_000, 10_000), vec![1u32, 2, 3], |_, &x| {
            if x == 2 {
                panic!("boom {x}");
            }
            x
        });
        assert!(matches!(out[0], ItemOutcome::Done(1)));
        match &out[1] {
            ItemOutcome::Panicked(p) => {
                assert_eq!(p.index, 1);
                assert!(p.message.contains("boom 2"));
            }
            other => panic!("expected panic, got {other:?}"),
        }
        assert!(matches!(out[2], ItemOutcome::Done(3)));
    }

    #[test]
    fn soft_deadline_frees_a_cooperative_staller() {
        // The item loops forever but polls the cancellation flag, as
        // the solvers do at every budget checkpoint.
        let started = Instant::now();
        let out = supervised_map(opts(1, 30, 5_000), vec![()], |_, ()| loop {
            std::thread::sleep(Duration::from_millis(1));
            pdce_trace::budget::check_cancelled();
        });
        match &out[0] {
            ItemOutcome::Panicked(p) => {
                assert!(p.message.contains("cancelled"), "got: {}", p.message)
            }
            other => panic!("expected cancellation, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_secs(4),
            "freed by the soft deadline, not the hard one"
        );
    }

    #[test]
    fn hard_deadline_abandons_a_wedged_worker_and_batch_completes() {
        // Item 0 ignores cancellation entirely; items 1..N must still
        // be served, and the batch must return before item 0 wakes.
        let wedge = Duration::from_secs(3);
        let started = Instant::now();
        let items: Vec<u32> = (0..12).collect();
        let out = supervised_map(opts(2, 20, 120), items, move |_, &x| {
            if x == 0 {
                std::thread::sleep(wedge);
            }
            x + 1
        });
        assert!(
            started.elapsed() < wedge,
            "supervisor must not wait out the hostage"
        );
        assert!(matches!(out[0], ItemOutcome::Wedged), "got {:?}", out[0]);
        for (i, o) in out.iter().enumerate().skip(1) {
            match o {
                ItemOutcome::Done(v) => assert_eq!(*v, i as u32 + 1),
                other => panic!("item {i} lost to the hostage: {other:?}"),
            }
        }
    }

    #[test]
    fn no_deadlines_degrades_to_the_scoped_pool() {
        let out = supervised_map(
            SupervisorOptions {
                jobs: 3,
                ..SupervisorOptions::default()
            },
            (0..10u32).collect(),
            |_, &x| x,
        );
        assert_eq!(out.len(), 10);
        assert!(out
            .iter()
            .enumerate()
            .all(|(i, o)| matches!(o, ItemOutcome::Done(v) if *v == i as u32)));
    }
}
