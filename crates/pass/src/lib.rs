//! The unified pass pipeline for the PDCE workspace.
//!
//! Every transform in the workspace implements [`Pass`] (defined in
//! `pdce-dfa` next to the [`AnalysisCache`] it shares); this crate adds
//! the composition layer:
//!
//! * a **registry** of all passes by stable name ([`create_pass`],
//!   [`registered_passes`]),
//! * a **textual spec language** — `"sccp,lvn,copyprop,lcm,pfe"` runs
//!   passes in order, `repeat(fce,sink)` iterates a group until a full
//!   round leaves the program unchanged (the paper's *exhaustive*
//!   application from Section 5.1),
//! * a [`Pipeline`] builder with per-pass instrumentation: statements
//!   removed/inserted/rewritten, wall time, and analysis-cache hit/miss
//!   deltas per pass ([`PassMetrics`]).
//!
//! # Example
//!
//! ```
//! use pdce_pass::Pipeline;
//! use pdce_ir::parser::parse;
//!
//! let mut prog = parse(
//!     "prog {
//!        block s  { goto n1 }
//!        block n1 { y := a + b; nondet n2 n3 }
//!        block n2 { out(y); goto n4 }
//!        block n3 { y := 4; goto n4 }
//!        block n4 { out(y); goto e }
//!        block e  { halt }
//!      }",
//! )?;
//! let pipeline = Pipeline::parse("repeat(dce,sink)")?;
//! let report = pipeline.run(&mut prog);
//! assert!(report.outcome.changed);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::error::Error;
use std::fmt;
use std::time::Duration;

use pdce_ir::Program;

pub use pdce_dfa::{run_until_stable, AnalysisCache, CacheStats, Pass, PassOutcome, Preserves};

/// Splits every critical edge (Section 2.1). The motion passes split on
/// demand, but an explicit pass lets a pipeline pay the CFG
/// invalidation once, up front.
pub struct SplitEdgesPass;

impl Pass for SplitEdgesPass {
    fn name(&self) -> &'static str {
        "split-edges"
    }

    fn run(&self, prog: &mut Program, _cache: &mut AnalysisCache) -> PassOutcome {
        if pdce_ir::edgesplit::split_critical_edges(prog).is_empty() {
            PassOutcome::unchanged()
        } else {
            PassOutcome {
                changed: true,
                preserves: Preserves::Nothing,
                ..PassOutcome::default()
            }
        }
    }
}

/// Control-flow cleanup: bypasses empty forwarders, merges straight-line
/// chains, drops unreachable blocks.
pub struct SimplifyPass;

impl Pass for SimplifyPass {
    fn name(&self) -> &'static str {
        "simplify"
    }

    fn run(&self, prog: &mut Program, _cache: &mut AnalysisCache) -> PassOutcome {
        let before = prog.revision();
        pdce_ir::simplify_cfg(prog);
        if prog.revision() == before {
            PassOutcome::unchanged()
        } else {
            PassOutcome {
                changed: true,
                preserves: Preserves::Nothing,
                ..PassOutcome::default()
            }
        }
    }
}

/// Every registered pass name, in registry order. `sink` also answers
/// to the paper's name `ask` (assignment sinking).
pub fn registered_passes() -> &'static [&'static str] {
    &[
        "dce",
        "fce",
        "sink",
        "pde",
        "pfe",
        "liveness-dce",
        "duchain-dce",
        "copyprop",
        "lvn",
        "hoist",
        "naive-sink",
        "lcm",
        "sccp",
        "ssa-dce",
        "split-edges",
        "simplify",
    ]
}

/// Instantiates a registered pass by name (`None` for unknown names).
pub fn create_pass(name: &str) -> Option<Box<dyn Pass>> {
    Some(match name {
        "dce" => Box::new(pdce_core::DcePass),
        "fce" => Box::new(pdce_core::FcePass),
        "sink" | "ask" => Box::new(pdce_core::SinkPass),
        "pde" => Box::new(pdce_core::PdePass),
        "pfe" => Box::new(pdce_core::PfePass),
        "liveness-dce" => Box::new(pdce_baselines::LivenessDcePass),
        "duchain-dce" => Box::new(pdce_baselines::DuchainDcePass),
        "copyprop" => Box::new(pdce_baselines::CopyPropPass),
        "lvn" => Box::new(pdce_baselines::LvnPass),
        "hoist" => Box::new(pdce_baselines::HoistPass),
        "naive-sink" => Box::new(pdce_baselines::NaiveSinkPass),
        "lcm" => Box::new(pdce_lcm::LcmPass),
        "sccp" => Box::new(pdce_ssa::SccpPass),
        "ssa-dce" => Box::new(pdce_ssa::SsaDcePass),
        "split-edges" => Box::new(SplitEdgesPass),
        "simplify" => Box::new(SimplifyPass),
        _ => return None,
    })
}

/// A malformed pipeline spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A pass name that is not in the registry.
    UnknownPass(String),
    /// Unbalanced or misplaced parentheses, empty names or groups.
    Syntax(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownPass(name) => {
                write!(f, "unknown pass `{name}` (see registered_passes())")
            }
            SpecError::Syntax(msg) => write!(f, "malformed pipeline spec: {msg}"),
        }
    }
}

impl Error for SpecError {}

enum Step {
    Single(Box<dyn Pass>),
    /// Runs the inner steps repeatedly until a full round leaves the
    /// program's revision unchanged, with the driver's `4 + i·b`
    /// estimate (Section 6.3) as a defensive round cap.
    RepeatUntilStable(Vec<Step>),
}

/// Why a sandboxed pass execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PassError {
    /// The pass panicked; carries the rendered panic message.
    Panicked(String),
    /// The pass exhausted the installed work budget (or hit an
    /// injected `budget:` fault).
    BudgetExhausted(String),
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PassError::Panicked(msg) => write!(f, "panicked: {msg}"),
            PassError::BudgetExhausted(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for PassError {}

/// One recovered pass failure: the pass did not complete, the program
/// was restored from the pre-pass checkpoint, and the pipeline
/// continued in degraded mode (this pass's effect is simply missing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassFailure {
    /// Name of the failing pass.
    pub pass: String,
    /// What went wrong.
    pub error: PassError,
}

impl fmt::Display for PassFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass `{}` {}; rolled back", self.pass, self.error)
    }
}

/// Per-pass accumulated instrumentation (one entry per distinct pass
/// name, in first-execution order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassMetrics {
    /// The pass name.
    pub name: String,
    /// Executions (a pass inside `repeat(...)` runs many times).
    pub runs: u64,
    /// Executions that changed the program.
    pub changed_runs: u64,
    /// Statements removed, summed over runs.
    pub removed: u64,
    /// Statements inserted, summed over runs.
    pub inserted: u64,
    /// Statements or terms rewritten in place, summed over runs.
    pub rewritten: u64,
    /// Wall-clock time spent inside the pass, in nanoseconds.
    pub wall_ns: u128,
    /// Analysis-cache hits/misses attributable to this pass's runs.
    pub cache: CacheStats,
}

/// The result of one [`Pipeline::run`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Merged outcome over every executed pass.
    pub outcome: PassOutcome,
    /// Per-pass metrics, in first-execution order.
    pub passes: Vec<PassMetrics>,
    /// Total analysis-cache counters for the whole run.
    pub cache: CacheStats,
    /// Recovered pass failures, in execution order. Non-empty means
    /// the pipeline ran in degraded mode: each listed pass was rolled
    /// back to its pre-pass checkpoint and skipped.
    pub failures: Vec<PassFailure>,
    /// Checkpoint restores performed (one per entry in `failures`).
    pub rollbacks: u64,
}

impl PipelineReport {
    /// The metrics of pass `name`, if it ran.
    pub fn pass(&self, name: &str) -> Option<&PassMetrics> {
        self.passes.iter().find(|m| m.name == name)
    }

    /// A compact human-readable table of the per-pass metrics. Numeric
    /// columns are right-aligned; `time%` is each pass's share of the
    /// total wall time spent inside passes.
    pub fn render(&self) -> String {
        let total_ns: u128 = self.passes.iter().map(|m| m.wall_ns).sum();
        let name_w = self
            .passes
            .iter()
            .map(|m| m.name.len())
            .max()
            .unwrap_or(0)
            .max("pass".len());
        let mut out = format!(
            "{:<name_w$} {:>5} {:>5} {:>7} {:>7} {:>6} {:>7} {:>6} {:>10} {:>6}\n",
            "pass", "runs", "chg", "-stmts", "+stmts", "rewr", "hits", "miss", "time", "time%"
        );
        for m in &self.passes {
            let pct = if total_ns == 0 {
                0.0
            } else {
                m.wall_ns as f64 * 100.0 / total_ns as f64
            };
            out.push_str(&format!(
                "{:<name_w$} {:>5} {:>5} {:>7} {:>7} {:>6} {:>7} {:>6} {:>10} {:>5.1}%\n",
                m.name,
                m.runs,
                m.changed_runs,
                m.removed,
                m.inserted,
                m.rewritten,
                m.cache.hits(),
                m.cache.misses(),
                format!("{:.2?}", Duration::from_nanos(m.wall_ns as u64)),
                pct,
            ));
        }
        out
    }
}

/// An ordered composition of passes with optional repeat-until-stable
/// groups, sharing one [`AnalysisCache`] across every pass execution.
pub struct Pipeline {
    steps: Vec<Step>,
}

impl Pipeline {
    /// Starts an empty builder.
    pub fn builder() -> PipelineBuilder {
        PipelineBuilder { steps: Vec::new() }
    }

    /// Parses a textual spec: comma-separated registered pass names,
    /// with `repeat(...)` groups iterated until stable. Whitespace is
    /// insignificant. Example: `"sccp,lvn,repeat(fce,sink),simplify"`.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownPass`] for names outside the registry,
    /// [`SpecError::Syntax`] for malformed nesting.
    pub fn parse(spec: &str) -> Result<Pipeline, SpecError> {
        let mut rest = spec;
        let steps = parse_steps(&mut rest, 0)?;
        if steps.is_empty() {
            return Err(SpecError::Syntax("empty pipeline".into()));
        }
        Ok(Pipeline { steps })
    }

    /// Runs the pipeline on `prog` with a fresh [`AnalysisCache`].
    pub fn run(&self, prog: &mut Program) -> PipelineReport {
        self.run_with_cache(prog, &mut AnalysisCache::new())
    }

    /// Runs the pipeline sharing the caller's [`AnalysisCache`] (for
    /// chaining pipelines over one program without losing warm
    /// analyses).
    pub fn run_with_cache(&self, prog: &mut Program, cache: &mut AnalysisCache) -> PipelineReport {
        let mut report = PipelineReport {
            outcome: PassOutcome::unchanged(),
            ..PipelineReport::default()
        };
        let baseline = cache.stats();
        let cap = pdce_core::PdceConfig::default_round_cap(prog);
        let mut checkpoint = None;
        run_steps(&self.steps, prog, cache, cap, &mut report, &mut checkpoint);
        report.cache = cache.stats().since(&baseline);
        report
    }
}

/// Registry handles for the per-pass histogram families. Handles are
/// cached per thread so the hot path never takes the registration lock;
/// pass names are `&'static str` from [`Pass::name`], which makes them
/// usable as both map keys and label values.
mod pass_metrics {
    use pdce_metrics::{global, Histogram, Stability};
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::rc::Rc;
    use std::sync::Arc;

    pub struct Handles {
        pub wall_ns: Arc<Histogram>,
        pub alloc_bytes: Arc<Histogram>,
        pub allocs: Arc<Histogram>,
    }

    thread_local! {
        static HANDLES: RefCell<HashMap<&'static str, Rc<Handles>>> =
            RefCell::new(HashMap::new());
    }

    pub fn for_pass(name: &'static str) -> Rc<Handles> {
        HANDLES.with(|map| {
            Rc::clone(map.borrow_mut().entry(name).or_insert_with(|| {
                Rc::new(Handles {
                    wall_ns: global().histogram(
                        "pdce_pass_wall_ns",
                        "Per-pass wall time in nanoseconds",
                        Stability::Timing,
                        &[("pass", name)],
                    ),
                    alloc_bytes: global().histogram(
                        "pdce_pass_alloc_bytes",
                        "Bytes allocated per pass execution (moves only with --features alloc-metrics)",
                        Stability::Timing,
                        &[("pass", name)],
                    ),
                    allocs: global().histogram(
                        "pdce_pass_allocs",
                        "Allocations per pass execution (moves only with --features alloc-metrics)",
                        Stability::Timing,
                        &[("pass", name)],
                    ),
                })
            }))
        })
    }
}

/// The pre-pass snapshot: `(revision, program)`. Keyed by the revision
/// counter so consecutive passes that leave the program untouched (or
/// a rollback that restored this very revision) reuse one clone
/// instead of re-snapshotting per pass.
type Checkpoint = Option<(u64, Program)>;

fn run_steps(
    steps: &[Step],
    prog: &mut Program,
    cache: &mut AnalysisCache,
    cap: usize,
    report: &mut PipelineReport,
    checkpoint: &mut Checkpoint,
) {
    for step in steps {
        match step {
            Step::Single(pass) => {
                let cache_before = cache.stats();
                // Checkpoint the program unless the current revision is
                // already snapshotted.
                let rev = prog.revision();
                if checkpoint.as_ref().map(|(r, _)| *r) != Some(rev) {
                    *checkpoint = Some((rev, prog.clone()));
                }
                // One span per pass execution; the same guard supplies
                // the wall time for `PassMetrics` whether or not a
                // tracer is installed.
                let alloc_before = pdce_metrics::alloc::snapshot();
                let span = pdce_trace::timed_span("pass", pass.name());
                // The sandbox turns a panicking (or budget-exhausted)
                // pass into a structured failure; the checkpoint makes
                // the half-applied transform unwind-safe to discard.
                let result = pdce_trace::sandbox::catch(|| {
                    pdce_trace::fault::fire(pass.name());
                    pass.run(prog, cache)
                });
                let outcome = result.as_ref().ok();
                let elapsed = span.finish_with(if pdce_trace::enabled() {
                    match outcome {
                        Some(outcome) => vec![
                            ("changed", u64::from(outcome.changed).into()),
                            ("removed", outcome.removed.into()),
                            ("inserted", outcome.inserted.into()),
                            ("rewritten", outcome.rewritten.into()),
                        ],
                        None => vec![("failed", 1u64.into())],
                    }
                } else {
                    Vec::new()
                });
                let metrics = match report.passes.iter_mut().find(|m| m.name == pass.name()) {
                    Some(m) => m,
                    None => {
                        report.passes.push(PassMetrics {
                            name: pass.name().to_string(),
                            ..PassMetrics::default()
                        });
                        report.passes.last_mut().expect("just pushed")
                    }
                };
                metrics.runs += 1;
                metrics.wall_ns += elapsed;
                let handles = pass_metrics::for_pass(pass.name());
                handles.wall_ns.observe(elapsed as u64);
                if pdce_metrics::alloc::active() {
                    let alloc = pdce_metrics::alloc::snapshot().since(&alloc_before);
                    handles.alloc_bytes.observe(alloc.bytes);
                    handles.allocs.observe(alloc.allocs);
                }
                match result {
                    Ok(outcome) => {
                        report.outcome.merge(&outcome);
                        metrics.changed_runs += u64::from(outcome.changed);
                        metrics.removed += outcome.removed;
                        metrics.inserted += outcome.inserted;
                        metrics.rewritten += outcome.rewritten;
                        let delta = cache.stats().since(&cache_before);
                        metrics.cache.cfg_hits += delta.cfg_hits;
                        metrics.cache.cfg_misses += delta.cfg_misses;
                        metrics.cache.dom_hits += delta.dom_hits;
                        metrics.cache.dom_misses += delta.dom_misses;
                        metrics.cache.analysis_hits += delta.analysis_hits;
                        metrics.cache.analysis_misses += delta.analysis_misses;
                    }
                    Err(err) => {
                        // Restore the checkpoint and drop the cache:
                        // the pass may have died mid-mutation, and
                        // half-updated analyses must not survive it.
                        let (_, snapshot) = checkpoint.as_ref().expect("checkpointed above");
                        *prog = snapshot.clone();
                        *cache = AnalysisCache::new();
                        report.rollbacks += 1;
                        let error = match err {
                            pdce_trace::sandbox::SandboxError::Panic(msg) => {
                                PassError::Panicked(msg)
                            }
                            pdce_trace::sandbox::SandboxError::Budget(b) => {
                                PassError::BudgetExhausted(b.to_string())
                            }
                        };
                        pdce_trace::instant(
                            "resilience",
                            "pass-rollback",
                            if pdce_trace::enabled() {
                                vec![("pass", pass.name().into())]
                            } else {
                                Vec::new()
                            },
                        );
                        report.failures.push(PassFailure {
                            pass: pass.name().to_string(),
                            error,
                        });
                    }
                }
            }
            Step::RepeatUntilStable(inner) => {
                for i in 0..cap {
                    // Each iteration is one global round: provenance
                    // recorded by the inner passes carries it, and the
                    // trace shows one `round` span per iteration.
                    let _round = pdce_trace::round_scope(i as u64 + 1);
                    let before = prog.revision();
                    run_steps(inner, prog, cache, cap, report, checkpoint);
                    if prog.revision() == before {
                        break;
                    }
                }
            }
        }
    }
}

/// Builder for programmatic pipeline construction (the spec string is
/// the shorthand; the builder accepts arbitrary [`Pass`] values,
/// including ones outside the registry).
pub struct PipelineBuilder {
    steps: Vec<Step>,
}

impl PipelineBuilder {
    /// Appends a pass value.
    pub fn pass(mut self, pass: Box<dyn Pass>) -> PipelineBuilder {
        self.steps.push(Step::Single(pass));
        self
    }

    /// Appends a registered pass by name.
    ///
    /// # Errors
    ///
    /// [`SpecError::UnknownPass`] if the name is not registered.
    pub fn named(self, name: &str) -> Result<PipelineBuilder, SpecError> {
        let pass = create_pass(name).ok_or_else(|| SpecError::UnknownPass(name.to_string()))?;
        Ok(self.pass(pass))
    }

    /// Appends a repeat-until-stable group built by `build` (the
    /// paper's *exhaustive* application of an elimination/sink pair).
    pub fn repeat_until_stable(
        mut self,
        build: impl FnOnce(PipelineBuilder) -> PipelineBuilder,
    ) -> PipelineBuilder {
        let inner = build(Pipeline::builder());
        self.steps.push(Step::RepeatUntilStable(inner.steps));
        self
    }

    /// Finishes the pipeline.
    pub fn build(self) -> Pipeline {
        Pipeline { steps: self.steps }
    }
}

/// Recursive-descent spec parser. `depth` tracks `repeat(` nesting so
/// `)` placement can be validated.
fn parse_steps(rest: &mut &str, depth: usize) -> Result<Vec<Step>, SpecError> {
    let mut steps = Vec::new();
    loop {
        *rest = rest.trim_start();
        if rest.is_empty() {
            if depth > 0 {
                return Err(SpecError::Syntax("unclosed `repeat(`".into()));
            }
            return Ok(steps);
        }
        if let Some(after) = rest.strip_prefix(')') {
            if depth == 0 {
                return Err(SpecError::Syntax("unmatched `)`".into()));
            }
            *rest = after;
            return Ok(steps);
        }
        if let Some(after) = rest.strip_prefix(',') {
            *rest = after;
            continue;
        }
        let name_len = rest.find([',', '(', ')']).unwrap_or(rest.len());
        let name = rest[..name_len].trim();
        let after_name = &rest[name_len..];
        if let Some(group) = after_name.strip_prefix('(') {
            if name != "repeat" {
                return Err(SpecError::Syntax(format!(
                    "only `repeat(...)` groups are supported, got `{name}(`"
                )));
            }
            *rest = group;
            let inner = parse_steps(rest, depth + 1)?;
            if inner.is_empty() {
                return Err(SpecError::Syntax("empty `repeat()` group".into()));
            }
            steps.push(Step::RepeatUntilStable(inner));
            continue;
        }
        if name.is_empty() {
            return Err(SpecError::Syntax("empty pass name".into()));
        }
        let pass = create_pass(name).ok_or_else(|| SpecError::UnknownPass(name.to_string()))?;
        steps.push(Step::Single(pass));
        *rest = after_name;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::parser::parse;

    fn fig1() -> Program {
        parse(
            "prog {
               block s  { goto n1 }
               block n1 { y := a + b; nondet n2 n3 }
               block n2 { out(y); goto n4 }
               block n3 { y := 4; goto n4 }
               block n4 { out(y); goto e }
               block e  { halt }
             }",
        )
        .unwrap()
    }

    #[test]
    fn every_registered_name_instantiates() {
        for name in registered_passes() {
            let pass = create_pass(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(&pass.name(), name);
        }
        assert!(create_pass("nope").is_none());
    }

    #[test]
    fn spec_parser_accepts_nested_repeat() {
        assert!(Pipeline::parse("sccp,lvn,copyprop,lcm,pfe").is_ok());
        assert!(Pipeline::parse("repeat(fce, sink)").is_ok());
        assert!(Pipeline::parse(" repeat( dce , repeat(sink) ) , simplify ").is_ok());
    }

    #[test]
    fn spec_parser_rejects_malformed_input() {
        assert!(matches!(
            Pipeline::parse("dce,bogus"),
            Err(SpecError::UnknownPass(n)) if n == "bogus"
        ));
        assert!(matches!(Pipeline::parse(""), Err(SpecError::Syntax(_))));
        assert!(matches!(
            Pipeline::parse("repeat(dce"),
            Err(SpecError::Syntax(_))
        ));
        assert!(matches!(Pipeline::parse("dce)"), Err(SpecError::Syntax(_))));
        assert!(matches!(
            Pipeline::parse("loop(dce)"),
            Err(SpecError::Syntax(_))
        ));
        assert!(matches!(
            Pipeline::parse("repeat()"),
            Err(SpecError::Syntax(_))
        ));
    }

    #[test]
    fn repeat_group_matches_the_driver() {
        // repeat(dce,sink) is the paper's pde; both must reach Figure 2.
        let mut via_pipeline = fig1();
        let report = Pipeline::parse("repeat(dce,sink)")
            .unwrap()
            .run(&mut via_pipeline);
        let mut via_driver = fig1();
        pdce_core::driver::pde(&mut via_driver).unwrap();
        assert_eq!(
            pdce_ir::printer::canonical_string(&via_pipeline),
            pdce_ir::printer::canonical_string(&via_driver),
        );
        assert!(report.outcome.changed);
        let dce = report.pass("dce").unwrap();
        assert!(dce.runs >= 2, "repeat ran the group to stability");
    }

    #[test]
    fn pipeline_shares_the_cache_across_passes() {
        let mut prog = fig1();
        let report = Pipeline::parse("dce,fce,sink").unwrap().run(&mut prog);
        // dce builds the CfgView; on Figure 1 neither dce nor fce remove
        // anything, so fce and sink are served from the cache.
        assert!(report.cache.cfg_hits >= 1, "cache: {:?}", report.cache);
    }

    #[test]
    fn builder_composes_custom_passes() {
        struct Nop;
        impl Pass for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn run(&self, _: &mut Program, _: &mut AnalysisCache) -> PassOutcome {
                PassOutcome::unchanged()
            }
        }
        let pipeline = Pipeline::builder()
            .pass(Box::new(Nop))
            .repeat_until_stable(|b| b.named("fce").unwrap().named("sink").unwrap())
            .build();
        let mut prog = fig1();
        let report = pipeline.run(&mut prog);
        assert_eq!(report.pass("nop").unwrap().runs, 1);
        assert!(report.pass("fce").unwrap().runs >= 2);
        assert_eq!(prog.num_assignments(), 2, "Figure 2 reached");
    }

    /// A pass that mutates the program and then dies: the checkpoint
    /// must undo the partial mutation.
    struct HalfwayPanic;
    impl Pass for HalfwayPanic {
        fn name(&self) -> &'static str {
            "halfway-panic"
        }
        fn run(&self, prog: &mut Program, _: &mut AnalysisCache) -> PassOutcome {
            let entry = prog.entry();
            prog.stmts_mut(entry).clear();
            panic!("died mid-transform");
        }
    }

    #[test]
    fn panicking_pass_is_rolled_back_and_pipeline_continues() {
        let pipeline = Pipeline::builder()
            .pass(Box::new(HalfwayPanic))
            .named("pfe")
            .unwrap()
            .build();
        let mut prog = fig1();
        let report = pipeline.run(&mut prog);
        // The failure is structured, the partial mutation is gone, and
        // pfe still ran on the restored program.
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].pass, "halfway-panic");
        assert!(matches!(
            report.failures[0].error,
            PassError::Panicked(ref m) if m.contains("died mid-transform")
        ));
        assert!(report.pass("pfe").unwrap().changed_runs >= 1);
        let mut want = fig1();
        pdce_core::driver::pfe(&mut want).unwrap();
        assert_eq!(
            pdce_ir::printer::canonical_string(&prog),
            pdce_ir::printer::canonical_string(&want)
        );
    }

    #[test]
    fn injected_pass_panic_is_recovered() {
        let mut prog = fig1();
        let report = pdce_trace::fault::with_faults("panic:dce:1", || {
            Pipeline::parse("repeat(dce,sink)").unwrap().run(&mut prog)
        });
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.failures[0].pass, "dce");
        // Later dce runs of the repeat group still reach Figure 2.
        assert_eq!(prog.num_assignments(), 2);
    }

    #[test]
    fn injected_budget_fault_is_classified() {
        let mut prog = fig1();
        let report = pdce_trace::fault::with_faults("budget:lvn:1", || {
            Pipeline::parse("lvn,pfe").unwrap().run(&mut prog)
        });
        assert!(matches!(
            report.failures[0].error,
            PassError::BudgetExhausted(_)
        ));
        assert_eq!(prog.num_assignments(), 2, "pfe still ran");
    }

    #[test]
    fn metrics_track_runs_and_removals() {
        let mut prog = fig1();
        let report = Pipeline::parse("pfe").unwrap().run(&mut prog);
        let m = report.pass("pfe").unwrap();
        assert_eq!(m.runs, 1);
        assert_eq!(m.changed_runs, 1);
        assert!(m.removed >= 1);
        assert!(!report.render().is_empty());
    }
}
