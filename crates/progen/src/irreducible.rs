//! Random irreducible control flow.
//!
//! The paper stresses that its algorithm "captures arbitrary control
//! flow structures", including irreducible loops (Figure 5). This
//! generator starts from a structured program and adds random extra
//! nondeterministic edges, which creates multi-entry (irreducible)
//! regions and critical edges.

use pdce_ir::{NodeId, Program, Terminator};
use pdce_rng::Rng;

use crate::structured::{structured, GenConfig};

/// Generates a random program with extra edges; with enough extra edges
/// the result is usually irreducible.
pub fn tangled(config: &GenConfig, extra_edges: usize) -> Program {
    let mut prog = structured(&GenConfig {
        nondet: true,
        ..config.clone()
    });
    let mut rng = Rng::new(config.seed ^ 0x7_a917);
    let candidates: Vec<NodeId> = prog
        .node_ids()
        .filter(|&n| n != prog.entry() && n != prog.exit())
        .collect();
    if candidates.len() < 2 {
        return prog;
    }
    for _ in 0..extra_edges {
        let from = *rng.choose(&candidates);
        let to = *rng.choose(&candidates);
        if from == to {
            continue;
        }
        let term = &mut prog.block_mut(from).term;
        match term {
            Terminator::Goto(t) if *t != to => *term = Terminator::Nondet(vec![*t, to]),
            Terminator::Nondet(targets) if !targets.contains(&to) => targets.push(to),
            _ => {}
        }
    }
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::validate::validate;
    use pdce_ir::CfgView;

    #[test]
    fn tangled_programs_remain_valid() {
        for seed in 0..20 {
            let p = tangled(
                &GenConfig {
                    seed,
                    target_blocks: 16,
                    ..GenConfig::default()
                },
                8,
            );
            assert_eq!(validate(&p), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn some_seeds_are_irreducible() {
        let mut irreducible = 0;
        for seed in 0..20 {
            let p = tangled(
                &GenConfig {
                    seed,
                    target_blocks: 16,
                    ..GenConfig::default()
                },
                8,
            );
            if !CfgView::new(&p).is_reducible() {
                irreducible += 1;
            }
        }
        assert!(irreducible > 0, "no irreducible graph in 20 seeds");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = GenConfig {
            seed: 3,
            ..GenConfig::default()
        };
        let a = tangled(&cfg, 5);
        let b = tangled(&cfg, 5);
        assert_eq!(
            pdce_ir::printer::canonical_string(&a),
            pdce_ir::printer::canonical_string(&b)
        );
    }
}
