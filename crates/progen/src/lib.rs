//! Random and parametric program generators for the PDCE reproduction.
//!
//! * [`structured`](mod@structured) — seeded random structured programs (sequences,
//!   diamonds, bounded loops) for property tests and scaling sweeps;
//! * [`irreducible`] — tangled variants with extra edges (multi-entry
//!   loops, critical edges), exercising the "arbitrary control flow"
//!   claim;
//! * [`shapes`] — deterministic workload families tied to specific
//!   claims: the diamond ladder (structured-scaling), the faint chain
//!   (dce-pass vs fce-pass counts), the second-order tower (round count
//!   `r`), the corridor (long-distance sinking in one round), and the
//!   Figure 5 irreducible shape.

pub mod irreducible;
pub mod shapes;
pub mod structured;

pub use irreducible::tangled;
pub use shapes::{
    corridor, diamond_ladder, faint_chain, irreducible_fig5, many_defs_many_uses,
    second_order_tower,
};
pub use structured::{structured, GenConfig};
