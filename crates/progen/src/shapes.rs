//! Deterministic workload families for the complexity experiments
//! (Section 6 of the paper) and the dynamic-count benchmarks.

use pdce_ir::{Block, NodeId, Program, Stmt, Terminator};

/// A ladder of `n` diamonds; the `k`-th diamond carries a partially dead
//  assignment that pde must sink into one arm.
/// Every diamond looks like Figure 1, so the sinking workload grows
/// linearly with `n` while the CFG stays shallow — the paper's
/// "realistic structured program" regime where pde should behave
/// quadratically or better.
pub fn diamond_ladder(n: usize) -> Program {
    let mut p = Program::new();
    let exit = p.exit();
    let mut blocks: Vec<NodeId> = Vec::new();
    for k in 0..n {
        let a = p.var("a");
        let b = p.var("b");
        let y = p.var(&format!("y{k}"));
        let ta = p.terms_mut().var(a);
        let tb = p.terms_mut().var(b);
        let sum = p.terms_mut().binary(pdce_ir::BinOp::Add, ta, tb);
        let four = p.terms_mut().constant(4 + k as i64);
        let ty = p.terms_mut().var(y);

        let join = p
            .add_block(Block::new(format!("j{k}"), Terminator::Goto(exit)))
            .expect("unique");
        p.block_mut(join).stmts = vec![Stmt::Out(ty)];
        let left = p
            .add_block(Block::new(format!("l{k}"), Terminator::Goto(join)))
            .expect("unique");
        p.block_mut(left).stmts = vec![Stmt::Assign { lhs: y, rhs: four }];
        let right = p
            .add_block(Block::new(format!("r{k}"), Terminator::Goto(join)))
            .expect("unique");
        let head = p
            .add_block(Block::new(
                format!("h{k}"),
                Terminator::Nondet(vec![left, right]),
            ))
            .expect("unique");
        p.block_mut(head).stmts = vec![Stmt::Assign { lhs: y, rhs: sum }];
        blocks.push(head);
        blocks.push(join);
    }
    // Chain the diamonds: j{k} -> h{k+1}.
    for w in blocks.chunks(2).collect::<Vec<_>>().windows(2) {
        let join = w[0][1];
        let next_head = w[1][0];
        p.block_mut(join).term = Terminator::Goto(next_head);
    }
    let first = blocks.first().copied().unwrap_or(exit);
    p.block_mut(p.entry()).term = Terminator::Goto(first);
    if let Some(chunk) = blocks.chunks(2).last() {
        p.block_mut(chunk[1]).term = Terminator::Goto(exit);
    }
    p
}

/// A straight-line *faint chain*: `x1 := x0 + 1; …; xn := x(n-1) + 1`
/// with nothing observed. Dead-code elimination needs `n` passes (each
/// pass kills only the last link), faint-code elimination one — the
/// pass-count experiment for Section 5.2/6.
pub fn faint_chain(n: usize) -> Program {
    let mut p = Program::new();
    let exit = p.exit();
    let b = p
        .add_block(Block::new("chain", Terminator::Goto(exit)))
        .expect("unique");
    let mut stmts = Vec::with_capacity(n + 1);
    for k in 1..=n {
        let prev = p.var(&format!("x{}", k - 1));
        let cur = p.var(&format!("x{k}"));
        let tp = p.terms_mut().var(prev);
        let one = p.terms_mut().constant(1);
        let rhs = p.terms_mut().binary(pdce_ir::BinOp::Add, tp, one);
        stmts.push(Stmt::Assign { lhs: cur, rhs });
    }
    let seven = p.terms_mut().constant(7);
    stmts.push(Stmt::Out(seven));
    p.block_mut(b).stmts = stmts;
    p.block_mut(p.entry()).term = Terminator::Goto(b);
    p
}

/// The second-order tower: one block holding the chain
/// `y1 := y2 + 1; y2 := y3 + 1; …; yn := 1`, branching to an arm that
/// observes every `y` and an arm that observes nothing. Each global
/// pde round can only sink the *last* (unblocked) link, so the round
/// count `r` grows linearly with `n` — the Section 6.3 experiment for
/// the paper's conjecture that `r` is linear in the instruction count.
pub fn second_order_tower(n: usize) -> Program {
    let mut p = Program::new();
    let exit = p.exit();

    // Observing arm: out(y1 + y2 + ... + yn).
    let mut sum = p.terms_mut().constant(0);
    for k in 1..=n {
        let y = p.var(&format!("y{k}"));
        let ty = p.terms_mut().var(y);
        sum = p.terms_mut().binary(pdce_ir::BinOp::Add, sum, ty);
    }
    let obs = p
        .add_block(Block::new("obs", Terminator::Goto(exit)))
        .expect("unique");
    p.block_mut(obs).stmts = vec![Stmt::Out(sum)];
    let silent = p
        .add_block(Block::new("silent", Terminator::Goto(exit)))
        .expect("unique");
    let zero = p.terms_mut().constant(0);
    p.block_mut(silent).stmts = vec![Stmt::Out(zero)];

    let chain = p
        .add_block(Block::new("chain", Terminator::Nondet(vec![obs, silent])))
        .expect("unique");
    let mut stmts = Vec::with_capacity(n);
    for k in 1..=n {
        let cur = p.var(&format!("y{k}"));
        let rhs = if k == n {
            p.terms_mut().constant(1)
        } else {
            let next = p.var(&format!("y{}", k + 1));
            let tn = p.terms_mut().var(next);
            let one = p.terms_mut().constant(1);
            p.terms_mut().binary(pdce_ir::BinOp::Add, tn, one)
        };
        stmts.push(Stmt::Assign { lhs: cur, rhs });
    }
    p.block_mut(chain).stmts = stmts;
    p.block_mut(p.entry()).term = Terminator::Goto(chain);
    p
}

/// A long transparent corridor: an assignment at the top, `n` empty
/// blocks, one use at the bottom. One `ask` pass must carry the
/// assignment the whole way (long-distance sinking is a single
/// delayability solve, not `n` rounds).
pub fn corridor(n: usize) -> Program {
    let mut p = Program::new();
    let exit = p.exit();
    let x = p.var("x");
    let a = p.var("a");
    let ta = p.terms_mut().var(a);
    let one = p.terms_mut().constant(1);
    let rhs = p.terms_mut().binary(pdce_ir::BinOp::Add, ta, one);
    let tx = p.terms_mut().var(x);

    let last = p
        .add_block(Block::new("use", Terminator::Goto(exit)))
        .expect("unique");
    p.block_mut(last).stmts = vec![Stmt::Out(tx)];
    let mut next = last;
    for k in (0..n).rev() {
        next = p
            .add_block(Block::new(format!("c{k}"), Terminator::Goto(next)))
            .expect("unique");
    }
    let top = p
        .add_block(Block::new("top", Terminator::Goto(next)))
        .expect("unique");
    p.block_mut(top).stmts = vec![Stmt::Assign { lhs: x, rhs }];
    p.block_mut(p.entry()).term = Terminator::Goto(top);
    p
}

/// The def-use-graph worst case of Section 5.2: `k` definitions of the
/// same variable on `k` branches, merged, followed by `k` uses — the
/// du-graph has `Θ(k²)` edges while the program has `Θ(k)` instructions.
pub fn many_defs_many_uses(k: usize) -> Program {
    let mut p = Program::new();
    let exit = p.exit();
    let x = p.var("x");
    let tx = p.terms_mut().var(x);

    let uses = p
        .add_block(Block::new("uses", Terminator::Goto(exit)))
        .expect("unique");
    p.block_mut(uses).stmts = (0..k).map(|_| Stmt::Out(tx)).collect();

    let mut arms = Vec::with_capacity(k);
    for i in 0..k {
        let arm = p
            .add_block(Block::new(format!("d{i}"), Terminator::Goto(uses)))
            .expect("unique");
        let c = p.terms_mut().constant(i as i64);
        p.block_mut(arm).stmts = vec![Stmt::Assign { lhs: x, rhs: c }];
        arms.push(arm);
    }
    p.block_mut(p.entry()).term = Terminator::Nondet(arms);
    p
}

/// The Figure 5/6 irreducible shape, parameterized: an assignment before
/// an irreducible two-entry region, followed by a loop that uses the
/// variable on one arm.
pub fn irreducible_fig5() -> Program {
    pdce_ir::parser::parse(
        "prog {
           block n1 { x := a + b; nondet n2 n3 }
           block n2 { nondet n3 n4x }
           block n3 { nondet n2 n4x }
           block n4x { goto n4 }
           block n4 { nondet n5 n6 }
           block n6 { x := c + 1; out(x); goto n10 }
           block n5 { goto n7 }
           block n7 { y := y + x; nondet n7x n9 }
           block n7x { goto n7 }
           block n9 { out(y); goto n10 }
           block n10 { goto e }
           block e { halt }
         }",
    )
    .expect("static shape parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::validate::validate;
    use pdce_ir::CfgView;

    #[test]
    fn ladder_is_valid_and_sized() {
        for n in [1, 3, 10] {
            let p = diamond_ladder(n);
            assert_eq!(validate(&p), Ok(()), "n={n}");
            assert_eq!(p.num_blocks(), 2 + 4 * n);
            assert_eq!(p.num_assignments(), 2 * n);
        }
    }

    #[test]
    fn faint_chain_shape() {
        let p = faint_chain(5);
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(p.num_assignments(), 5);
    }

    #[test]
    fn tower_shape() {
        let p = second_order_tower(4);
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(p.num_assignments(), 4);
    }

    #[test]
    fn corridor_shape() {
        let p = corridor(10);
        assert_eq!(validate(&p), Ok(()));
        assert_eq!(p.num_blocks(), 14);
    }

    #[test]
    fn fig5_is_irreducible() {
        let p = irreducible_fig5();
        assert_eq!(validate(&p), Ok(()));
        assert!(!CfgView::new(&p).is_reducible());
    }
}
