//! Random structured program generation.
//!
//! Generates well-formed programs from a seeded RNG: sequences,
//! if-diamonds, and bounded loops, filled with random assignments and
//! observable `out` statements. Loops use dedicated counter variables
//! (disjoint from the assignment pool) so conditionally-branching
//! programs always terminate — a requirement for the interpreter-based
//! semantics-preservation property tests.

use pdce_ir::{Block, NodeId, Program, Stmt, TermData, Terminator};
use pdce_rng::Rng;

/// Configuration of the structured generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed; equal seeds generate equal programs.
    pub seed: u64,
    /// Approximate number of basic blocks to generate.
    pub target_blocks: usize,
    /// Size of the ordinary variable pool (`v0..`).
    pub num_vars: usize,
    /// Statements per straight-line block: `min..=max`.
    pub stmts_per_block: (usize, usize),
    /// Probability that a generated statement is `out(...)`.
    pub out_prob: f64,
    /// Probability of starting a loop (vs. an if) for a nested region.
    pub loop_prob: f64,
    /// Maximum nesting depth of regions.
    pub max_depth: usize,
    /// Maximum depth of generated expression trees.
    pub expr_depth: usize,
    /// Use nondeterministic branches (paper-style) instead of
    /// conditional ones. Nondet loops may diverge; use conditional mode
    /// for interpreter-based testing.
    pub nondet: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            seed: 0,
            target_blocks: 24,
            num_vars: 6,
            stmts_per_block: (1, 4),
            out_prob: 0.2,
            loop_prob: 0.35,
            max_depth: 3,
            expr_depth: 2,
            nondet: false,
        }
    }
}

struct Gen {
    rng: Rng,
    prog: Program,
    config: GenConfig,
    blocks_made: usize,
    loops_made: usize,
}

/// Generates a random structured program.
pub fn structured(config: &GenConfig) -> Program {
    let mut g = Gen {
        rng: Rng::new(config.seed),
        prog: Program::new(),
        config: config.clone(),
        blocks_made: 0,
        loops_made: 0,
    };
    // Pre-intern the variable pool for stable indices.
    for i in 0..config.num_vars {
        g.prog.var(&format!("v{i}"));
    }
    let exit = g.prog.exit();
    let first = g.region(g.config.max_depth, exit);
    g.prog.block_mut(g.prog.entry()).term = Terminator::Goto(first);
    // Make every variable's final value observable at the end with some
    // probability, so programs are not trivially all-dead.
    let obs: Vec<Stmt> = (0..config.num_vars)
        .filter(|_| g.rng.gen_bool(0.5))
        .map(|i| {
            let v = g.prog.vars().lookup(&format!("v{i}")).expect("pooled");
            let t = g.prog.terms_mut().var(v);
            Stmt::Out(t)
        })
        .collect();
    g.prog.block_mut(exit).stmts = obs;
    g.prog
}

impl Gen {
    fn fresh_block(&mut self, to: NodeId) -> NodeId {
        self.blocks_made += 1;
        let name = format!("b{}", self.blocks_made);
        self.prog
            .add_block(Block::new(name, Terminator::Goto(to)))
            .expect("generated names are unique")
    }

    fn budget_left(&self) -> bool {
        self.blocks_made < self.config.target_blocks
    }

    /// Generates a region that ultimately jumps to `cont`; returns its
    /// first block.
    fn region(&mut self, depth: usize, cont: NodeId) -> NodeId {
        if depth == 0 || !self.budget_left() {
            return self.basic(cont);
        }
        let roll: f64 = self.rng.gen_f64();
        if roll < 0.4 {
            // Sequence of two regions.
            let second = self.region(depth - 1, cont);
            self.region(depth - 1, second)
        } else if roll < 0.4 + self.config.loop_prob {
            self.looped(depth, cont)
        } else {
            self.diamond(depth, cont)
        }
    }

    fn basic(&mut self, cont: NodeId) -> NodeId {
        let b = self.fresh_block(cont);
        let (lo, hi) = self.config.stmts_per_block;
        let count = self.rng.gen_range_inclusive(lo, hi);
        let stmts: Vec<Stmt> = (0..count).map(|_| self.stmt()).collect();
        self.prog.block_mut(b).stmts = stmts;
        b
    }

    fn diamond(&mut self, depth: usize, cont: NodeId) -> NodeId {
        let join = self.basic(cont);
        let left = self.region(depth - 1, join);
        let right = self.region(depth - 1, join);
        let head = self.fresh_block(cont);
        self.prog.block_mut(head).term = if self.config.nondet {
            Terminator::Nondet(vec![left, right])
        } else {
            let cond = self.expr(self.config.expr_depth);
            Terminator::Cond {
                cond,
                then_to: left,
                else_to: right,
            }
        };
        head
    }

    fn looped(&mut self, depth: usize, cont: NodeId) -> NodeId {
        self.loops_made += 1;
        let loop_id = self.loops_made; // nested loops bump the counter
        let header = self.fresh_block(cont);
        let latch = self.fresh_block(header);
        let body = self.region(depth - 1, latch);
        if self.config.nondet {
            self.prog.block_mut(header).term = Terminator::Nondet(vec![body, cont]);
        } else {
            // Bounded loop on a dedicated counter: i := 0 before the
            // header is folded into the header itself (reset on entry is
            // wrong for nested re-entry — instead the latch increments
            // and the exit resets).
            let ctr = self.prog.var(&format!("i{loop_id}"));
            let bound = self.rng.gen_range_i64(1, 4);
            let tc = self.prog.terms_mut().var(ctr);
            let tb = self.prog.terms_mut().constant(bound);
            let cond = self.prog.terms_mut().binary(pdce_ir::BinOp::Lt, tc, tb);
            self.prog.block_mut(header).term = Terminator::Cond {
                cond,
                then_to: body,
                else_to: cont,
            };
            // Latch: i := i + 1.
            let one = self.prog.terms_mut().constant(1);
            let inc = self.prog.terms_mut().binary(pdce_ir::BinOp::Add, tc, one);
            self.prog.block_mut(latch).stmts = vec![Stmt::Assign { lhs: ctr, rhs: inc }];
            // Counter reset after the loop so outer iterations rerun it:
            // place `i := 0` in a preheader.
            let zero = self.prog.terms_mut().constant(0);
            let pre = self.fresh_block(header);
            self.prog.block_mut(pre).stmts = vec![Stmt::Assign {
                lhs: ctr,
                rhs: zero,
            }];
            return pre;
        }
        header
    }

    fn stmt(&mut self) -> Stmt {
        if self.rng.gen_bool(self.config.out_prob) {
            Stmt::Out(self.expr(self.config.expr_depth))
        } else {
            let v = self.random_var();
            Stmt::Assign {
                lhs: v,
                rhs: self.expr(self.config.expr_depth),
            }
        }
    }

    fn random_var(&mut self) -> pdce_ir::Var {
        let i = self.rng.gen_range(0, self.config.num_vars);
        self.prog
            .vars()
            .lookup(&format!("v{i}"))
            .expect("pool pre-interned")
    }

    fn expr(&mut self, depth: usize) -> pdce_ir::TermId {
        if depth == 0 || self.rng.gen_bool(0.4) {
            if self.rng.gen_bool(0.5) {
                let v = self.random_var();
                self.prog.terms_mut().var(v)
            } else {
                let c = self.rng.gen_range_i64(-4, 10);
                self.prog.terms_mut().constant(c)
            }
        } else {
            let ops = [
                pdce_ir::BinOp::Add,
                pdce_ir::BinOp::Sub,
                pdce_ir::BinOp::Mul,
            ];
            let op = *self.rng.choose(&ops);
            let a = self.expr(depth - 1);
            let b = self.expr(depth - 1);
            self.prog.terms_mut().intern(TermData::Binary(op, a, b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdce_ir::printer::canonical_string;
    use pdce_ir::validate::validate;

    #[test]
    fn generated_programs_are_valid() {
        for seed in 0..30 {
            let p = structured(&GenConfig {
                seed,
                ..GenConfig::default()
            });
            assert_eq!(validate(&p), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn nondet_mode_is_valid_too() {
        for seed in 0..20 {
            let p = structured(&GenConfig {
                seed,
                nondet: true,
                ..GenConfig::default()
            });
            assert_eq!(validate(&p), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = structured(&GenConfig::default());
        let b = structured(&GenConfig::default());
        assert_eq!(canonical_string(&a), canonical_string(&b));
        let c = structured(&GenConfig {
            seed: 99,
            ..GenConfig::default()
        });
        assert_ne!(canonical_string(&a), canonical_string(&c));
    }

    #[test]
    fn conditional_programs_terminate() {
        use pdce_ir::interp::{run_with, ExecLimits};
        for seed in 0..20 {
            let p = structured(&GenConfig {
                seed,
                ..GenConfig::default()
            });
            let t = run_with(&p, &[], vec![], ExecLimits::default());
            assert!(t.completed, "seed {seed} diverged");
        }
    }

    #[test]
    fn scales_with_target() {
        let small = structured(&GenConfig {
            target_blocks: 10,
            ..GenConfig::default()
        });
        let large = structured(&GenConfig {
            target_blocks: 200,
            max_depth: 7,
            ..GenConfig::default()
        });
        assert!(large.num_blocks() > 2 * small.num_blocks());
    }
}
