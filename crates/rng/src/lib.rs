//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace runs in hermetic environments with no registry access,
//! so the generators, property tests, and benchmarks use this
//! self-contained SplitMix64 generator instead of an external `rand`
//! dependency. SplitMix64 passes BigCrush for the statement-level
//! randomness needed here (program shapes, fuzz inputs) and is fully
//! reproducible: equal seeds yield equal streams on every platform.
//!
//! # Example
//!
//! ```
//! use pdce_rng::Rng;
//!
//! let mut rng = Rng::new(42);
//! let a = rng.gen_range(0, 10);
//! assert!(a < 10);
//! let same = Rng::new(42).gen_range(0, 10);
//! assert_eq!(a, same);
//! ```

/// A SplitMix64 generator. Cheap to create, copy, and fork.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range(lo, hi + 1)
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniformly chosen element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_range(0, xs.len())]
    }

    /// A decorrelated child generator (fork the stream for a subtask
    /// without disturbing the parent's sequence).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5, 9);
            assert!((5..9).contains(&x));
            let y = rng.gen_range_i64(-4, 10);
            assert!((-4..10).contains(&y));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::new(11);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::new(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::new(9);
        let mut child = parent.fork();
        // The child stream differs from the parent's continuation.
        assert_ne!(parent.next_u64(), child.next_u64());
    }
}
