//! The persistent result cache: content hash → optimized program.
//!
//! Repeat traffic is the serving workload's common case, so the daemon
//! answers it in O(lookup): the cache key is a 128-bit FNV-1a hash of
//! the *canonically printed* input program (formatting-insensitive)
//! plus every semantics-affecting option (mode, effective budgets,
//! validation, and the effective solver tag), and the value is the full
//! deterministic response payload. The differential oracles prove the
//! solver strategies never change the output, but the tag is keyed
//! anyway so every cached byte is attributable to one exact
//! configuration; incrementality alone remains deliberately unkeyed.
//!
//! A second, unpersisted memo ([`PersistentCache::get_raw_alias`]) maps
//! the hash of the program text *as sent* to its canonical key, so a
//! byte-for-byte repeat request is answered without even parsing the
//! program — the steady state of real repeat traffic.
//!
//! # Disk format
//!
//! A header line, then one entry per line:
//!
//! ```text
//! pdce-serve-cache v1
//! <16-hex fnv64 of body>\t<body JSON>
//! ```
//!
//! The per-line checksum makes reloads corruption-tolerant by
//! construction: a flipped bit, a truncated tail, or a garbage line
//! fails its checksum (or its JSON decode) and is *skipped* — the entry
//! degrades to a cache miss, never to a wrong answer or a crash. Saves
//! are atomic (temp file + rename), so a crash mid-save leaves the old
//! file intact.
//!
//! # Eviction
//!
//! The in-memory map is bounded by `max_bytes` (approximate payload
//! footprint). Inserting past the bound evicts least-recently-used
//! entries until the new entry fits; a single entry larger than the
//! whole bound is simply not cached. Eviction order is deterministic
//! for a deterministic request sequence.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use pdce_trace::json;

use crate::protocol::ResultPayload;

const HEADER: &str = "pdce-serve-cache v1";

/// 64-bit FNV-1a, used for the per-line checksums and as one half of
/// the 128-bit key.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 128-bit FNV-1a (standard offset basis and prime).
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    let prime: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(prime);
    }
    h
}

/// A cache key: the 128-bit content hash of canonical program text plus
/// the canonical option string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Hashes `canonical_program` (the `print_program` rendering, so
    /// formatting differences collapse) together with `options` (the
    /// server's canonical option string for the request).
    pub fn compute(canonical_program: &str, options: &str) -> CacheKey {
        let mut buf = Vec::with_capacity(canonical_program.len() + options.len() + 1);
        buf.extend_from_slice(options.as_bytes());
        buf.push(0);
        buf.extend_from_slice(canonical_program.as_bytes());
        CacheKey(fnv128(&buf))
    }

    /// 32-hex-char rendering used on disk.
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }

    fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    payload: ResultPayload,
    last_used: u64,
    bytes: u64,
}

/// Counters describing what a [`PersistentCache::load`] found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries restored intact.
    pub loaded: usize,
    /// Lines skipped: failed checksum, bad JSON, or a truncated tail.
    pub skipped: usize,
    /// Whether the file was missing or its header was unrecognized
    /// (either way the cache starts empty).
    pub fresh: bool,
}

/// Cap on the raw-text alias memo. The memo is a pure accelerator
/// (raw request bytes → canonical key, skipping parse + canonical
/// print on verbatim repeat traffic), so when it fills up it is simply
/// cleared rather than LRU-tracked.
const MAX_ALIASES: usize = 1 << 16;

/// Size-bounded LRU cache with an optional on-disk home.
#[derive(Debug)]
pub struct PersistentCache {
    path: Option<PathBuf>,
    max_bytes: u64,
    map: HashMap<u128, Entry>,
    /// Raw-text fast path: hash of (raw program text, options) →
    /// canonical key. Not persisted; rebuilt from live traffic.
    aliases: HashMap<u128, u128>,
    total_bytes: u64,
    clock: u64,
    /// Hits/misses/evictions since construction (per-server numbers;
    /// the process-global registry is updated by the server layer).
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// What the initial load found.
    pub load_report: LoadReport,
}

impl PersistentCache {
    /// An in-memory-only cache.
    pub fn in_memory(max_bytes: u64) -> PersistentCache {
        PersistentCache {
            path: None,
            max_bytes,
            map: HashMap::new(),
            aliases: HashMap::new(),
            total_bytes: 0,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            load_report: LoadReport {
                fresh: true,
                ..LoadReport::default()
            },
        }
    }

    /// Opens (or creates) the cache at `path`, restoring every entry
    /// that survives its checksum. A missing, empty, or corrupted file
    /// is never an error — affected entries are just misses.
    pub fn load(path: &Path, max_bytes: u64) -> PersistentCache {
        let mut cache = PersistentCache::in_memory(max_bytes);
        cache.path = Some(path.to_path_buf());
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return cache;
        }
        let mut report = LoadReport::default();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            match decode_entry(line) {
                Some((key, payload)) => {
                    cache.insert_raw(key, payload);
                    report.loaded += 1;
                }
                None => report.skipped += 1,
            }
        }
        cache.load_report = report;
        cache
    }

    /// Where this cache persists, if anywhere.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate bytes held (the eviction bound's currency).
    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<ResultPayload> {
        self.clock += 1;
        match self.map.get_mut(&key.0) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                Some(e.payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Fast-path lookup for a verbatim repeat request: `raw` hashes the
    /// request's program text *as sent* (plus options). On a memoized
    /// alias this answers without the caller ever parsing the program.
    /// A stale alias (its canonical entry was evicted) is dropped and
    /// reported as `None` without touching the hit/miss counters — the
    /// caller's canonical lookup will count the miss.
    pub fn get_raw_alias(&mut self, raw: CacheKey) -> Option<ResultPayload> {
        let canonical = *self.aliases.get(&raw.0)?;
        if !self.map.contains_key(&canonical) {
            self.aliases.remove(&raw.0);
            return None;
        }
        self.get(CacheKey(canonical))
    }

    /// Memoizes `raw` (request-text hash) → `canonical` so the next
    /// verbatim repeat takes the parse-free fast path.
    pub fn record_alias(&mut self, raw: CacheKey, canonical: CacheKey) {
        if self.aliases.len() >= MAX_ALIASES {
            self.aliases.clear();
        }
        self.aliases.insert(raw.0, canonical.0);
    }

    /// Inserts (or refreshes) `key`, evicting LRU entries as needed.
    pub fn insert(&mut self, key: CacheKey, payload: ResultPayload) {
        let cost = payload.cost_bytes();
        if cost > self.max_bytes {
            return;
        }
        self.insert_raw(key, payload);
        while self.total_bytes > self.max_bytes {
            let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if victim == key.0 && self.map.len() == 1 {
                break;
            }
            if let Some(e) = self.map.remove(&victim) {
                self.total_bytes -= e.bytes;
                self.evictions += 1;
            }
        }
    }

    fn insert_raw(&mut self, key: CacheKey, payload: ResultPayload) {
        self.clock += 1;
        let bytes = payload.cost_bytes();
        let entry = Entry {
            payload,
            last_used: self.clock,
            bytes,
        };
        if let Some(old) = self.map.insert(key.0, entry) {
            self.total_bytes -= old.bytes;
        }
        self.total_bytes += bytes;
    }

    /// Writes every held entry back to disk atomically (oldest first, so
    /// a future bounded reload keeps the most recent traffic). A no-op
    /// for in-memory caches.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the temp-file write or the rename.
    pub fn save(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let mut out = String::with_capacity(self.total_bytes as usize + 64);
        out.push_str(HEADER);
        out.push('\n');
        let mut entries: Vec<(&u128, &Entry)> = self.map.iter().collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        for (key, e) in entries {
            encode_entry(&mut out, CacheKey(*key), &e.payload);
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, path)
    }
}

fn encode_entry(out: &mut String, key: CacheKey, payload: &ResultPayload) {
    let mut body = String::with_capacity(payload.program.len() + 96);
    let _ = write!(body, "{{\"key\":\"{}\",\"program\":", key.hex());
    json::write_escaped(&mut body, &payload.program);
    let _ = write!(
        body,
        ",\"rounds\":{},\"eliminated\":{},\"sunk\":{},\"inserted\":{},\"rung\":",
        payload.rounds, payload.eliminated, payload.sunk, payload.inserted
    );
    json::write_escaped(&mut body, &payload.rung);
    body.push('}');
    let _ = writeln!(out, "{:016x}\t{body}", fnv64(body.as_bytes()));
}

fn decode_entry(line: &str) -> Option<(CacheKey, ResultPayload)> {
    let (sum, body) = line.split_once('\t')?;
    if sum.len() != 16 || u64::from_str_radix(sum, 16).ok()? != fnv64(body.as_bytes()) {
        return None;
    }
    let doc = json::parse(body).ok()?;
    let key = CacheKey::from_hex(doc.get("key")?.as_str()?)?;
    let num = |k: &str| -> Option<u64> {
        let n = doc.get(k)?.as_num()?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
    };
    let payload = ResultPayload {
        program: doc.get("program")?.as_str()?.to_string(),
        rounds: num("rounds")?,
        eliminated: num("eliminated")?,
        sunk: num("sunk")?,
        inserted: num("inserted")?,
        rung: doc.get("rung")?.as_str()?.to_string(),
    };
    Some((key, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: &str) -> ResultPayload {
        ResultPayload {
            program: format!("prog {{ block e {{ out({tag}); halt }} }}\n"),
            rounds: 2,
            eliminated: 1,
            sunk: 0,
            inserted: 0,
            rung: "none".into(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pdce-serve-cache-{}-{name}", std::process::id()))
    }

    #[test]
    fn raw_alias_fast_path_hits_and_self_heals() {
        let mut c = PersistentCache::in_memory(1 << 20);
        let raw = CacheKey::compute("prog   A", "mode=pde");
        let canonical = CacheKey::compute("prog A", "mode=pde");
        // Unknown raw text: no alias, no counter movement.
        assert!(c.get_raw_alias(raw).is_none());
        assert_eq!((c.hits, c.misses), (0, 0));
        c.insert(canonical, payload("a"));
        c.record_alias(raw, canonical);
        assert_eq!(c.get_raw_alias(raw).unwrap(), payload("a"));
        assert_eq!(c.hits, 1);
        // A stale alias (canonical entry gone) degrades to a silent
        // miss and is dropped.
        let mut c = PersistentCache::in_memory(1 << 20);
        c.record_alias(raw, canonical);
        assert!(c.get_raw_alias(raw).is_none());
        assert_eq!((c.hits, c.misses), (0, 0));
        assert!(c.aliases.is_empty());
    }

    #[test]
    fn keys_separate_program_and_options() {
        let a = CacheKey::compute("prog A", "mode=pde");
        let b = CacheKey::compute("prog A", "mode=pfe");
        let c = CacheKey::compute("prog B", "mode=pde");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, CacheKey::compute("prog A", "mode=pde"));
    }

    #[test]
    fn lru_eviction_respects_the_byte_bound() {
        let unit = payload("x").cost_bytes();
        let mut cache = PersistentCache::in_memory(3 * unit + 2);
        for i in 0..3u32 {
            cache.insert(CacheKey(i as u128), payload("x"));
        }
        assert_eq!(cache.len(), 3);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.get(CacheKey(0)).is_some());
        cache.insert(CacheKey(9), payload("x"));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(CacheKey(1)).is_none(), "LRU entry evicted");
        assert!(cache.get(CacheKey(0)).is_some());
        assert!(cache.get(CacheKey(9)).is_some());
        assert!(cache.bytes() <= 3 * unit + 2);
        assert_eq!(cache.evictions, 1);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut cache = PersistentCache::in_memory(8);
        cache.insert(CacheKey(1), payload("big"));
        assert!(cache.is_empty());
    }

    #[test]
    fn save_and_reload_round_trip() {
        let path = tmp("roundtrip");
        let mut cache = PersistentCache::load(&path, 1 << 20);
        assert!(cache.load_report.fresh);
        cache.insert(CacheKey(7), payload("a"));
        cache.insert(CacheKey(8), payload("b"));
        cache.save().unwrap();
        let mut back = PersistentCache::load(&path, 1 << 20);
        assert_eq!(back.load_report.loaded, 2);
        assert_eq!(back.load_report.skipped, 0);
        assert_eq!(back.get(CacheKey(7)).unwrap(), payload("a"));
        assert_eq!(back.get(CacheKey(8)).unwrap(), payload("b"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_lines_degrade_to_misses() {
        let path = tmp("corrupt");
        let mut cache = PersistentCache::load(&path, 1 << 20);
        cache.insert(CacheKey(1), payload("a"));
        cache.insert(CacheKey(2), payload("b"));
        cache.save().unwrap();
        // Flip a byte inside the *second* entry's body and truncate the
        // tail of the file mid-line.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        assert_eq!(lines.len(), 3);
        lines[2] = lines[2].replace("rounds", "rounbs");
        let mut mangled = lines.join("\n");
        mangled.truncate(mangled.len() - 4);
        std::fs::write(&path, mangled).unwrap();
        let mut back = PersistentCache::load(&path, 1 << 20);
        assert_eq!(back.load_report.loaded, 1);
        assert_eq!(back.load_report.skipped, 1);
        assert!(back.get(CacheKey(1)).is_some());
        assert!(back.get(CacheKey(2)).is_none(), "corrupt entry is a miss");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_files_start_empty_without_crashing() {
        let path = tmp("garbage");
        std::fs::write(&path, b"\x00\xffnot a cache\nat all").unwrap();
        let cache = PersistentCache::load(&path, 1 << 20);
        assert!(cache.is_empty());
        assert!(cache.load_report.fresh);
        std::fs::remove_file(&path).ok();
    }
}
