//! The persistent result cache: content hash → optimized program.
//!
//! Repeat traffic is the serving workload's common case, so the daemon
//! answers it in O(lookup): the cache key is a 128-bit FNV-1a hash of
//! the *canonically printed* input program (formatting-insensitive)
//! plus every semantics-affecting option (mode, effective budgets,
//! validation, and the effective solver tag), and the value is the full
//! deterministic response payload. The differential oracles prove the
//! solver strategies never change the output, but the tag is keyed
//! anyway so every cached byte is attributable to one exact
//! configuration; incrementality alone remains deliberately unkeyed.
//!
//! A second, unpersisted memo ([`PersistentCache::get_raw_alias`]) maps
//! the hash of the program text *as sent* to its canonical key, so a
//! byte-for-byte repeat request is answered without even parsing the
//! program — the steady state of real repeat traffic.
//!
//! # Disk format
//!
//! A write-ahead log (see [`crate::wal`]): a header line, then one
//! checksummed insert or evict record per line, appended as the cache
//! mutates and compacted into a plain snapshot once the log outgrows
//! the live set. Recovery replays the longest valid prefix, so a
//! `kill -9` at any instant loses at most the unfsynced tail — a
//! flipped bit, a torn write, or a truncated tail degrades to cache
//! misses, never to a wrong answer or a crash.
//!
//! # Eviction
//!
//! The in-memory map is bounded by `max_bytes` (approximate payload
//! footprint). Inserting past the bound evicts least-recently-used
//! entries until the new entry fits; a single entry larger than the
//! whole bound is simply not cached. Eviction order is deterministic
//! for a deterministic request sequence, and every eviction is logged
//! so recovery converges to the same live set.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use pdce_trace::json;

use crate::protocol::ResultPayload;
use crate::wal::{self, Wal};

/// Default appends between WAL fsyncs (see [`PersistentCache::load`]).
/// The log journals a *result cache*: a crash that loses the unsynced
/// tail only costs recomputation on the next run, never a wrong
/// answer, so the default trades a wider loss window for keeping the
/// journal's cost under the <5% serving-overhead bar. Deployments that
/// want a tighter window pass `--fsync-every` (1 = every append).
pub const DEFAULT_FSYNC_EVERY: u64 = 64;

/// The log is compacted once it exceeds both this floor and twice the
/// live set's footprint — the floor keeps tiny caches from compacting
/// on every insert, the ratio bounds replay work to O(live set).
const COMPACT_MIN_BYTES: u64 = 64 * 1024;

/// 64-bit FNV-1a, used for the per-line checksums and as one half of
/// the 128-bit key.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// 128-bit FNV-1a (standard offset basis and prime).
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    let prime: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(prime);
    }
    h
}

/// A cache key: the 128-bit content hash of canonical program text plus
/// the canonical option string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Hashes `canonical_program` (the `print_program` rendering, so
    /// formatting differences collapse) together with `options` (the
    /// server's canonical option string for the request).
    pub fn compute(canonical_program: &str, options: &str) -> CacheKey {
        let mut buf = Vec::with_capacity(canonical_program.len() + options.len() + 1);
        buf.extend_from_slice(options.as_bytes());
        buf.push(0);
        buf.extend_from_slice(canonical_program.as_bytes());
        CacheKey(fnv128(&buf))
    }

    /// 32-hex-char rendering used on disk.
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }

    fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    payload: ResultPayload,
    last_used: u64,
    bytes: u64,
}

/// Counters describing what a [`PersistentCache::load`] found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries restored by replaying the log's longest valid prefix.
    pub loaded: usize,
    /// Log lines discarded: the first invalid line (bad checksum, bad
    /// JSON, or a torn write) and everything after it.
    pub skipped: usize,
    /// Whether the file was missing or its header was unrecognized
    /// (either way the cache starts empty).
    pub fresh: bool,
}

/// Cap on the raw-text alias memo. The memo is a pure accelerator
/// (raw request bytes → canonical key, skipping parse + canonical
/// print on verbatim repeat traffic), so when it fills up it is simply
/// cleared rather than LRU-tracked.
pub const MAX_ALIASES: usize = 1 << 16;

/// Size-bounded LRU cache with an optional on-disk home.
#[derive(Debug)]
pub struct PersistentCache {
    path: Option<PathBuf>,
    max_bytes: u64,
    map: HashMap<u128, Entry>,
    /// Raw-text fast path: hash of (raw program text, options) →
    /// canonical key. Not persisted; rebuilt from live traffic.
    aliases: HashMap<u128, u128>,
    total_bytes: u64,
    clock: u64,
    /// The append handle; `None` for in-memory caches, and dropped
    /// (degrading to in-memory operation plus a shutdown snapshot) if
    /// the log ever fails an I/O operation.
    wal: Option<Wal>,
    /// Hits/misses/evictions since construction (per-server numbers;
    /// the process-global registry is updated by the server layer).
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// WAL I/O failures that demoted the cache to in-memory operation.
    pub wal_errors: u64,
    /// What the initial load found.
    pub load_report: LoadReport,
}

impl PersistentCache {
    /// An in-memory-only cache.
    pub fn in_memory(max_bytes: u64) -> PersistentCache {
        PersistentCache {
            path: None,
            max_bytes,
            map: HashMap::new(),
            aliases: HashMap::new(),
            total_bytes: 0,
            clock: 0,
            wal: None,
            hits: 0,
            misses: 0,
            evictions: 0,
            wal_errors: 0,
            load_report: LoadReport {
                fresh: true,
                ..LoadReport::default()
            },
        }
    }

    /// Opens (or creates) the cache at `path` with the default fsync
    /// interval. See [`PersistentCache::load_with_fsync`].
    pub fn load(path: &Path, max_bytes: u64) -> PersistentCache {
        PersistentCache::load_with_fsync(path, max_bytes, DEFAULT_FSYNC_EVERY)
    }

    /// Opens (or creates) the cache at `path`, replaying the log's
    /// longest valid prefix and truncating whatever follows it so
    /// appends resume from known-good state. A missing, empty, or
    /// corrupted file is never an error — discarded records are just
    /// misses. `fsync_every` bounds the crash-loss window to that many
    /// unfsynced appends.
    pub fn load_with_fsync(path: &Path, max_bytes: u64, fsync_every: u64) -> PersistentCache {
        let mut cache = PersistentCache::in_memory(max_bytes);
        cache.path = Some(path.to_path_buf());
        let text = std::fs::read_to_string(path).unwrap_or_default();
        let mut report = LoadReport::default();
        let mut valid_end = (wal::HEADER.len() + 1) as u64;
        match wal::scan(&text) {
            Some(scanned) => {
                valid_end = scanned.header_end;
                report.skipped = scanned.discarded;
                for (i, line) in scanned.lines.iter().enumerate() {
                    match decode_op(line.body) {
                        Some(WalOp::Insert(key, payload)) => {
                            cache.insert_raw(key, payload);
                        }
                        Some(WalOp::Evict(key)) => {
                            if let Some(e) = cache.map.remove(&key.0) {
                                cache.total_bytes -= e.bytes;
                            }
                        }
                        None => {
                            // Checksum-valid but undecodable: the valid
                            // prefix ends just before this line, and
                            // every later line is untrusted.
                            report.skipped = scanned.discarded + (scanned.lines.len() - i);
                            break;
                        }
                    }
                    valid_end = line.end;
                }
                report.loaded = cache.map.len();
                wal::note_recovery(report.loaded, report.skipped);
            }
            None => report.fresh = true,
        }
        cache.load_report = report;
        let wal = if report.fresh {
            Wal::create(path, fsync_every)
        } else {
            Wal::open_at(path, valid_end, fsync_every)
        };
        match wal {
            Ok(w) => cache.wal = Some(w),
            Err(_) => cache.wal_errors += 1,
        }
        // A log larger than the byte bound replays over it; trim (and
        // log the trims) so the bound holds from the first request.
        cache.evict_to_bound(None);
        cache
    }

    /// Where this cache persists, if anywhere.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Approximate bytes held (the eviction bound's currency).
    pub fn bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Live entries in the raw-text alias memo.
    pub fn alias_len(&self) -> usize {
        self.aliases.len()
    }

    /// Log appends/fsyncs/compactions so far (zeros when in-memory).
    pub fn wal_stats(&self) -> (u64, u64, u64) {
        self.wal
            .as_ref()
            .map_or((0, 0, 0), |w| (w.appends, w.fsyncs, w.compactions))
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&mut self, key: CacheKey) -> Option<ResultPayload> {
        self.clock += 1;
        match self.map.get_mut(&key.0) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                Some(e.payload.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Fast-path lookup for a verbatim repeat request: `raw` hashes the
    /// request's program text *as sent* (plus options). On a memoized
    /// alias this answers without the caller ever parsing the program.
    /// A stale alias (its canonical entry was evicted) is dropped and
    /// reported as `None` without touching the hit/miss counters — the
    /// caller's canonical lookup will count the miss.
    pub fn get_raw_alias(&mut self, raw: CacheKey) -> Option<ResultPayload> {
        let canonical = *self.aliases.get(&raw.0)?;
        if !self.map.contains_key(&canonical) {
            self.aliases.remove(&raw.0);
            return None;
        }
        self.get(CacheKey(canonical))
    }

    /// Memoizes `raw` (request-text hash) → `canonical` so the next
    /// verbatim repeat takes the parse-free fast path.
    pub fn record_alias(&mut self, raw: CacheKey, canonical: CacheKey) {
        if self.aliases.len() >= MAX_ALIASES {
            self.aliases.clear();
        }
        self.aliases.insert(raw.0, canonical.0);
    }

    /// Inserts (or refreshes) `key`, evicting LRU entries as needed.
    /// The insert and any evictions are appended to the log before the
    /// call returns (durable after the next fsync interval).
    pub fn insert(&mut self, key: CacheKey, payload: ResultPayload) {
        let cost = payload.cost_bytes();
        if cost > self.max_bytes {
            return;
        }
        self.log_insert(key, &payload);
        self.insert_raw(key, payload);
        self.evict_to_bound(Some(key.0));
        self.maybe_compact();
    }

    /// Evicts LRU entries (logging each) until the bound holds again.
    /// `protect` is never chosen while it is the only entry left.
    fn evict_to_bound(&mut self, protect: Option<u128>) {
        while self.total_bytes > self.max_bytes {
            let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) else {
                break;
            };
            if protect == Some(victim) && self.map.len() == 1 {
                break;
            }
            if let Some(e) = self.map.remove(&victim) {
                self.total_bytes -= e.bytes;
                self.evictions += 1;
                self.log_evict(CacheKey(victim));
            }
        }
    }

    fn insert_raw(&mut self, key: CacheKey, payload: ResultPayload) {
        self.clock += 1;
        let bytes = payload.cost_bytes();
        let entry = Entry {
            payload,
            last_used: self.clock,
            bytes,
        };
        if let Some(old) = self.map.insert(key.0, entry) {
            self.total_bytes -= old.bytes;
        }
        self.total_bytes += bytes;
    }

    fn log_insert(&mut self, key: CacheKey, payload: &ResultPayload) {
        if self.wal.is_some() {
            let body = encode_insert_body(key, payload);
            self.append(&body);
        }
    }

    fn log_evict(&mut self, key: CacheKey) {
        if self.wal.is_some() {
            self.append(&format!("{{\"evict\":\"{}\"}}", key.hex()));
        }
    }

    /// Appends one record, demoting to in-memory operation on I/O
    /// failure (the cache keeps serving; `save` still snapshots).
    fn append(&mut self, body: &str) {
        if let Some(w) = &mut self.wal {
            if w.append(body).is_err() {
                self.wal = None;
                self.wal_errors += 1;
            }
        }
    }

    /// Compacts once the log exceeds the floor and twice the live set.
    fn maybe_compact(&mut self) {
        let due = self
            .wal
            .as_ref()
            .is_some_and(|w| w.bytes > COMPACT_MIN_BYTES.max(2 * self.total_bytes));
        if due {
            let _ = self.save();
        }
    }

    /// Renders the live set as a snapshot (header plus one insert line
    /// per entry, oldest first so a bounded reload keeps recent
    /// traffic).
    fn snapshot(&self) -> String {
        let mut out = String::with_capacity(self.total_bytes as usize + 64);
        out.push_str(wal::HEADER);
        out.push('\n');
        let mut entries: Vec<(&u128, &Entry)> = self.map.iter().collect();
        entries.sort_by_key(|(_, e)| e.last_used);
        for (key, e) in entries {
            out.push_str(&wal::frame(&encode_insert_body(CacheKey(*key), &e.payload)));
        }
        out
    }

    /// Compacts the log into a snapshot of the live set (atomic temp +
    /// rename) and fsyncs. Called on the compaction threshold and at
    /// clean shutdown; a no-op for in-memory caches.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the temp-file write or the rename.
    pub fn save(&mut self) -> std::io::Result<()> {
        let Some(path) = self.path.clone() else {
            return Ok(());
        };
        let snapshot = self.snapshot();
        match &mut self.wal {
            Some(w) => {
                if let Err(e) = w.compact_to(&path, &snapshot) {
                    self.wal = None;
                    self.wal_errors += 1;
                    return Err(e);
                }
                Ok(())
            }
            None => {
                // The log handle is gone (earlier I/O failure): fall
                // back to the plain atomic rewrite.
                let tmp = path.with_extension("tmp");
                std::fs::write(&tmp, &snapshot)?;
                std::fs::rename(&tmp, &path)
            }
        }
    }

    /// Forces the unfsynced log tail to disk (a no-op in memory).
    ///
    /// # Errors
    /// Propagates the `fdatasync` failure.
    pub fn sync(&mut self) -> std::io::Result<()> {
        match &mut self.wal {
            Some(w) => w.sync(),
            None => Ok(()),
        }
    }
}

/// A decoded log record.
enum WalOp {
    Insert(CacheKey, ResultPayload),
    Evict(CacheKey),
}

fn encode_insert_body(key: CacheKey, payload: &ResultPayload) -> String {
    let mut body = String::with_capacity(payload.program.len() + 96);
    let _ = write!(body, "{{\"key\":\"{}\",\"program\":", key.hex());
    json::write_escaped(&mut body, &payload.program);
    let _ = write!(
        body,
        ",\"rounds\":{},\"eliminated\":{},\"sunk\":{},\"inserted\":{},\"rung\":",
        payload.rounds, payload.eliminated, payload.sunk, payload.inserted
    );
    json::write_escaped(&mut body, &payload.rung);
    body.push('}');
    body
}

fn decode_op(body: &str) -> Option<WalOp> {
    let doc = json::parse(body).ok()?;
    if let Some(evict) = doc.get("evict") {
        return Some(WalOp::Evict(CacheKey::from_hex(evict.as_str()?)?));
    }
    let key = CacheKey::from_hex(doc.get("key")?.as_str()?)?;
    let num = |k: &str| -> Option<u64> {
        let n = doc.get(k)?.as_num()?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
    };
    let payload = ResultPayload {
        program: doc.get("program")?.as_str()?.to_string(),
        rounds: num("rounds")?,
        eliminated: num("eliminated")?,
        sunk: num("sunk")?,
        inserted: num("inserted")?,
        rung: doc.get("rung")?.as_str()?.to_string(),
    };
    Some(WalOp::Insert(key, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(tag: &str) -> ResultPayload {
        ResultPayload {
            program: format!("prog {{ block e {{ out({tag}); halt }} }}\n"),
            rounds: 2,
            eliminated: 1,
            sunk: 0,
            inserted: 0,
            rung: "none".into(),
        }
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pdce-serve-cache-{}-{name}", std::process::id()))
    }

    #[test]
    fn raw_alias_fast_path_hits_and_self_heals() {
        let mut c = PersistentCache::in_memory(1 << 20);
        let raw = CacheKey::compute("prog   A", "mode=pde");
        let canonical = CacheKey::compute("prog A", "mode=pde");
        // Unknown raw text: no alias, no counter movement.
        assert!(c.get_raw_alias(raw).is_none());
        assert_eq!((c.hits, c.misses), (0, 0));
        c.insert(canonical, payload("a"));
        c.record_alias(raw, canonical);
        assert_eq!(c.get_raw_alias(raw).unwrap(), payload("a"));
        assert_eq!(c.hits, 1);
        // A stale alias (canonical entry gone) degrades to a silent
        // miss and is dropped.
        let mut c = PersistentCache::in_memory(1 << 20);
        c.record_alias(raw, canonical);
        assert!(c.get_raw_alias(raw).is_none());
        assert_eq!((c.hits, c.misses), (0, 0));
        assert!(c.aliases.is_empty());
    }

    #[test]
    fn keys_separate_program_and_options() {
        let a = CacheKey::compute("prog A", "mode=pde");
        let b = CacheKey::compute("prog A", "mode=pfe");
        let c = CacheKey::compute("prog B", "mode=pde");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, CacheKey::compute("prog A", "mode=pde"));
    }

    #[test]
    fn lru_eviction_respects_the_byte_bound() {
        let unit = payload("x").cost_bytes();
        let mut cache = PersistentCache::in_memory(3 * unit + 2);
        for i in 0..3u32 {
            cache.insert(CacheKey(i as u128), payload("x"));
        }
        assert_eq!(cache.len(), 3);
        // Touch key 0 so key 1 becomes the LRU victim.
        assert!(cache.get(CacheKey(0)).is_some());
        cache.insert(CacheKey(9), payload("x"));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(CacheKey(1)).is_none(), "LRU entry evicted");
        assert!(cache.get(CacheKey(0)).is_some());
        assert!(cache.get(CacheKey(9)).is_some());
        assert!(cache.bytes() <= 3 * unit + 2);
        assert_eq!(cache.evictions, 1);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut cache = PersistentCache::in_memory(8);
        cache.insert(CacheKey(1), payload("big"));
        assert!(cache.is_empty());
    }

    #[test]
    fn save_and_reload_round_trip() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut cache = PersistentCache::load(&path, 1 << 20);
        assert!(cache.load_report.fresh);
        cache.insert(CacheKey(7), payload("a"));
        cache.insert(CacheKey(8), payload("b"));
        cache.save().unwrap();
        let mut back = PersistentCache::load(&path, 1 << 20);
        assert_eq!(back.load_report.loaded, 2);
        assert_eq!(back.load_report.skipped, 0);
        assert_eq!(back.get(CacheKey(7)).unwrap(), payload("a"));
        assert_eq!(back.get(CacheKey(8)).unwrap(), payload("b"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inserts_are_durable_without_a_clean_save() {
        let path = tmp("wal-durable");
        std::fs::remove_file(&path).ok();
        {
            let mut cache = PersistentCache::load_with_fsync(&path, 1 << 20, 1);
            cache.insert(CacheKey(1), payload("a"));
            cache.insert(CacheKey(2), payload("b"));
            // No save(): the cache is dropped as a crash would drop it.
        }
        let mut back = PersistentCache::load(&path, 1 << 20);
        assert_eq!(back.load_report.loaded, 2, "WAL replay restored both");
        assert_eq!(back.get(CacheKey(1)).unwrap(), payload("a"));
        assert_eq!(back.get(CacheKey(2)).unwrap(), payload("b"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn logged_evictions_replay_to_the_same_live_set() {
        let unit = payload("x").cost_bytes();
        let path = tmp("wal-evict");
        std::fs::remove_file(&path).ok();
        {
            let mut cache = PersistentCache::load_with_fsync(&path, 2 * unit + 1, 1);
            cache.insert(CacheKey(1), payload("x"));
            cache.insert(CacheKey(2), payload("x"));
            cache.insert(CacheKey(3), payload("x")); // evicts key 1
            assert_eq!(cache.evictions, 1);
        }
        let mut back = PersistentCache::load(&path, 2 * unit + 1);
        assert_eq!(back.len(), 2);
        assert!(back.get(CacheKey(1)).is_none(), "evict record replayed");
        assert!(back.get(CacheKey(2)).is_some());
        assert!(back.get(CacheKey(3)).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_loses_only_the_last_record() {
        let path = tmp("wal-torn");
        std::fs::remove_file(&path).ok();
        {
            let mut cache = PersistentCache::load_with_fsync(&path, 1 << 20, 1);
            cache.insert(CacheKey(1), payload("a"));
            cache.insert(CacheKey(2), payload("b"));
        }
        // Tear the final record mid-line, as a crash mid-write would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();
        let mut back = PersistentCache::load(&path, 1 << 20);
        assert_eq!(back.load_report.loaded, 1);
        assert_eq!(back.load_report.skipped, 1);
        assert!(back.get(CacheKey(1)).is_some());
        assert!(back.get(CacheKey(2)).is_none(), "torn record is a miss");
        // The invalid tail was truncated: appends resume cleanly.
        back.insert(CacheKey(3), payload("c"));
        drop(back);
        let again = PersistentCache::load(&path, 1 << 20);
        assert_eq!(again.load_report.loaded, 2);
        assert_eq!(again.load_report.skipped, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_lines_degrade_to_misses() {
        let path = tmp("corrupt");
        std::fs::remove_file(&path).ok();
        let mut cache = PersistentCache::load(&path, 1 << 20);
        cache.insert(CacheKey(1), payload("a"));
        cache.insert(CacheKey(2), payload("b"));
        cache.save().unwrap();
        // Flip a byte inside the *second* entry's body and truncate the
        // tail of the file mid-line.
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        assert_eq!(lines.len(), 3);
        lines[2] = lines[2].replace("rounds", "rounbs");
        let mut mangled = lines.join("\n");
        mangled.truncate(mangled.len() - 4);
        std::fs::write(&path, mangled).unwrap();
        let mut back = PersistentCache::load(&path, 1 << 20);
        assert_eq!(back.load_report.loaded, 1);
        assert_eq!(back.load_report.skipped, 1);
        assert!(back.get(CacheKey(1)).is_some());
        assert!(back.get(CacheKey(2)).is_none(), "corrupt entry is a miss");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compaction_bounds_the_log_and_preserves_the_live_set() {
        let path = tmp("wal-compact");
        std::fs::remove_file(&path).ok();
        let unit = payload("0000").cost_bytes();
        let mut cache = PersistentCache::load_with_fsync(&path, 4 * unit, 64);
        // Enough churn to blow well past the compaction floor.
        let rounds = (2 * COMPACT_MIN_BYTES / unit) as u32;
        for i in 0..rounds {
            cache.insert(CacheKey(i as u128 % 8), payload(&format!("{i:04}")));
        }
        let (_, _, compactions) = cache.wal_stats();
        assert!(compactions > 0, "churn must trigger compaction");
        let on_disk = std::fs::metadata(&path).unwrap().len();
        assert!(
            on_disk < COMPACT_MIN_BYTES + 2 * 4 * unit,
            "log stayed bounded: {on_disk} bytes"
        );
        let live: Vec<u128> = cache.map.keys().copied().collect();
        drop(cache);
        let back = PersistentCache::load(&path, 4 * unit);
        let mut recovered: Vec<u128> = back.map.keys().copied().collect();
        let mut expected = live;
        recovered.sort_unstable();
        expected.sort_unstable();
        assert_eq!(recovered, expected, "recovery equals the live set");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_files_start_empty_without_crashing() {
        let path = tmp("garbage");
        std::fs::write(&path, b"\x00\xffnot a cache\nat all").unwrap();
        let cache = PersistentCache::load(&path, 1 << 20);
        assert!(cache.is_empty());
        assert!(cache.load_report.fresh);
        std::fs::remove_file(&path).ok();
    }
}
