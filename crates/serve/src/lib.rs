//! Optimization-as-a-service: the long-lived serving mode behind
//! `pdce serve`.
//!
//! The batch CLI pays the full startup + parse + solve cost on every
//! invocation. This crate turns that into a daemon that answers
//! newline-delimited JSON requests over stdio, TCP, or a Unix socket:
//!
//! ```text
//! → {"id":"r1","op":"optimize","program":"prog { ... }","mode":"pde"}
//! ← {"id":"r1","status":0,"program":"prog { ... }","rounds":2,...}
//! ```
//!
//! Three properties carry over from the batch pipeline by construction:
//!
//! - **The exit-code taxonomy becomes per-request status codes.** A
//!   response's `status` field is 0 (served), 1 (bad request — exactly
//!   what the CLI would reject with exit 1), or 2 (internal error —
//!   the CLI's exit 2). One malformed line never takes down the loop.
//! - **Budgets become admission control.** The server's
//!   `--wall-ms`/`--max-pops`/`--max-rounds` caps bound every request;
//!   a request may lower them for itself but never raise them. A
//!   budget trip degrades that request down the PR 5 resilience ladder
//!   (the rung is reported in the response) instead of stalling peers.
//! - **Determinism becomes cacheability.** Because optimized output is
//!   byte-stable across solver strategy, incremental mode, and worker
//!   count, a response can be cached by content hash and replayed
//!   verbatim: warm responses are byte-identical to cold ones, which
//!   the test suite asserts literally.
//!
//! Module map: [`protocol`] (wire format), [`cache`] (persistent
//! content-hash-keyed result cache with LRU eviction and
//! corruption-tolerant reload), [`server`] (the serving loop:
//! admission, adaptive batching over the `pdce-par` pool, transports,
//! drain-on-shutdown).

pub mod cache;
pub mod protocol;
pub mod quarantine;
pub mod server;
pub mod wal;

pub use cache::{CacheKey, LoadReport, PersistentCache};
pub use protocol::{Mode, Op, Request, ResultPayload, Status};
pub use quarantine::{Breaker, BreakerState, Quarantine};
pub use server::{ServeOptions, ServeSummary, Server};
